"""Shared configuration for the benchmark harness.

Each ``bench_fig*.py`` module regenerates one table or figure from the
paper at the calibrated evaluation scale (see ``SystemConfig.default`` and
DESIGN.md §2) and prints the same rows/series the paper reports.  Run

    pytest benchmarks/ --benchmark-only

and add ``-s`` to see the regenerated tables inline; every module also
asserts the qualitative shape the paper claims.  Simulation results are
memoised across modules (``repro.experiments.get_result``), so the first
figure touching a given app/policy pays the simulation cost and later
figures reuse it.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SystemConfig

# The calibrated evaluation configuration.  Interval count is reduced from
# 50 to 30 to keep the full harness within a few minutes of wall clock;
# the headline shapes are stable beyond ~20 intervals.
BENCH_INTERVALS = 30


@pytest.fixture(scope="session")
def bench_config() -> SystemConfig:
    return SystemConfig.default().with_(n_intervals=BENCH_INTERVALS)


@pytest.fixture(scope="session")
def bench_config_8core() -> SystemConfig:
    return SystemConfig.eight_core().with_(n_intervals=BENCH_INTERVALS)


@pytest.fixture
def run_once(benchmark):
    """Measure ``fn`` with a single round (simulations are long-running
    and deterministic; statistical repetition buys nothing here)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
