"""Paper Figure 8: inter-thread share of cache interactions (~11.5 % avg)."""

from repro.experiments import fig8_interaction_fraction


def test_fig08_interaction_fraction(run_once, bench_config):
    result = run_once(fig8_interaction_fraction, bench_config)
    print("\n" + result.format())
    shares = [float(row[1]) for row in result.rows]
    avg = sum(shares) / len(shares)
    # Paper band: a noticeable minority of all accesses (11.5 % average).
    assert 5.0 < avg < 25.0, f"inter-thread share {avg:.1f}% outside the plausible band"
    assert all(s < 40.0 for s in shares)
