"""Paper Figure 4: per-thread L2 miss variability, mirroring Figure 3.

In the paper the slowest thread is also (close to) the heaviest misser.
Our substrate deliberately includes threads whose misses are *cheap*
(streaming polluters, whose sequential misses are prefetch-covered) or
*diluted* (decoys with low memory intensity), so the strict
slowest == heaviest-misser identity does not hold app-by-app; what must
hold is (a) wide per-thread miss variability in the contended apps and
(b) the critical thread carrying a substantial share of the misses.  The
per-interval CPI <-> miss correlation itself is Figure 5's assertion.
"""

import numpy as np

from repro.experiments import fig3_performance_variability, fig4_miss_variability

STRONG_APPS = ("swim", "mgrid", "applu", "art", "cg", "mg")


def test_fig04_miss_variability(run_once, bench_config):
    result = run_once(fig4_miss_variability, bench_config)
    print("\n" + result.format())
    perf = fig3_performance_variability(bench_config)
    miss_by_app = {row[0]: row[1:] for row in result.rows}
    for prow in perf.rows:
        app = prow[0]
        if app not in STRONG_APPS:
            continue
        misses = miss_by_app[app]
        assert max(misses) == 1.0
        # Wide miss variability across threads.
        assert min(misses) < 0.8, f"{app}: no miss variability {misses}"
        # The slowest thread carries a substantial share of the misses.
        slowest = int(np.argmin(prow[1:-1]))
        assert misses[slowest] > 0.25, f"{app}: critical thread misses too few {misses}"
