"""Paper Figure 18: the partitioning snapshot across consecutive intervals
of NAS CG — equal start, then the critical thread (thread 3 in the paper's
1-based numbering; index 2 here) receives the largest share and overall
CPI drops."""

from repro.experiments import fig18_partition_snapshot


def test_fig18_partition_snapshot(run_once, bench_config):
    result = run_once(fig18_partition_snapshot, bench_config, "cg", 6)
    print("\n" + result.format())
    first, last = result.rows[0], result.rows[-1]
    equal = bench_config.total_ways // bench_config.n_threads
    assert first["targets"] == [equal] * bench_config.n_threads
    # The big-footprint thread ends with the largest partition...
    assert last["targets"][2] == max(last["targets"])
    # ...and overall CPI improves relative to the equal first interval.
    assert last["overall_cpi"] < first["overall_cpi"]
