"""Overhead of the telemetry layer (repro.obs).

The claim the subsystem makes (DESIGN.md §B.1) is that *disabled* tracing
is effectively free: every instrumented site guards with
``tracer.enabled`` before constructing an event, so an untraced run pays
one attribute read and a branch per touchpoint.  Two measurements:

* **end-to-end**: the same simulation with the NullTracer vs. with no
  knowledge of tracing at all is not measurable separately (the guard is
  inside the run), so we run the simulation twice under the NullTracer
  and bound the *guard cost* directly — measured guard time × the number
  of guard evaluations a run performs must stay under 2 % of the run.
* **enabled cost** (informational): the same run under a
  ``RecordingTracer``, showing what turning tracing on costs.
"""

import time

import pytest

from repro.obs import NULL_TRACER, RecordingTracer
from repro.sim.config import SystemConfig
from repro.sim.driver import prepare_program, run_application

OVERHEAD_BUDGET = 0.02  # the <2 % claim


@pytest.fixture(scope="module")
def obs_config() -> SystemConfig:
    return SystemConfig.quick()


def _time_run(config, tracer=None, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_application("cg", "model-based", config, tracer=tracer)
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_null_tracer_guard_cost_under_budget(benchmark, obs_config):
    """Bound the disabled-path cost: guards per run × cost per guard."""
    prepare_program("cg", obs_config)  # warm: measure simulation, not build

    untraced_s = benchmark.pedantic(
        lambda: _time_run(obs_config, tracer=None), rounds=1, iterations=1
    )

    # Count the guard sites a run actually evaluates: interval events,
    # convergence events and repartition bookkeeping per interval, plus
    # the prepare/simulate spans — generously over-counted at 8 guards
    # per interval.
    tracer = RecordingTracer()
    result = run_application("cg", "model-based", obs_config, tracer=tracer)
    n_intervals = len(result.intervals)
    guards_per_run = 8 * n_intervals + 16

    # Cost of one guard: attribute read + branch on the NullTracer.
    t = NULL_TRACER
    n = 200_000
    start = time.perf_counter()
    hits = 0
    for _ in range(n):
        if t.enabled:
            hits += 1
    per_guard_s = (time.perf_counter() - start) / n
    assert hits == 0

    guard_overhead_s = per_guard_s * guards_per_run
    share = guard_overhead_s / untraced_s
    print(
        f"\nobs overhead: run={untraced_s * 1e3:.1f}ms, "
        f"{guards_per_run} guards x {per_guard_s * 1e9:.0f}ns = "
        f"{guard_overhead_s * 1e6:.1f}us ({share:.4%} of the run)"
    )
    assert share < OVERHEAD_BUDGET, (
        f"disabled-tracing guard cost {share:.2%} exceeds the "
        f"{OVERHEAD_BUDGET:.0%} budget"
    )


def test_obs_recording_tracer_cost_is_modest(obs_config):
    """Informational: enabled in-memory tracing stays within a small
    multiple of the untraced run (it only appends dataclasses to a list)."""
    prepare_program("cg", obs_config)
    untraced_s = _time_run(obs_config, tracer=None)
    tracer = RecordingTracer()
    traced_s = _time_run(obs_config, tracer=tracer)
    assert len(tracer) > 0
    ratio = traced_s / untraced_s
    print(
        f"\nrecording tracer: untraced={untraced_s * 1e3:.1f}ms "
        f"traced={traced_s * 1e3:.1f}ms (x{ratio:.3f}, {len(tracer)} events)"
    )
    # Generous bound — the point is catching accidental per-access
    # instrumentation (which would be x10+), not micro-variance.
    assert ratio < 1.5, f"enabled tracing cost x{ratio:.2f} suggests a hot-path leak"
