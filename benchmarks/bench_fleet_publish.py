"""Worker-published results vs relayed bytes: what ``--publish-results`` buys.

With a plain remote sweep every ``RunResult`` travels worker →
coordinator inside the outcome frame, and the coordinator writes it to
the store — the coordinator's socket and store are on every result's
critical path.  With publishing (DESIGN.md §J) the worker files the
result into the shared store itself and the outcome frame shrinks to a
digest-sized acknowledgement, so coordinator-side work per cell is a
journal line, not a result relay.

The benchmark runs the same grid both ways on in-process workers backed
by one shared :class:`~repro.exec.backend.MemoryBackend` (the store a
proxy would serve), asserting both modes land byte-identical aggregates
against a serial control, and reports wall per mode (best of ``--reps``)
plus the per-cell result payload that publishing takes off the
coordinator link (measured by encoding the outcomes exactly the way the
wire does).

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_publish.py          # BENCH.md numbers
    PYTHONPATH=src python benchmarks/bench_fleet_publish.py --smoke  # CI guard
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.dist import RemoteEngine, WorkerServer
from repro.dist.codec import canonical_bytes, encode_outcome
from repro.exec.backend import MemoryBackend
from repro.exec.engine import SerialEngine, execute_job
from repro.exec.jobs import JobOutcome, JobSpec
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.obs.metrics import METRICS
from repro.sim.config import SystemConfig


def measure_mode(publish: bool, apps, policies, config, reps: int) -> tuple[float, str]:
    """Best-of-``reps`` wall for the grid; returns (wall_s, aggregates JSON)."""
    shared = MemoryBackend()
    store = ResultStore("fleet-store", backend=shared)
    workers = [
        WorkerServer(publish_store=store if publish else None).start() for _ in range(2)
    ]
    try:
        engine = RemoteEngine([w.address for w in workers], publish_results=publish)
        best, agg = float("inf"), None
        for _rep in range(reps):
            before = METRICS.counter("dist.results_published").value
            start = time.perf_counter()
            result = run_sweep(apps, policies, config=config, engine=engine)
            elapsed = time.perf_counter() - start
            assert not result.failures, result.failures
            assert not engine.degraded_reasons, engine.degraded_reasons
            published = METRICS.counter("dist.results_published").value - before
            expected = len(result.cells) if publish else 0
            assert published == expected, (published, expected)
            rendered = json.dumps(result.aggregates(), sort_keys=True)
            assert agg is None or agg == rendered, "reps disagree with each other"
            agg = rendered
            best = min(best, elapsed)
        return best, agg
    finally:
        for w in workers:
            w.stop()


def relay_payload_bytes(apps, policies, config) -> int:
    """What the coordinator link carries per grid when results are
    relayed: every outcome frame's canonical encoding, summed.  Computed
    from serial outcomes outside any timed region."""
    total = 0
    for app in apps:
        for policy in policies:
            spec = JobSpec(app, policy, config)
            outcome = JobOutcome(spec=spec, result=execute_job(spec))
            total += len(canonical_bytes(encode_outcome(outcome)))
    return total


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, byte-identity only (CI)")
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args()

    if args.smoke:
        apps, policies = ["ft", "cg"], ["shared", "static-equal"]
        config = SystemConfig.default().with_(n_intervals=5, interval_instructions=2000)
        reps = 1
    else:
        apps = ["swim", "art", "equake"]
        policies = ["model-based", "shared", "static-equal"]
        config = SystemConfig.default()
        reps = args.reps
    n_jobs = len(apps) * len(policies)

    serial_agg = json.dumps(
        run_sweep(apps, policies, config=config, engine=SerialEngine()).aggregates(),
        sort_keys=True,
    )
    relayed = relay_payload_bytes(apps, policies, config)

    walls = {}
    for mode, publish in (("relay", False), ("publish", True)):
        wall, agg = measure_mode(publish, apps, policies, config, reps)
        if agg != serial_agg:
            print(f"error: {mode} mode diverges from serial — numbers void",
                  file=sys.stderr)
            return 1
        walls[mode] = wall

    print(f"{n_jobs} jobs on 2 in-process workers, best of {reps}")
    print(f"{'mode':>8}  {'wall':>8}")
    for mode, wall in walls.items():
        print(f"{mode:>8}  {wall:>7.2f}s")
    print(f"result payload kept off the coordinator link by publishing: {relayed:,} bytes/grid")
    print("fleet-publish-ok=yes (both modes byte-identical to serial)")
    print(json.dumps({
        "jobs": n_jobs, "reps": reps,
        "walls_s": {m: round(w, 3) for m, w in walls.items()},
        "relayed_bytes": relayed,
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
