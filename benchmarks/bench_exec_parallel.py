"""Benchmarks of the execution layer: engine fan-out and store reuse.

Measures the same batch of simulations three ways — serial engine, process
pool, and warm result store — and asserts the invariants the layer
promises: identical results across engines, and a warm store that performs
zero simulations.
"""

import os

import pytest

from repro.exec import JobSpec, ProcessPoolEngine, ResultStore, SerialEngine
from repro.sim.config import SystemConfig

BATCH_APPS = ["swim", "cg", "ft", "mg"]
BATCH_POLICIES = ["shared", "model-based"]


@pytest.fixture(scope="module")
def exec_config() -> SystemConfig:
    # Small enough that engine overhead is visible next to simulation time.
    return SystemConfig.quick()


@pytest.fixture(scope="module")
def batch(exec_config) -> list[JobSpec]:
    return [
        JobSpec(app, policy, exec_config)
        for app in BATCH_APPS
        for policy in BATCH_POLICIES
    ]


def test_exec_serial_engine(run_once, batch):
    outcomes = run_once(SerialEngine().run, batch)
    assert all(o.ok for o in outcomes)


def test_exec_process_pool_engine(run_once, batch):
    jobs = min(4, os.cpu_count() or 1)
    outcomes = run_once(ProcessPoolEngine(jobs, chunk_size=4).run, batch)
    assert all(o.ok for o in outcomes)
    # engines must be interchangeable: same jobs, same results
    serial = SerialEngine().run(batch)
    for s, p in zip(serial, outcomes, strict=True):
        assert s.result == p.result


def test_exec_warm_store_lookup(run_once, batch, tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("exec-bench-store"))
    engine = SerialEngine()
    for spec, outcome in zip(batch, engine.run(batch), strict=True):
        store.put(spec, outcome.result)

    def warm_lookup():
        return [store.get(spec) for spec in batch]

    results = run_once(warm_lookup)
    assert all(r is not None for r in results)
    assert store.hits >= len(batch)
