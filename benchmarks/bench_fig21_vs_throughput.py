"""Paper Figure 21: dynamic partitioning vs a throughput-oriented scheme.

Paper band: the critical-path-aware scheme wins for all applications, by
up to ~20 % — the throughput scheme wastes capacity speeding up fast
threads with steep miss curves (our "decoy" role).
"""

from repro.experiments import fig21_vs_throughput


def test_fig21_vs_throughput(run_once, bench_config):
    result = run_once(fig21_vs_throughput, bench_config)
    print("\n" + result.format())
    assert result.average > 0.0
    assert result.maximum > 0.05
    # No application should lose materially to the throughput scheme.
    assert min(result.speedups) > -0.05, dict(
        zip(result.apps, result.speedups, strict=True)
    )
