"""Ablation: the dynamic scheme vs an *oracle* static partition.

The oracle computes exact per-thread Mattson miss curves offline and
solves (by dynamic programming) for the static partition minimising the
paper's own max-CPI objective — the best any non-adaptive scheme could
do with perfect information.  Expected shape: the oracle clearly beats
the equal split, and the dynamic scheme matches it and wins outright on
phased workloads, because no static partition can track phase changes or
contain bursts it wasn't sized for.
"""

from repro.analysis import oracle_static_policy
from repro.experiments import get_result
from repro.experiments.reporting import format_table
from repro.sim.driver import run_application

APPS = ["swim", "mgrid", "cg", "mg", "applu"]
PHASED_APPS = {"swim", "mgrid", "mg"}


def run_oracle_comparison(config):
    rows = []
    for app in APPS:
        oracle = run_application(app, oracle_static_policy(app, config), config)
        dyn = get_result(app, "model-based", config)
        equal = get_result(app, "static-equal", config)
        rows.append(
            {
                "app": app,
                "oracle_vs_equal": oracle.speedup_over(equal),
                "dyn_vs_oracle": dyn.speedup_over(oracle),
            }
        )
    return rows


def test_ablation_oracle_static(run_once, bench_config):
    rows = run_once(run_oracle_comparison, bench_config)
    print("\n" + format_table(
        ["app", "oracle-static vs equal", "dynamic vs oracle-static"],
        [[r["app"], f"{r['oracle_vs_equal']:+.1%}", f"{r['dyn_vs_oracle']:+.1%}"] for r in rows],
        title="Ablation: informed static oracle (max-CPI objective)",
    ))
    for r in rows:
        # Perfect information makes a far better static partition...
        assert r["oracle_vs_equal"] > 0.05, r
        # ...but the dynamic scheme stays competitive with it everywhere.
        assert r["dyn_vs_oracle"] > -0.08, r
    # And adaptivity wins outright on the phased workloads.
    phased = [r["dyn_vs_oracle"] for r in rows if r["app"] in PHASED_APPS]
    assert max(phased) > 0.03
