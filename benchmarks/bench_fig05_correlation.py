"""Paper Figure 5: correlation between per-interval CPI and L2 misses.

The paper reports a strong linear dependence, averaging 0.97 across its
nine benchmarks.  Our synthetic substrate reproduces a strong (if somewhat
lower) correlation; the assertion guards the qualitative claim.
"""

from repro.experiments import fig5_cpi_miss_correlation


def test_fig05_cpi_miss_correlation(run_once, bench_config):
    result = run_once(fig5_cpi_miss_correlation, bench_config)
    print("\n" + result.format())
    corrs = [row[1] for row in result.rows]
    assert sum(corrs) / len(corrs) > 0.6, "CPI and L2 misses should correlate strongly"
    assert max(corrs) > 0.85
