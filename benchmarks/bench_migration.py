"""Thread-migration resilience (paper §VII: unpinned-thread robustness).

The paper reports that when (rare) migrations occurred, predictions were
briefly suboptimal and the scheme "quickly adapted to the new
thread-mapping".  We force an aggressive migration (the two extreme
threads swap cores mid-run) and assert that the partition re-converges
within a bounded number of intervals, and that the probe/exploration
mechanism is what buys the recovery.
"""

from repro.experiments.migration import migration_resilience


def test_migration_resilience(run_once, bench_config):
    result = run_once(migration_resilience, bench_config)
    print("\n" + result.format())
    # The partition re-converges onto the migrated critical thread...
    assert result.recovery_intervals is not None, "partition never re-converged"
    assert result.recovery_intervals <= 14
    # ...and exploration is what buys the recovery: the probing runtime is
    # no slower than the probe-free one.
    assert result.dyn_vs_no_probe > -0.02
    # The disruption is bounded: even with a mid-run migration the dynamic
    # scheme stays within striking distance of the static-equal cache.
    assert result.dyn_vs_static > -0.15
