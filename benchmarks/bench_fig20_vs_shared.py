"""Paper Figure 20: dynamic partitioning vs the shared unpartitioned cache.

Paper bands: up to 15 % improvement, ~9 % average, with three
small-working-set benchmarks showing only small benefit.
"""

from repro.experiments import fig20_vs_shared

SMALL_APPS = {"equake", "ft", "wupwise"}


def test_fig20_vs_shared(run_once, bench_config):
    result = run_once(fig20_vs_shared, bench_config)
    print("\n" + result.format())
    by_app = dict(zip(result.apps, result.speedups, strict=True))
    assert result.average > 0.04, "dynamic partitioning must beat shared on average"
    assert result.maximum > 0.10
    strong = [g for a, g in by_app.items() if a not in SMALL_APPS]
    assert all(g > -0.02 for g in strong), f"contended apps must not lose: {by_app}"
    for app in SMALL_APPS:
        assert abs(by_app[app]) < 0.05, f"{app} should show only small effect"
