"""Paper Figure 6: per-interval CPI of SWIM's threads (phase behaviour)."""

import numpy as np

from repro.experiments import fig6_swim_cpi_phases


def test_fig06_swim_cpi_phases(run_once, bench_config):
    result = run_once(fig6_swim_cpi_phases, bench_config)
    print("\n" + result.format())
    # SWIM's profile has three phases; at least one thread's CPI series
    # must vary materially across intervals (coefficient of variation).
    cvs = []
    for series in result.series.values():
        arr = np.asarray(series)
        if arr.mean() > 0:
            cvs.append(arr.std() / arr.mean())
    assert max(cvs) > 0.1, "expected visible phase behaviour in SWIM"
