"""Micro-benchmarks of the simulator's hot kernels.

These are genuine pytest-benchmark measurements (multiple rounds) of the
three loops that dominate simulation cost: the shared-cache access path,
the batch L1 filter, and the event-driven engine.  Useful for tracking
performance regressions in the substrate itself.
"""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.l1 import simulate_l1_filter
from repro.cache.shared import PartitionedSharedCache
from repro.sim.config import SystemConfig
from repro.sim.driver import prepare_program, run_application


@pytest.fixture(scope="module")
def addresses():
    rng = np.random.default_rng(3)
    return rng.integers(0, 1 << 22, size=20_000, dtype=np.int64)


def test_micro_shared_cache_access(benchmark, addresses):
    geo = CacheGeometry(sets=32, ways=32)
    cache = PartitionedSharedCache(geo, 4)
    addr_list = addresses.tolist()

    def hammer():
        access = cache.access
        for i, a in enumerate(addr_list):
            access(i & 3, a)

    benchmark(hammer)
    assert sum(cache.stats.accesses) > 0


def test_micro_l1_filter(benchmark, addresses):
    geo = CacheGeometry(sets=32, ways=4)
    result = benchmark(simulate_l1_filter, addresses, geo)
    assert result.size == addresses.size


def test_micro_engine_end_to_end(benchmark):
    cfg = SystemConfig.quick()
    prepare_program("cg", cfg)  # warm the program cache; measure the engine

    result = benchmark.pedantic(
        run_application, args=("cg", "model-based", cfg), rounds=3, iterations=1
    )
    assert result.total_cycles > 0
