"""Distributed sweep scaling: 1/2/4 worker processes on the Figs. 19-21 slice.

Measures what the remote fleet actually buys.  Worker processes escape
the coordinator's GIL (a pool of *threads* would not — each job is a
CPU-bound Python simulation), so the ceiling is one job's wall time plus
the wire and dispatch overhead.  For every fleet size the benchmark:

1. starts N fresh ``repro worker`` subprocesses (startup excluded from
   the timed region — port files gate the start);
2. runs the slice through :class:`~repro.dist.RemoteEngine`, best of
   ``--reps`` walls;
3. asserts the aggregates are byte-identical to a serial control — a
   scaling number from a fleet that computes something else is not a
   scaling number.

Reported per fleet: wall, speedup over the 1-worker fleet, and parallel
efficiency (speedup / N).  Perfect scaling is impossible on this grid —
12 jobs over 4 workers gives a critical path of 3 jobs and the jobs are
not equal-sized — so the efficiency column is the honest figure.

Usage::

    PYTHONPATH=src python benchmarks/bench_dist_scaling.py          # BENCH.md numbers
    PYTHONPATH=src python benchmarks/bench_dist_scaling.py --smoke  # CI guard
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.dist import RemoteEngine
from repro.exec.engine import SerialEngine
from repro.exec.sweep import run_sweep
from repro.sim.config import SystemConfig


def start_worker(tmp: Path, idx: int) -> tuple[subprocess.Popen, tuple[str, int]]:
    port_file = tmp / f"port-{idx}-{time.monotonic_ns()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--port", "0", "--port-file", str(port_file),
            "--worker-id", f"bench-w{idx}",
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return proc, ("127.0.0.1", int(port_file.read_text().strip()))
        if proc.poll() is not None:
            raise RuntimeError(f"worker {idx} died at startup (rc={proc.returncode})")
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError(f"worker {idx} did not write its port file in time")


def measure_fleet(
    n_workers: int, apps, policies, config: SystemConfig, reps: int, tmp: Path
) -> tuple[float, str]:
    """Best-of-``reps`` wall for the slice on N fresh worker processes.

    Returns ``(best_wall_s, canonical aggregates JSON)``.  Workers are
    fresh per fleet so no fleet inherits another's warm process caches;
    within a fleet, reps share workers (steady-state dispatch is what a
    long sweep sees).
    """
    workers = [start_worker(tmp, i) for i in range(n_workers)]
    try:
        engine = RemoteEngine([address for _proc, address in workers])
        best, agg = float("inf"), None
        for _rep in range(reps):
            start = time.perf_counter()
            result = run_sweep(apps, policies, config=config, engine=engine)
            elapsed = time.perf_counter() - start
            assert not result.failures, result.failures
            assert not engine.degraded_reasons, engine.degraded_reasons
            rendered = json.dumps(result.aggregates(), sort_keys=True)
            assert agg is None or agg == rendered, "reps disagree with each other"
            agg = rendered
            best = min(best, elapsed)
        return best, agg
    finally:
        for proc, _address in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc, _address in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, 1/2 workers, byte-identity only (CI)")
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args()

    if args.smoke:
        apps, policies = ["ft", "cg"], ["shared", "static-equal"]
        config = SystemConfig.default().with_(n_intervals=5, interval_instructions=2000)
        fleets, reps = (1, 2), 1
    else:
        apps = ["swim", "art", "equake"]
        policies = ["model-based", "shared", "static-equal", "throughput"]
        config = SystemConfig.default()
        fleets, reps = (1, 2, 4), args.reps
    n_jobs = len(apps) * len(policies)

    serial_start = time.perf_counter()
    serial_agg = json.dumps(
        run_sweep(apps, policies, config=config, engine=SerialEngine()).aggregates(),
        sort_keys=True,
    )
    serial_wall = time.perf_counter() - serial_start

    walls: dict[int, float] = {}
    with tempfile.TemporaryDirectory(prefix="bench-dist-") as tmp_str:
        tmp = Path(tmp_str)
        for n in fleets:
            wall, agg = measure_fleet(n, apps, policies, config, reps, tmp)
            if agg != serial_agg:
                print(
                    f"error: {n}-worker fleet aggregates diverge from serial — "
                    "scaling numbers void",
                    file=sys.stderr,
                )
                return 1
            walls[n] = wall

    print(f"serial control: {n_jobs} jobs, {serial_wall:.2f}s (aggregates pinned)")
    print(f"{'workers':>7}  {'wall':>8}  {'speedup':>7}  {'efficiency':>10}")
    base = walls[fleets[0]]
    for n in fleets:
        speedup = base / walls[n]
        print(f"{n:>7}  {walls[n]:>7.2f}s  {speedup:>6.2f}x  {speedup / n:>9.1%}")
    print("dist-scaling-ok=yes (all fleets byte-identical to serial)")
    print(json.dumps({
        "jobs": n_jobs, "reps": reps, "serial_wall_s": round(serial_wall, 3),
        "walls_s": {str(n): round(w, 3) for n, w in walls.items()},
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
