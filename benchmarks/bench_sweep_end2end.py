"""End-to-end sweep benchmark: no prep cache vs. cold store vs. warm store.

Unlike ``bench_cache_kernel.py`` (engine-only), this measures the *whole*
job — trace generation, L1 filtering, replay — exactly what a sweep pays
per (app, policy) when every job lands in a worker process without a
compiled-program memo.  In-process caches (the program memo, the fastpath
prep slots, the prep store's LRU) are cleared before every measured run,
so each number models the per-(job x process) cost:

``none``
    No prep store configured — the pre-1.4 behaviour: every job
    regenerates and re-filters its program.
``cold``
    Prep store configured but empty (cleared before each run): the job
    pays generation *plus* artifact publication.  The interesting number
    is the overhead over ``none``.
``warm``
    Prep store populated: the job reconstructs its program from mmapped
    artifacts, skipping generation and the (dominant) L1 filter.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep_end2end.py          # BENCH.md table
    PYTHONPATH=src python benchmarks/bench_sweep_end2end.py --smoke  # CI guard

Pass ``--json PATH`` with any mode to persist the measurements (plus
host metadata) as a machine-readable artifact; the checked-in copies
follow the ``BENCH_<version>.json`` naming convention.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.cache import fastpath
from repro.prep import PrepStore, set_prep_store
from repro.sim.config import SystemConfig
from repro.sim.driver import clear_program_cache, run_application

FOUR_CORE_APPS = ("swim", "art", "equake")
FOUR_CORE_POLICIES = ("model-based", "shared", "static-equal", "throughput")
EIGHT_CORE_POLICIES = ("model-based", "fairness", "cpi-proportional")

MODES = ("none", "cold", "warm")


def _clear_inprocess_caches() -> None:
    """Drop every per-process cache so a run models a fresh worker."""
    clear_program_cache()
    fastpath._PREP_CACHE[:] = [None, None, {}]


def _time_job(app: str, policy: str, config: SystemConfig) -> tuple[float, str]:
    _clear_inprocess_caches()
    start = time.perf_counter()
    result = run_application(app, policy, config)
    elapsed = time.perf_counter() - start
    return elapsed, json.dumps(result.to_dict(), sort_keys=True)


def measure(
    config: SystemConfig, apps, policies, root: Path, reps: int = 3
) -> tuple[dict, dict]:
    """Best-of-``reps`` end-to-end seconds per (app, policy, mode).

    Returns ``(times, digests)``; the digests let the caller assert the
    three modes produced byte-identical results.
    """
    times: dict[tuple[str, str], dict[str, float]] = {}
    digests: dict[tuple[str, str], dict[str, str]] = {}
    store = PrepStore(root)
    for app in apps:
        for policy in policies:
            times[app, policy] = {}
            digests[app, policy] = {}
            for mode in MODES:
                best = float("inf")
                for _ in range(reps):
                    if mode == "none":
                        set_prep_store(None)
                    elif mode == "cold":
                        store.clear()
                        set_prep_store(PrepStore(root))
                    else:  # warm: bundles on disk, fresh in-process LRU
                        set_prep_store(PrepStore(root))
                    elapsed, digest = _time_job(app, policy, config)
                    best = min(best, elapsed)
                times[app, policy][mode] = best
                digests[app, policy][mode] = digest
            # ``warm`` must have found bundles: the cold reps above left
            # the store populated.
    set_prep_store(None)
    return times, digests


def check_equivalence(digests: dict) -> None:
    for combo, by_mode in digests.items():
        if len(set(by_mode.values())) != 1:
            raise SystemExit(f"results diverged across modes for {combo}: {by_mode}")


def report(title: str, times: dict) -> tuple[float, float]:
    totals = {mode: sum(r[mode] for r in times.values()) for mode in MODES}
    print(f"\n{title}")
    for (app, policy), r in times.items():
        print(
            f"  {app:8s} {policy:16s} none={r['none']:.3f}s cold={r['cold']:.3f}s "
            f"warm={r['warm']:.3f}s  warm-speedup={r['none'] / r['warm']:.2f}x"
        )
    speedup = totals["none"] / totals["warm"]
    overhead = totals["cold"] / totals["none"] - 1.0
    print(
        f"  aggregate: none={totals['none']:.2f}s cold={totals['cold']:.2f}s "
        f"warm={totals['warm']:.2f}s  warm-speedup={speedup:.2f}x "
        f"cold-overhead={overhead:+.1%}"
    )
    return speedup, overhead


def _rows_payload(times: dict) -> list[dict]:
    return [
        {
            "app": app,
            "policy": policy,
            **{f"{mode}_s": r[mode] for mode in MODES},
            "warm_speedup": r["none"] / r["warm"],
        }
        for (app, policy), r in times.items()
    ]


def write_json(path: str, payload: dict) -> None:
    """Persist measurements as ``BENCH_<version>.json``-style artifact."""
    import os
    import platform

    from repro import __version__

    payload = {
        "benchmark": "bench_sweep_end2end",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "repro_version": __version__,
        },
        **payload,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")


def run_smoke(root: Path, json_path: str | None = None) -> int:
    """CI guard at quick scale: equivalence across modes, a working warm
    path (>= 1 prep hit), and a warm run that is not slower than no-cache
    by more than noise allows."""
    config = SystemConfig.quick()
    times, digests = measure(
        config, ("swim", "art"), ("model-based", "shared"), root, reps=2
    )
    check_equivalence(digests)
    speedup, overhead = report("smoke (SystemConfig.quick)", times)

    # The warm path must actually hit the store: the first run publishes
    # (cold reps above may have cleared this combo's bundles), the second
    # — a fresh worker, in-process caches dropped — must hit.
    store = PrepStore(root)
    set_prep_store(store)
    _clear_inprocess_caches()
    run_application("swim", "model-based", config)
    _clear_inprocess_caches()
    run_application("swim", "model-based", config)
    set_prep_store(None)
    if json_path:
        write_json(
            json_path,
            {
                "mode": "smoke",
                "config": "quick",
                "combos": _rows_payload(times),
                "aggregate": {"warm_speedup": speedup, "cold_overhead": overhead},
            },
        )
    if store.stats()["hits"] < 1:
        print("smoke FAIL: warm run reported no prep-cache hits", file=sys.stderr)
        return 1
    print(
        f"\nsmoke ok: byte-identical across modes, warm hits={store.stats()['hits']}, "
        f"warm-speedup={speedup:.2f}x"
    )
    return 0


def run_full(root: Path, json_path: str | None = None) -> int:
    four, dig4 = measure(SystemConfig.default(), FOUR_CORE_APPS, FOUR_CORE_POLICIES, root)
    check_equivalence(dig4)
    s4, o4 = report("4-core (SystemConfig.default, Figs. 19-21 slice)", four)
    eight, dig8 = measure(SystemConfig.eight_core(), ("art",), EIGHT_CORE_POLICIES, root)
    check_equivalence(dig8)
    s8, o8 = report("8-core (SystemConfig.eight_core, Fig. 22 slice)", eight)
    print(
        f"\nheadline: warm-store end-to-end speedup 4-core {s4:.2f}x / 8-core {s8:.2f}x, "
        f"cold-store overhead 4-core {o4:+.1%} / 8-core {o8:+.1%} "
        f"(per-job, in-process caches cleared, best of 3)"
    )
    if json_path:
        write_json(
            json_path,
            {
                "mode": "full",
                "four_core": {
                    "combos": _rows_payload(four),
                    "aggregate": {"warm_speedup": s4, "cold_overhead": o4},
                },
                "eight_core": {
                    "combos": _rows_payload(eight),
                    "aggregate": {"warm_speedup": s8, "cold_overhead": o8},
                },
            },
        )
    return 0


def run_from_spec(path: str, root: Path, json_path: str | None = None) -> int:
    """Benchmark the slice a checked-in experiment spec describes:
    every (app x policy) of its grid, per thread count, through the same
    none/cold/warm modes — so BENCH.md tables can cite the spec file that
    produced them instead of flags."""
    from repro.spec import load_spec

    spec = load_spec(path)
    grid = spec.grid
    slices = []
    for n_threads in grid.thread_counts:
        config = grid.config().with_(n_threads=n_threads)
        times, digests = measure(config, grid.apps, grid.policies, root)
        check_equivalence(digests)
        speedup, overhead = report(f"{spec.name or path} (t={n_threads}, spec: {path})", times)
        slices.append(
            {
                "n_threads": n_threads,
                "combos": _rows_payload(times),
                "aggregate": {"warm_speedup": speedup, "cold_overhead": overhead},
            }
        )
    if json_path:
        write_json(json_path, {"mode": "spec", "spec": path, "slices": slices})
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI-scale run with correctness assertions",
    )
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="benchmark the grid of an experiment spec (e.g. "
        "specs/fig19_vs_private.yaml) instead of the built-in slices",
    )
    parser.add_argument(
        "--prep-dir", default=None, metavar="DIR",
        help="store root to benchmark against (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="write the measurements as JSON (convention: BENCH_<version>.json)",
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="repro-bench-prep-") as tmp:
        root = Path(args.prep_dir) if args.prep_dir else Path(tmp)
        if args.smoke:
            return run_smoke(root, args.json_path)
        if args.spec:
            return run_from_spec(args.spec, root, args.json_path)
        return run_full(root, args.json_path)


if __name__ == "__main__":
    raise SystemExit(main())
