"""Paper Figure 10: heterogeneous cache sensitivity of SWIM's threads.

The paper shows thread 1 improving substantially from 16 -> 32 ways while
thread 2 barely moves.  We probe each thread at a quarter and half of the
cache and assert the sensitivity spread.
"""

from repro.experiments import fig10_way_sensitivity


def test_fig10_way_sensitivity(run_once, bench_config):
    result = run_once(fig10_way_sensitivity, bench_config, "swim")
    print("\n" + result.format())
    sens = {t: result.sensitivity(t) for t in result.cpi}
    # The cache-hungry thread gains a lot from doubling its allocation...
    assert max(sens.values()) > 0.10
    # ...while the least sensitive thread gains very little.
    assert min(sens.values()) < 0.05
