"""Paper Figure 2: the system-configuration table."""

from repro.experiments import fig2_system_configuration


def test_fig02_system_configuration(run_once, bench_config):
    result = run_once(fig2_system_configuration, bench_config)
    print("\n" + result.format())
    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    assert rows["L2 cache type"] == ("Shared", "Shared")
    assert rows["Number of cores"][1] == "4"
    assert rows["L1 cache size"][1] == "8 KB"
