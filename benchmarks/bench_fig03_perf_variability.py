"""Paper Figure 3: per-thread performance variability under a shared cache.

Expected shape: wide variability; in every strong application the critical
thread is substantially slower than the fastest thread.
"""

from repro.experiments import fig3_performance_variability

STRONG_APPS = ("swim", "mgrid", "applu", "art", "cg", "mg")


def test_fig03_performance_variability(run_once, bench_config):
    result = run_once(fig3_performance_variability, bench_config)
    print("\n" + result.format())
    for row in result.rows:
        app, values = row[0], row[1:-1]
        assert max(values) == 1.0
        if app in STRONG_APPS:
            # The critical thread runs at under ~75 % of the fastest.
            assert min(values) < 0.75, f"{app}: no meaningful variability {values}"
