"""Reference-vs-fast-vs-batch L2 backend benchmark (the BENCH.md baseline).

Times the simulation engine only — program preparation is done outside
the measured region (the program memo is warmed first), and each
repetition gets a fresh policy, runtime and cache so no state leaks
between timings — on the policy-comparison replays behind Figs. 19-22.
All backends must be byte-identical (tests/test_cache_differential.py
pins that), so the only thing measured here is speed.

``reference`` and ``fast`` replay one cell at a time; ``batch`` replays
every policy cell of an app through :func:`repro.sim.run_batch` in one
pass over the shared prepared program, so its per-cell number is the
batch wall amortised over its lanes — exactly what a sweep cell pays.

Run under pytest-benchmark for tracked history::

    pytest benchmarks/bench_cache_kernel.py --benchmark-only

standalone for the paired best-of-3 tables recorded in BENCH.md::

    PYTHONPATH=src python benchmarks/bench_cache_kernel.py [--json out.json]

as a CI guard (quick scale, byte-identity + speedup-floor assertions)::

    PYTHONPATH=src python benchmarks/bench_cache_kernel.py --smoke --json out.json

or over the grid of a checked-in experiment spec::

    PYTHONPATH=src python benchmarks/bench_cache_kernel.py --spec specs/fig19_vs_private.yaml
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import pytest

from repro import __version__
from repro.cache import make_shared_cache
from repro.core import RuntimeSystem
from repro.cpu import CMPEngine
from repro.sim.config import SystemConfig
from repro.sim.driver import make_policy, prepare_program, run_batch

#: The fig19-22 slice used as the tracked baseline: three 4-core apps
#: under the headline policy comparison, plus the 8-core sensitivity
#: point.  Chosen to exercise both kernel families (partition-enforcing
#: and plain-LRU) and both geometry specialisations.
FOUR_CORE_APPS = ("swim", "art", "equake")
FOUR_CORE_POLICIES = ("model-based", "shared", "static-equal", "throughput")
EIGHT_CORE_POLICIES = ("model-based", "fairness", "cpi-proportional")

#: Lane counts for the batch scaling curve.  Lanes beyond the distinct
#: policy list repeat policies — run_batch does not dedupe, so repeats
#: time exactly like distinct cells of equal length.
LANE_COUNTS = (1, 2, 4, 8)


def _engine_for(compiled, policy: str, config: SystemConfig, backend: str) -> CMPEngine:
    """Fresh policy/runtime/cache/engine stack for one measured run."""
    pol = make_policy(policy, config)
    pol.reset()
    runtime = RuntimeSystem(pol, app=compiled.name)
    l2 = make_shared_cache(
        config.l2_geometry,
        config.n_threads,
        backend=backend,
        enforce_partition=pol.enforce_partition,
        targets=runtime.initial_targets(),
    )
    return CMPEngine(
        compiled,
        l2,
        config.timing,
        runtime,
        interval_instructions=config.interval_instructions,
    )


def _time_once(compiled, policy: str, config: SystemConfig, backend: str) -> float:
    engine = _engine_for(compiled, policy, config, backend)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def _time_batch(app: str, policies, config: SystemConfig) -> float:
    """Wall seconds for one multi-lane batched replay of ``app``.

    The program memo is warmed by the caller, so the prepare span inside
    ``run_batch`` is a cache hit and the measurement stays engine-only
    (plus per-lane policy/cache setup — which the per-cell paths pay per
    run too, outside *their* measured region; the batch can't separate
    it, so its numbers are conservative).
    """
    batched = config.with_(cache_backend="batch")
    cells = [(policy, batched) for policy in policies]
    start = time.perf_counter()
    run_batch(app, cells)
    return time.perf_counter() - start


def measure(config: SystemConfig, apps, policies, reps: int = 3) -> dict:
    """Best-of-``reps`` engine-only seconds per (app, policy, backend).

    The ``batch`` entry is the app's whole-batch wall amortised over its
    ``len(policies)`` lanes.
    """
    rows = {}
    for app in apps:
        compiled = prepare_program(app, config)
        batch_wall = min(_time_batch(app, policies, config) for _ in range(reps))
        for policy in policies:
            rows[app, policy] = {
                backend: min(
                    _time_once(compiled, policy, config, backend) for _ in range(reps)
                )
                for backend in ("reference", "fast")
            }
            rows[app, policy]["batch"] = batch_wall / len(policies)
    return rows


def measure_lane_scaling(
    config: SystemConfig, app: str, policies, reps: int = 3
) -> list[dict]:
    """Batch wall vs lane count: the honest shape of the win.

    Lanes run sequentially over shared state (no SIMD across lanes), so
    the wall grows ~linearly with lanes; what amortises is the fixed
    per-batch setup plus the per-cell dispatch the fastpath pays N
    times.  ``speedup_vs_fast`` is against N solo fastpath replays.
    """
    compiled = prepare_program(app, config)
    solo_fast = min(_time_once(compiled, policies[0], config, "fast") for _ in range(reps))
    curve = []
    for n in LANE_COUNTS:
        lanes = [policies[i % len(policies)] for i in range(n)]
        wall = min(_time_batch(app, lanes, config) for _ in range(reps))
        curve.append(
            {
                "lanes": n,
                "wall_s": wall,
                "per_lane_s": wall / n,
                "speedup_vs_fast": (solo_fast * n) / wall,
            }
        )
    return curve


def report(title: str, rows: dict) -> dict:
    totals = {
        backend: sum(r[backend] for r in rows.values())
        for backend in ("reference", "fast", "batch")
    }
    print(f"\n{title}")
    for (app, policy), r in rows.items():
        print(
            f"  {app:8s} {policy:16s} ref={r['reference']:.3f}s "
            f"fast={r['fast']:.3f}s batch={r['batch']:.3f}s  "
            f"fast {r['reference'] / r['fast']:.2f}x / "
            f"batch {r['reference'] / r['batch']:.2f}x"
        )
    agg = {
        "reference_s": totals["reference"],
        "fast_s": totals["fast"],
        "batch_s": totals["batch"],
        "fast_vs_reference": totals["reference"] / totals["fast"],
        "batch_vs_reference": totals["reference"] / totals["batch"],
        "batch_vs_fast": totals["fast"] / totals["batch"],
    }
    print(
        f"  aggregate: ref={totals['reference']:.2f}s fast={totals['fast']:.2f}s "
        f"batch={totals['batch']:.2f}s  fast {agg['fast_vs_reference']:.2f}x / "
        f"batch {agg['batch_vs_reference']:.2f}x (batch vs fast "
        f"{agg['batch_vs_fast']:.2f}x)"
    )
    return agg


# ----------------------------------------------------------------------
# JSON artifact (BENCH_<version>.json)
# ----------------------------------------------------------------------


def host_meta() -> dict:
    """Where the numbers came from — perf results are meaningless
    without the machine."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "repro_version": __version__,
    }


def _rows_payload(rows: dict) -> list[dict]:
    return [
        {
            "app": app,
            "policy": policy,
            "reference_s": r["reference"],
            "fast_s": r["fast"],
            "batch_s": r["batch"],
            "fast_vs_reference": r["reference"] / r["fast"],
            "batch_vs_reference": r["reference"] / r["batch"],
        }
        for (app, policy), r in rows.items()
    ]


def write_json(path: str, payload: dict) -> None:
    payload = {"benchmark": "bench_cache_kernel", "host": host_meta(), **payload}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entry points (quick scale, for tracked history)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("reference", "fast"))
@pytest.mark.parametrize("policy", ("model-based", "shared"))
def test_replay_backend(benchmark, policy, backend):
    config = SystemConfig.quick()
    compiled = prepare_program("art", config)

    def run():
        return _engine_for(compiled, policy, config, backend).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_cycles > 0


def test_fast_backend_is_faster(benchmark):
    """Smoke guard: fast must beat reference on the same replay.

    The full >= 3x aggregate claim is measured at evaluation scale by the
    standalone entry point below and recorded in BENCH.md; at the quick
    scale used in CI a conservative 1.5x floor keeps the check cheap
    while still catching a fast path that rots back to reference speed.
    """
    config = SystemConfig.quick()
    compiled = prepare_program("art", config)
    times = {
        backend: min(_time_once(compiled, "model-based", config, backend) for _ in range(3))
        for backend in ("reference", "fast")
    }
    benchmark.pedantic(
        lambda: _engine_for(compiled, "model-based", config, "fast").run(),
        rounds=1,
        iterations=1,
    )
    assert times["reference"] / times["fast"] > 1.5, times


# ----------------------------------------------------------------------
# standalone entry points
# ----------------------------------------------------------------------


def run_smoke(json_path: str | None) -> int:
    """CI guard at quick scale: the batched replay must be byte-identical
    to the fastpath on every lane and at least 2x faster in aggregate.

    The evaluation-scale claim (>= 10x vs reference) lives in BENCH.md;
    2x-vs-fast at quick scale is deliberately conservative — it catches a
    batch path that rots back to per-cell dispatch without flaking on CI
    timer noise.
    """
    from repro.sim.driver import run_application

    config = SystemConfig.quick()
    app, policies = "swim", FOUR_CORE_POLICIES
    compiled = prepare_program(app, config)

    batched = config.with_(cache_backend="batch")
    results = run_batch(app, [(policy, batched) for policy in policies])
    for policy, result in zip(policies, results):
        solo = run_application(app, policy, config.with_(cache_backend="fast"))
        if result.to_dict() != solo.to_dict():
            print(f"smoke FAIL: batch lane {app}/{policy} != fastpath", file=sys.stderr)
            return 1

    batch_wall = min(_time_batch(app, policies, config) for _ in range(3))
    fast_wall = min(
        sum(_time_once(compiled, policy, config, "fast") for policy in policies)
        for _ in range(3)
    )
    speedup = fast_wall / batch_wall
    print(
        f"smoke ({app}, {len(policies)} lanes, SystemConfig.quick): "
        f"batch={batch_wall:.4f}s fast={fast_wall:.4f}s  {speedup:.2f}x"
    )
    if json_path:
        write_json(
            json_path,
            {
                "mode": "smoke",
                "config": "quick",
                "app": app,
                "policies": list(policies),
                "batch_s": batch_wall,
                "fast_s": fast_wall,
                "batch_vs_fast": speedup,
                "byte_identical": True,
            },
        )
    if speedup < 2.0:
        print(
            f"smoke FAIL: batch speedup {speedup:.2f}x below the 2.0x floor",
            file=sys.stderr,
        )
        return 1
    print(f"smoke ok: byte-identical lanes, batch {speedup:.2f}x vs fastpath")
    return 0


def run_full(json_path: str | None) -> int:
    four = measure(SystemConfig.default(), FOUR_CORE_APPS, FOUR_CORE_POLICIES)
    agg4 = report("4-core (SystemConfig.default, Figs. 19-21 slice)", four)
    eight = measure(SystemConfig.eight_core(), ("art",), EIGHT_CORE_POLICIES)
    agg8 = report("8-core (SystemConfig.eight_core, Fig. 22 slice)", eight)
    curve = measure_lane_scaling(SystemConfig.default(), "swim", FOUR_CORE_POLICIES)
    print("\nbatch lane scaling (swim, SystemConfig.default):")
    for point in curve:
        print(
            f"  lanes={point['lanes']:2d} wall={point['wall_s']:.3f}s "
            f"per-lane={point['per_lane_s']:.3f}s  "
            f"{point['speedup_vs_fast']:.2f}x vs solo fastpath"
        )
    print(
        f"\nheadline: 4-core fast {agg4['fast_vs_reference']:.2f}x / "
        f"batch {agg4['batch_vs_reference']:.2f}x, 8-core fast "
        f"{agg8['fast_vs_reference']:.2f}x / batch {agg8['batch_vs_reference']:.2f}x "
        "(engine-only, best of 3)"
    )
    if json_path:
        write_json(
            json_path,
            {
                "mode": "full",
                "four_core": {"combos": _rows_payload(four), "aggregate": agg4},
                "eight_core": {"combos": _rows_payload(eight), "aggregate": agg8},
                "lane_scaling": curve,
            },
        )
    return 0


def run_from_spec(path: str, json_path: str | None) -> int:
    """Benchmark the slice a checked-in experiment spec describes, so
    BENCH.md tables can cite the spec file that produced them."""
    from repro.spec import load_spec

    spec = load_spec(path)
    grid = spec.grid
    slices = []
    for n_threads in grid.thread_counts:
        config = grid.config().with_(n_threads=n_threads)
        rows = measure(config, grid.apps, grid.policies)
        agg = report(f"{spec.name or path} (t={n_threads}, spec: {path})", rows)
        slices.append(
            {"n_threads": n_threads, "combos": _rows_payload(rows), "aggregate": agg}
        )
    if json_path:
        write_json(json_path, {"mode": "spec", "spec": path, "slices": slices})
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced CI-scale run with byte-identity and speedup assertions",
    )
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="benchmark the grid of an experiment spec (e.g. "
        "specs/fig19_vs_private.yaml) instead of the built-in slices",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help=f"write the measurements as JSON (convention: BENCH_{__version__}.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.json_path)
    if args.spec:
        return run_from_spec(args.spec, args.json_path)
    return run_full(args.json_path)


if __name__ == "__main__":
    raise SystemExit(main())
