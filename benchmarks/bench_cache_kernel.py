"""Reference-vs-fast L2 backend benchmark (the BENCH.md baseline).

Times the simulation engine only — program preparation is done outside
the measured region, and each repetition gets a fresh policy, runtime
and cache so no state leaks between timings — on the policy-comparison
replays behind Figs. 19-22.  The ``fast`` backend must be byte-identical
to ``reference`` (tests/test_cache_differential.py pins that), so the
only thing measured here is speed.

Run under pytest-benchmark for tracked history::

    pytest benchmarks/bench_cache_kernel.py --benchmark-only

or standalone for the paired best-of-3 table recorded in BENCH.md::

    PYTHONPATH=src python benchmarks/bench_cache_kernel.py
"""

from __future__ import annotations

import time

import pytest

from repro.cache import make_shared_cache
from repro.core import RuntimeSystem
from repro.cpu import CMPEngine
from repro.sim.config import SystemConfig
from repro.sim.driver import make_policy, prepare_program

#: The fig19-22 slice used as the tracked baseline: three 4-core apps
#: under the headline policy comparison, plus the 8-core sensitivity
#: point.  Chosen to exercise both kernel families (partition-enforcing
#: and plain-LRU) and both geometry specialisations.
FOUR_CORE_APPS = ("swim", "art", "equake")
FOUR_CORE_POLICIES = ("model-based", "shared", "static-equal", "throughput")
EIGHT_CORE_POLICIES = ("model-based", "fairness", "cpi-proportional")


def _engine_for(compiled, policy: str, config: SystemConfig, backend: str) -> CMPEngine:
    """Fresh policy/runtime/cache/engine stack for one measured run."""
    pol = make_policy(policy, config)
    pol.reset()
    runtime = RuntimeSystem(pol, app=compiled.name)
    l2 = make_shared_cache(
        config.l2_geometry,
        config.n_threads,
        backend=backend,
        enforce_partition=pol.enforce_partition,
        targets=runtime.initial_targets(),
    )
    return CMPEngine(
        compiled,
        l2,
        config.timing,
        runtime,
        interval_instructions=config.interval_instructions,
    )


def _time_once(compiled, policy: str, config: SystemConfig, backend: str) -> float:
    engine = _engine_for(compiled, policy, config, backend)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def measure(config: SystemConfig, apps, policies, reps: int = 3) -> dict:
    """Best-of-``reps`` engine-only seconds per (app, policy, backend)."""
    rows = {}
    for app in apps:
        compiled = prepare_program(app, config)
        for policy in policies:
            rows[app, policy] = {
                backend: min(
                    _time_once(compiled, policy, config, backend) for _ in range(reps)
                )
                for backend in ("reference", "fast")
            }
    return rows


def report(title: str, rows: dict) -> float:
    total_ref = sum(r["reference"] for r in rows.values())
    total_fast = sum(r["fast"] for r in rows.values())
    print(f"\n{title}")
    for (app, policy), r in rows.items():
        print(
            f"  {app:8s} {policy:16s} ref={r['reference']:.3f}s "
            f"fast={r['fast']:.3f}s  {r['reference'] / r['fast']:.2f}x"
        )
    speedup = total_ref / total_fast
    print(f"  aggregate: ref={total_ref:.2f}s fast={total_fast:.2f}s  {speedup:.2f}x")
    return speedup


# ----------------------------------------------------------------------
# pytest-benchmark entry points (quick scale, for tracked history)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ("reference", "fast"))
@pytest.mark.parametrize("policy", ("model-based", "shared"))
def test_replay_backend(benchmark, policy, backend):
    config = SystemConfig.quick()
    compiled = prepare_program("art", config)

    def run():
        return _engine_for(compiled, policy, config, backend).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_cycles > 0


def test_fast_backend_is_faster(benchmark):
    """Smoke guard: fast must beat reference on the same replay.

    The full >= 3x aggregate claim is measured at evaluation scale by the
    standalone entry point below and recorded in BENCH.md; at the quick
    scale used in CI a conservative 1.5x floor keeps the check cheap
    while still catching a fast path that rots back to reference speed.
    """
    config = SystemConfig.quick()
    compiled = prepare_program("art", config)
    times = {
        backend: min(_time_once(compiled, "model-based", config, backend) for _ in range(3))
        for backend in ("reference", "fast")
    }
    benchmark.pedantic(
        lambda: _engine_for(compiled, "model-based", config, "fast").run(),
        rounds=1,
        iterations=1,
    )
    assert times["reference"] / times["fast"] > 1.5, times


if __name__ == "__main__":
    four = measure(SystemConfig.default(), FOUR_CORE_APPS, FOUR_CORE_POLICIES)
    s4 = report("4-core (SystemConfig.default, Figs. 19-21 slice)", four)
    eight = measure(SystemConfig.eight_core(), ("art",), EIGHT_CORE_POLICIES)
    s8 = report("8-core (SystemConfig.eight_core, Fig. 22 slice)", eight)
    print(f"\nheadline: 4-core {s4:.2f}x, 8-core {s8:.2f}x (engine-only, best of 3)")
