"""Paper Figure 9: constructive vs destructive inter-thread interactions.

Expected shape: not all interactions are constructive; a significant
destructive (cross-thread eviction) component exists in the contended
applications, while sharing-heavy small apps are mostly constructive.
"""

from repro.experiments import fig9_interaction_breakdown


def test_fig09_interaction_breakdown(run_once, bench_config):
    result = run_once(fig9_interaction_breakdown, bench_config)
    print("\n" + result.format())
    rows = {row[0]: (float(row[1]), float(row[2])) for row in result.rows}
    # Every app shows some of both; contended apps are destruction-heavy.
    destructive = [d for _, d in rows.values()]
    assert max(destructive) > 40.0, "expected significant destructive interaction somewhere"
    assert min(destructive) < 60.0, "expected constructive sharing somewhere"
    # ft shares heavily and should be mostly constructive.
    assert rows["ft"][0] > 50.0
