"""Paper Figure 15: runtime CPI-vs-ways models and the optimised partition.

Expected shape: the optimiser's partition gives the critical thread the
largest share and its predicted overall CPI (max over threads) is no worse
than the equal partition's.
"""

from repro.experiments import fig15_runtime_models


def test_fig15_runtime_models(run_once, bench_config):
    result = run_once(fig15_runtime_models, bench_config, "cg")
    print("\n" + result.format())
    assert sum(result.optimized_partition) == bench_config.total_ways
    assert result.predicted_cpi_optimized <= result.predicted_cpi_equal + 1e-9
    # cg's critical thread (index 2, big footprint) gets the largest share.
    assert result.optimized_partition[2] == max(result.optimized_partition)
    # Each thread has a model backed by at least two observed knots.
    assert all(len(k) >= 2 for k in result.knots.values())
