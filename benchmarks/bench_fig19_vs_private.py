"""Paper Figure 19: dynamic partitioning vs the statically (equal)
partitioned — i.e. private — cache.

Paper bands: improvement up to 23 %, average ~11 %, positive for the
contended applications and near-neutral for the small-working-set codes.
Our synthetic criticals are somewhat more cache-sensitive than the real
benchmarks, so the maxima run higher (documented in EXPERIMENTS.md); the
assertions guard the shape: who wins and where it is neutral.
"""

from repro.experiments import fig19_vs_private

SMALL_APPS = {"equake", "ft", "wupwise"}


def test_fig19_vs_private(run_once, bench_config):
    result = run_once(fig19_vs_private, bench_config)
    print("\n" + result.format())
    by_app = dict(zip(result.apps, result.speedups, strict=True))
    assert result.average > 0.05, "dynamic partitioning must beat private on average"
    assert result.maximum > 0.15
    for app, gain in by_app.items():
        if app in SMALL_APPS:
            assert abs(gain) < 0.05, f"{app} should be near-neutral, got {gain:+.1%}"
        else:
            assert gain > 0.0, f"{app} should gain over private, got {gain:+.1%}"
