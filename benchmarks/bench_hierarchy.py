"""Hierarchical co-execution (paper §VI-C, Fig. 16).

Two four-thread applications share one CMP.  Expected shape:

* partitioning between applications alone ("os-only", equal split inside
  each slice) does *not* beat the unmanaged shared cache — it inherits the
  static-equal problem inside every slice;
* adding the paper's intra-application runtime below the OS layer turns
  partitioning into a clear win for the wall clock — the paper's central
  claim that the intra-application layer is a necessary part of the
  hierarchy.
"""

from repro.experiments.reporting import format_table
from repro.multiapp import run_coexecution

PAIR = ["cg", "swim"]


def run_all_schemes(config):
    return {
        scheme: run_coexecution(PAIR, config, scheme=scheme, threads_per_app=4)
        for scheme in ("shared", "os-only", "hierarchical", "hierarchical-static-os")
    }


def test_hierarchical_coexecution(run_once, bench_config):
    results = run_once(run_all_schemes, bench_config)
    rows = []
    for scheme, res in results.items():
        rows.append(
            [scheme]
            + [f"{a.completion_cycles / 1e6:.2f}M" for a in res.apps]
            + [f"{res.total_cycles / 1e6:.2f}M"]
        )
    print("\n" + format_table(
        ["scheme"] + PAIR + ["wall clock"],
        rows,
        title="Hierarchical co-execution: two 4-thread apps, one shared L2",
    ))

    shared = results["shared"].total_cycles
    os_only = results["os-only"].total_cycles
    hier = results["hierarchical"].total_cycles
    # The full hierarchy clearly beats both the unmanaged cache and the
    # OS-only scheme; OS-only alone is not competitive.
    assert hier < shared * 0.97, "hierarchy should beat the unmanaged shared cache"
    assert hier < os_only * 0.95, "the intra-app layer must add value below the OS layer"
    # Dynamic OS budgets land within the plausible band.
    budgets = results["hierarchical"].budget_trace[-1][1]
    assert sum(budgets) == bench_config.total_ways
    assert min(budgets) >= 8
