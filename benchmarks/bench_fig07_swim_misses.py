"""Paper Figure 7: per-interval L2 misses of one SWIM thread, which must
track the CPI series of Figure 6 (that correlation is the paper's point)."""

from repro.experiments import fig7_swim_miss_phases


def test_fig07_swim_miss_phases(run_once, bench_config):
    result = run_once(fig7_swim_miss_phases, bench_config)
    print("\n" + result.format())
    assert "correlation" in result.notes
    corr = float(result.notes.split(":")[-1])
    assert corr > 0.6, f"miss series should track the CPI series, corr={corr}"
