"""Paper Figure 22: the headline comparisons on an 8-core CMP.

Paper claim: gains similar to the 4-core case (same cache, twice the
threads — per-thread capacity halves, so partitioning matters at least as
much)."""

from repro.experiments import fig22_eight_core


def test_fig22_eight_core(run_once, bench_config_8core):
    result = run_once(fig22_eight_core, bench_config_8core)
    print("\n" + result.format())
    assert result.vs_private.average > 0.03
    assert result.vs_shared.average > 0.0
    assert result.vs_shared.maximum > 0.05
