"""Ablation benches for the reproduction's own design choices.

* interval length (paper: results vary little with interval size),
* model extrapolation mode (linear extrapolation is the exploration
  mechanism; clamping freezes partitions),
* reallocation termination rule (the literal Fig. 13 identity rule
  deadlocks on runner-up ties),
* CPI-proportional vs model-based (paper §VII: model-based won all cases).
"""

from repro.experiments import (
    ablation_cpi_vs_model,
    ablation_fitting,
    ablation_interval_length,
    ablation_termination_rule,
)

ABLATION_APPS = ["swim", "mgrid", "cg"]


def _pct(cell: str) -> float:
    return float(cell.rstrip("%")) / 100.0


def test_ablation_interval_length(run_once, bench_config):
    result = run_once(ablation_interval_length, bench_config, ABLATION_APPS)
    print("\n" + result.format())
    # The paper reports little variation across interval lengths: at every
    # scale the scheme stays effective on these contended apps.
    for row in result.rows:
        gains = [_pct(c) for c in row[1:]]
        assert max(gains) > 0.0, f"{row[0]}: no gain at any interval length"


def test_ablation_fitting(run_once, bench_config):
    result = run_once(ablation_fitting, bench_config, ABLATION_APPS)
    print("\n" + result.format())
    linear = [_pct(row[1]) for row in result.rows]
    clamped = [_pct(row[2]) for row in result.rows]
    # Exploration matters: linear extrapolation must dominate on average.
    assert sum(linear) > sum(clamped)


def test_ablation_termination_rule(run_once, bench_config):
    result = run_once(ablation_termination_rule, bench_config, ABLATION_APPS)
    print("\n" + result.format())
    ours = [_pct(row[1]) for row in result.rows]
    literal = [_pct(row[2]) for row in result.rows]
    assert sum(ours) > sum(literal), "improvement rule should dominate the literal rule"


def test_ablation_cpi_vs_model(run_once, bench_config):
    result = run_once(ablation_cpi_vs_model, bench_config)
    print("\n" + result.format())
    wins = int(result.notes.split("on ")[1].split("/")[0])
    # Paper: the model-based scheme outperformed the CPI-based scheme in
    # all tested cases; we require a clear majority.
    assert wins >= 6
