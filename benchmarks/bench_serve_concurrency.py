"""Service concurrency benchmark: coalescing exactness + warm throughput.

Two claims from DESIGN.md §F, measured against a live service (real
sockets, the threaded harness from ``repro.serve.runner``):

**Exactly-once execution.**  N concurrent clients (default 8) submit
overlapping grids — every client shares the baseline policy's cells, and
several submit identical grids outright.  However the submissions race,
each distinct cell must execute exactly once: ``serve.cells.executed``
and the store's ``writes`` must equal the union grid's cell count, with
the rest resolved by attach/coalesce/store.

**Warm throughput.**  A warm service sweep (every cell a store hit,
journaled per cell, streamed over HTTP) must cost no more than ~10% over
a warm ``run_sweep`` of the same union grid with the same store and a
journal — i.e. the service layers (HTTP, asyncio, event streams) are
noise next to the per-cell store read + fsynced journal append both
paths pay.  Both sides are best-of-``--reps``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_concurrency.py          # BENCH.md numbers
    PYTHONPATH=src python benchmarks/bench_serve_concurrency.py --smoke  # CI guard
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.exec.engine import SerialEngine
from repro.exec.store import ResultStore
from repro.exec.sweep import run_sweep
from repro.serve.client import ServeClient
from repro.serve.protocol import SweepRequest
from repro.serve.runner import ServeSettings, start_in_thread

APPS = ("ft", "cg")
POLICIES = ("shared", "static-equal", "throughput", "model-based")
BASELINE = "shared"


def _grid(policies, seeds, *, intervals, instr, client="bench", resume=True) -> dict:
    return {
        "apps": list(APPS),
        "policies": list(policies),
        "seeds": list(seeds),
        "baseline": BASELINE,
        "intervals": intervals,
        "interval_instructions": instr,
        "client": client,
        "resume": resume,
    }


def fan_out(client: ServeClient, n_clients: int, seeds, *, intervals, instr) -> list[dict]:
    """N clients race overlapping submissions; returns their final statuses.

    Client ``i`` sweeps the baseline plus one rotating policy, so all
    clients share the baseline cells (per-cell coalescing) and clients
    ``i`` and ``i + 3`` submit identical grids (full-sweep attach).
    """
    results: list[dict] = [None] * n_clients
    barrier = threading.Barrier(n_clients)
    failures: list[Exception] = []

    def worker(i: int) -> None:
        policies = [BASELINE, POLICIES[1 + i % (len(POLICIES) - 1)]]
        payload = _grid(policies, seeds, intervals=intervals, instr=instr,
                        client=f"client-{i}")
        barrier.wait()
        try:
            results[i] = client.run(payload)
        except Exception as exc:  # noqa: BLE001 — surfaced after the join
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(600)
    if failures:
        raise failures[0]
    assert all(r is not None and r["status"] == "done" for r in results), results
    return results


def measure_warm(client: ServeClient, union: dict, reps: int) -> float:
    """Best-of-``reps`` wall seconds for a fully-warm service sweep.

    ``resume: False`` forces the store-resolution path (not a journal
    replay), and the service's ``retain=1`` + an eviction dummy between
    reps keeps the resubmission from simply attaching to the retained
    result of the previous rep.
    """
    best = float("inf")
    for rep in range(reps):
        # Evict the union sweep from retention (retain=1: the dummy
        # becomes the one retained finished sweep).
        client.run(_grid([BASELINE], [100 + rep], intervals=union["intervals"],
                         instr=union["interval_instructions"], client="evictor"))
        start = time.perf_counter()
        final = client.run({**union, "resume": False, "client": "warm-bench"})
        elapsed = time.perf_counter() - start
        assert final["status"] == "done", final
        assert final["executed"] == 0, (
            f"warm rep {rep} executed {final['executed']} cell(s); store should "
            "have resolved everything"
        )
        best = min(best, elapsed)
    return best


def measure_sweep_warm(union: dict, store_root: Path, tmp: Path, reps: int) -> float:
    """Best-of-``reps`` wall seconds for the batch-path equivalent: a warm
    ``run_sweep`` over the same store, journaling per cell like the
    service does."""
    request = SweepRequest.from_dict(union)
    best = float("inf")
    for rep in range(reps):
        store = ResultStore(store_root)
        start = time.perf_counter()
        result = run_sweep(
            list(request.apps), list(request.policies),
            seeds=list(request.seeds), thread_counts=list(request.thread_counts),
            config=request.config(), engine=SerialEngine(), store=store,
            baseline=request.baseline, journal=tmp / f"control-{rep}.jsonl",
        )
        rendered = json.dumps(result.to_dict())  # `repro sweep --json` serializes too
        elapsed = time.perf_counter() - start
        assert result.simulated == 0 and rendered, "control sweep was not warm"
        best = min(best, elapsed)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid + relaxed throughput bound (CI)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args()

    if args.clients < 8:
        print("error: the concurrency claim needs --clients >= 8", file=sys.stderr)
        return 2
    seeds = [1] if args.smoke else list(range(1, 9))
    intervals, instr = (3, 2000) if args.smoke else (10, 8000)
    reps = 2 if args.smoke else args.reps
    # Smoke runs a tiny grid on loaded CI boxes, where the fixed ~1ms of
    # response building dominates sub-10ms walls; the 10% claim is
    # asserted at bench scale and recorded in BENCH.md.
    bound = 3.0 if args.smoke else 1.10

    union = _grid(POLICIES, seeds, intervals=intervals, instr=instr)
    n_cells = len(APPS) * len(POLICIES) * len(seeds)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp_str:
        tmp = Path(tmp_str)
        settings = ServeSettings(port=0, data_dir=tmp / "data", jobs=1, retain=1)
        handle = start_in_thread(settings)
        try:
            client = ServeClient(port=handle.port, timeout=600)

            t0 = time.perf_counter()
            fan_out(client, args.clients, seeds, intervals=intervals, instr=instr)
            cold_wall = time.perf_counter() - t0
            stats = client.stats()
            counters = stats["counters"]
            executed = counters.get("serve.cells.executed", 0)
            writes = stats["store"]["writes"]
            print(
                f"fan-out: {args.clients} clients, union {n_cells} cells, "
                f"{cold_wall:.2f}s cold wall"
            )
            print(
                f"  executed={executed} store-writes={writes} "
                f"attached={counters.get('serve.sweeps.attached', 0)} "
                f"coalesced={counters.get('serve.cells.coalesced', 0)} "
                f"store-hits={counters.get('serve.cells.store_hits', 0)}"
            )
            if executed != n_cells or writes != n_cells:
                print(
                    f"error: union has {n_cells} distinct cells but the engine "
                    f"executed {executed} (store wrote {writes}) — coalescing "
                    "failed to make the work exactly-once",
                    file=sys.stderr,
                )
                return 1

            serve_warm = measure_warm(client, union, reps)
        finally:
            handle.stop()

        sweep_warm = measure_sweep_warm(union, settings.resolved_cache_dir(), tmp, reps)

    ratio = serve_warm / sweep_warm if sweep_warm > 0 else float("inf")
    print(
        f"warm union sweep ({n_cells} cells, best of {reps}): "
        f"service {serve_warm * 1e3:.1f}ms vs batch {sweep_warm * 1e3:.1f}ms "
        f"-> ratio {ratio:.3f}"
    )
    if ratio > bound:
        print(
            f"error: warm service sweep is {ratio:.2f}x the batch path "
            f"(bound {bound:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(f"serve-overhead-ok={ratio:.3f} (bound {bound:.2f})")
    print(json.dumps({
        "clients": args.clients, "union_cells": n_cells,
        "cold_wall_s": round(cold_wall, 3),
        "serve_warm_s": round(serve_warm, 4), "sweep_warm_s": round(sweep_warm, 4),
        "ratio": round(ratio, 3),
    }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
