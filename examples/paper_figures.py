#!/usr/bin/env python
"""Regenerate every table and figure from the paper in one run.

    python examples/paper_figures.py [--quick] [fig3 fig20 ...]

With no arguments, all experiments run on the default (calibrated)
configuration; ``--quick`` switches to the small test configuration.
Results print as ASCII tables/series and are also written as JSON to
``paper_figures_out/``.
"""

import json
import pathlib
import sys

from repro import SystemConfig
from repro.experiments import EXPERIMENTS

OUT_DIR = pathlib.Path("paper_figures_out")


def main() -> None:
    args = [a for a in sys.argv[1:]]
    quick = "--quick" in args
    names = [a for a in args if not a.startswith("--")] or list(EXPERIMENTS)

    config = SystemConfig.quick() if quick else SystemConfig.default()
    OUT_DIR.mkdir(exist_ok=True)

    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            raise SystemExit(f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}")
        cfg = config
        if name == "fig22":
            cfg = config.with_(n_threads=8)
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        result = runner(cfg)
        print(result.format())
        print()
        (OUT_DIR / f"{name}.json").write_text(json.dumps(result.to_dict(), indent=2))
    print(f"JSON copies written to {OUT_DIR}/")


if __name__ == "__main__":
    main()
