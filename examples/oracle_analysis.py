#!/usr/bin/env python
"""Offline miss-curve analysis and oracle partitions (repro.analysis).

Profiles each thread of an application with Mattson stack distances (one
pass yields the exact LRU miss count at *every* associativity), prints the
miss curves, solves for the optimal static partition under both classic
objectives, and races the informed static oracle against the paper's
dynamic scheme.

    python examples/oracle_analysis.py [app]
"""

import sys

from repro import SystemConfig, run_application
from repro.analysis import oracle_static_policy, oracle_static_targets, thread_miss_curves
from repro.experiments.reporting import format_table
from repro.sim.driver import prepare_program
from repro.trace import list_workloads


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "cg"
    if app not in list_workloads():
        raise SystemExit(f"unknown app {app!r}; choose from: {', '.join(list_workloads())}")
    config = SystemConfig.default().with_(n_intervals=30)

    compiled = prepare_program(app, config)
    curves = thread_miss_curves(compiled, config)
    probe_ways = [2, 4, 8, 12, 16, 24, 32]
    rows = [
        [f"thread {t}"] + [int(curves[t][w]) for w in probe_ways]
        for t in range(config.n_threads)
    ]
    print(format_table(
        ["thread"] + [f"{w}w" for w in probe_ways],
        rows,
        title=f"{app}: exact L2 miss counts by allocated ways (Mattson, per thread)",
    ))

    t_total = oracle_static_targets(app, config, objective="total")
    t_max = oracle_static_targets(app, config, objective="max")
    print(f"\noptimal static partition, min total misses : {t_total}")
    print(f"optimal static partition, min max CPI      : {t_max}")

    oracle = run_application(app, oracle_static_policy(app, config), config)
    dyn = run_application(app, "model-based", config)
    equal = run_application(app, "static-equal", config)
    print(f"\nstatic equal : {equal.total_cycles / 1e6:8.2f}M cycles")
    print(f"oracle static: {oracle.total_cycles / 1e6:8.2f}M cycles "
          f"({oracle.speedup_over(equal):+.1%} vs equal)")
    print(f"dynamic      : {dyn.total_cycles / 1e6:8.2f}M cycles "
          f"({dyn.speedup_over(oracle):+.1%} vs the oracle)")
    print("\nThe oracle knows every miss curve exactly but must commit to one "
          "partition;\nthe dynamic runtime knows nothing up front and adapts — "
          "on phased workloads\nadaptivity beats perfect static information.")


if __name__ == "__main__":
    main()
