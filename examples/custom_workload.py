#!/usr/bin/env python
"""Define a custom multithreaded workload and see partitioning adapt.

Builds a profile from scratch — one cache-hungry solver thread, a bursty
transpose (streaming) thread, and two light helpers — runs it under the
shared baseline and the dynamic scheme, and prints the way-partition
trajectory so you can watch the runtime converge.

    python examples/custom_workload.py
"""

from repro import SystemConfig, run_application
from repro.experiments.reporting import format_table
from repro.trace import PhaseSegment, ThreadBehavior, WorkloadProfile

my_app = WorkloadProfile(
    name="my-solver",
    suite="NAS",
    description="custom demo: solver + transpose + two helpers",
    base_behaviors=(
        # The solver: large reusable footprint, memory-hungry -> critical.
        ThreadBehavior(ws_lines=300, skew=2.0, mem_ratio=0.42,
                       share_frac=0.10, stream_frac=0.02),
        # The transpose: line-stride streaming bursts that would trash a
        # shared LRU cache, but are cheap for the thread itself.
        ThreadBehavior(ws_lines=64, skew=2.5, mem_ratio=0.32,
                       share_frac=0.05, stream_frac=0.20,
                       stream_burst=1.0, stream_stride_words=8),
        # Two light helpers with small footprints.
        ThreadBehavior(ws_lines=90, skew=2.2, mem_ratio=0.30, share_frac=0.10),
        ThreadBehavior(ws_lines=70, skew=2.2, mem_ratio=0.30, share_frac=0.10),
    ),
    phases=(
        PhaseSegment(intervals=10, ws_scales=(1.0, 1.0, 1.0, 1.0)),
        PhaseSegment(intervals=10, ws_scales=(1.3, 1.0, 0.8, 0.8)),
    ),
)


def main() -> None:
    config = SystemConfig.default()
    shared = run_application(my_app, "shared", config)
    dynamic = run_application(my_app, "model-based", config)

    print(f"shared cache:        {shared.total_cycles / 1e6:8.2f}M cycles")
    print(f"dynamic partitioning:{dynamic.total_cycles / 1e6:8.2f}M cycles "
          f"({dynamic.speedup_over(shared):+.1%})\n")

    rows = []
    for rec in dynamic.intervals[:: max(1, len(dynamic.intervals) // 12)]:
        obs = rec.observation
        rows.append(
            [obs.index]
            + list(obs.targets)
            + [f"{c:.2f}" for c in obs.cpi]
        )
    n = config.n_threads
    print(format_table(
        ["interval"] + [f"w{t}" for t in range(n)] + [f"cpi{t}" for t in range(n)],
        rows,
        title="way-partition trajectory (dynamic scheme)",
    ))
    print("\nw0 is the solver: the runtime steadily grows its share, paid "
          "for by the helper threads, while the transpose thread's bursts "
          "stay contained inside its own partition instead of flushing the "
          "solver's lines as they do under global LRU.")


if __name__ == "__main__":
    main()
