#!/usr/bin/env python
"""Plug a custom partitioning policy into the runtime system.

The policy interface is one method: ``on_interval(observation)`` returning
new way targets or None.  This example implements "slowdown-proportional"
partitioning — like the paper's CPI-proportional scheme but weighting each
thread by the *square* of its CPI, over-serving the critical thread — and
races it against the built-in policies on every workload.

    python examples/custom_policy.py
"""

from repro import PartitioningPolicy, SystemConfig, run_application
from repro.core.records import IntervalObservation
from repro.experiments.reporting import format_table
from repro.mathx import largest_remainder_apportion
from repro.trace import list_workloads


class SquaredCPIPolicy(PartitioningPolicy):
    """Ways proportional to CPI^2: an aggressive critical-path booster."""

    @property
    def name(self) -> str:
        return "squared-cpi"

    def on_interval(self, obs: IntervalObservation):
        weights = [c * c for c in obs.cpi]
        return self._validate(
            largest_remainder_apportion(weights, self.total_ways, minimum=self.min_ways)
        )


def main() -> None:
    config = SystemConfig.default().with_(n_intervals=30)
    apps = [a for a in list_workloads() if a in ("swim", "mgrid", "cg", "mg")]

    rows = []
    for app in apps:
        shared = run_application(app, "shared", config)
        custom = run_application(
            app, SquaredCPIPolicy(config.n_threads, config.total_ways), config
        )
        cpi_prop = run_application(app, "cpi-proportional", config)
        model = run_application(app, "model-based", config)
        rows.append([
            app,
            f"{custom.speedup_over(shared):+.1%}",
            f"{cpi_prop.speedup_over(shared):+.1%}",
            f"{model.speedup_over(shared):+.1%}",
        ])
    print(format_table(
        ["app", "squared-cpi (custom)", "cpi-proportional", "model-based"],
        rows,
        title="speedup over the shared cache",
    ))
    print("\nBlind CPI weighting (linear or squared) ignores cache sensitivity;"
          "\nthe model-based scheme learns each thread's CPI-vs-ways curve and"
          "\nonly moves capacity where it predicts the critical path improves.")


if __name__ == "__main__":
    main()
