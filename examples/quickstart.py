#!/usr/bin/env python
"""Quickstart: simulate one application under every partitioning policy.

Runs the SWIM-like workload on the default 4-core configuration and
prints the wall-clock cycles and the speedup of the paper's dynamic
model-based scheme over each baseline.

    python examples/quickstart.py [app]
"""

import sys

from repro import SystemConfig, run_application
from repro.experiments.reporting import format_table
from repro.trace import list_workloads


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "swim"
    if app not in list_workloads():
        raise SystemExit(f"unknown app {app!r}; choose from: {', '.join(list_workloads())}")

    config = SystemConfig.default()
    print(f"Simulating {app!r} on a {config.n_threads}-core CMP "
          f"({config.l2_geometry.size_bytes // 1024} KB shared L2, "
          f"{config.total_ways}-way)...\n")

    policies = ["shared", "static-equal", "cpi-proportional", "throughput", "model-based"]
    results = {p: run_application(app, p, config) for p in policies}
    dynamic = results["model-based"]

    rows = []
    for p in policies:
        r = results[p]
        gain = "" if p == "model-based" else f"{dynamic.speedup_over(r):+.1%}"
        rows.append([
            p,
            f"{r.total_cycles / 1e6:.2f}M",
            " ".join(f"{r.thread_cpi(t):.2f}" for t in range(config.n_threads)),
            gain,
        ])
    print(format_table(
        ["policy", "cycles", "per-thread CPI", "model-based gain"],
        rows,
        title=f"{app}: policy comparison",
    ))

    final = dynamic.intervals[-1].observation
    print(f"\nfinal way partition chosen by the runtime: {list(final.targets)}")
    print(f"critical thread in the last interval: thread {final.critical_thread} "
          f"(CPI {final.overall_cpi:.2f})")


if __name__ == "__main__":
    main()
