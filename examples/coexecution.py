#!/usr/bin/env python
"""Hierarchical cache management for co-executing applications (paper Fig. 16).

The paper's vision is two layers: the OS partitions the shared cache
among applications; each application's runtime partitions its slice among
its threads.  This example co-runs two four-thread applications on an
8-core CMP and compares four managements of the same 32-way L2:

* shared                   — no partitioning anywhere (global LRU)
* os-only                  — dynamic inter-app partition, equal intra split
* hierarchical-static-os   — fixed inter-app split, model-based intra
* hierarchical             — both layers dynamic (the paper's Fig. 16)

    python examples/coexecution.py [appA appB]
"""

import sys

from repro import SystemConfig
from repro.experiments.reporting import format_table
from repro.multiapp import run_coexecution
from repro.trace import list_workloads

SCHEMES = ["shared", "os-only", "hierarchical-static-os", "hierarchical"]


def main() -> None:
    apps = sys.argv[1:3] if len(sys.argv) >= 3 else ["cg", "swim"]
    for a in apps:
        if a not in list_workloads():
            raise SystemExit(f"unknown app {a!r}; choose from: {', '.join(list_workloads())}")

    config = SystemConfig.default().with_(n_intervals=30)
    print(f"Co-executing {apps[0]!r} and {apps[1]!r}: 4 threads each, "
          f"{config.total_ways}-way shared L2\n")

    results = {
        s: run_coexecution(list(apps), config, scheme=s, threads_per_app=4)
        for s in SCHEMES
    }
    base = results["shared"].total_cycles
    rows = []
    for s in SCHEMES:
        res = results[s]
        rows.append(
            [s]
            + [f"{a.completion_cycles / 1e6:.2f}M" for a in res.apps]
            + [f"{res.total_cycles / 1e6:.2f}M", f"{base / res.total_cycles - 1:+.1%}"]
        )
    print(format_table(
        ["scheme", *apps, "wall clock", "vs shared"],
        rows,
        title="completion cycles per application",
    ))

    hier = results["hierarchical"]
    if hier.budget_trace:
        print("\nOS budget trajectory (app ticks, [ways per app]):")
        for tick, budgets in hier.budget_trace[:8]:
            print(f"  tick {tick:3d}: {budgets}")
    print("\nTakeaway: inter-application partitioning alone inherits the "
          "equal-split problem inside every slice; the intra-application "
          "runtime below it is what makes partitioning pay.")


if __name__ == "__main__":
    main()
