#!/usr/bin/env python
"""Critical-path analysis of a multithreaded application (paper §IV).

Reproduces the paper's motivation workflow for one application under a
plain shared cache: per-thread performance, barrier slack, which thread
owns the critical path section-by-section, and the inter-thread cache
interaction profile.

    python examples/critical_path_analysis.py [app]
"""

import sys

from repro import SystemConfig, run_application
from repro.experiments.reporting import format_series, format_table
from repro.mathx.stats import pearson_correlation
from repro.trace import list_workloads


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mgrid"
    if app not in list_workloads():
        raise SystemExit(f"unknown app {app!r}; choose from: {', '.join(list_workloads())}")
    config = SystemConfig.default()
    r = run_application(app, "shared", config)

    # --- per-thread summary -------------------------------------------
    rows = []
    hist = r.barriers.critical_thread_histogram()
    slack = r.barriers.total_slack_per_thread()
    for t in range(r.n_threads):
        rows.append([
            f"thread {t}",
            f"{r.thread_cpi(t):.2f}",
            r.l2_totals.misses[t],
            f"{r.l1_hit_rate(t):.1%}",
            hist[t],
            f"{slack[t] / r.total_cycles:.1%}",
        ])
    print(format_table(
        ["thread", "busy CPI", "L2 misses", "L1 hit rate",
         "critical sections", "slack (frac of run)"],
        rows,
        title=f"{app} under an unpartitioned shared cache",
    ))

    crit = max(range(r.n_threads), key=r.thread_cpi)
    print(f"\ncritical-path thread overall: thread {crit}")
    corr = pearson_correlation(
        r.cpi_series(crit), [float(m) for m in r.miss_series(crit)]
    )
    print(f"its CPI <-> L2-miss correlation across intervals: {corr:.3f} "
          "(the paper reports ~0.97 on real benchmarks)")

    # --- interactions --------------------------------------------------
    print(f"\ninter-thread interactions: "
          f"{r.inter_thread_share_of_all_accesses():.1%} of all cache accesses, "
          f"{r.l2_totals.constructive_fraction():.1%} of them constructive")

    # --- phases ---------------------------------------------------------
    print()
    print(format_series(f"{app} thread {crit} CPI per interval", r.cpi_series(crit)))


if __name__ == "__main__":
    main()
