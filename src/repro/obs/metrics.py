"""Counters, gauges and timers: the always-on half of the subsystem.

Unlike tracing (off by default, per-event), metrics are cheap aggregates a
long-lived process accumulates regardless: a counter increment is one
integer add, a timer observation two ``perf_counter`` calls.  The
registry get-or-create is locked so concurrent engines can share the
global :data:`METRICS` instance; the increments themselves rely on the
GIL (every writer in this codebase is single-threaded per process).

Usage::

    from repro.obs import METRICS

    METRICS.counter("sim.program_cache.evictions").inc()
    with METRICS.span("exec.batch"):
        engine.run(specs)

    @METRICS.timed("store.put")
    def put(...): ...

``snapshot()`` returns a plain JSON-safe dict; the CLI emits it as a final
``metrics`` trace event so counters land in the same file as the event
stream.
"""

from __future__ import annotations

import contextlib
import functools
import threading
import time

__all__ = ["Counter", "Gauge", "METRICS", "Metrics", "Timer"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge for levels")
        self.value += n


class Gauge:
    """A level that can move both ways (e.g. a cache's current size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """Aggregated durations: count, total, max (mean derived)."""

    __slots__ = ("name", "count", "total_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class Metrics:
    """A named registry of counters/gauges/timers.

    Accessors get-or-create, so instrumented code never has to declare
    metrics up front; asking for an existing name with a different type is
    an error (it would silently split one series into two).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls(name))
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    @contextlib.contextmanager
    def span(self, name: str):
        """Time a block into ``timer(name)`` (monotonic clock)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timer(name).observe(time.perf_counter() - start)

    def timed(self, name: str | None = None):
        """Decorator form of :meth:`span`; defaults to the function's
        qualified name."""

        def decorate(fn):
            timer_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                start = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    self.timer(timer_name).observe(time.perf_counter() - start)

            return wrapper

        return decorate

    def snapshot(self) -> dict:
        """JSON-safe dump of every metric, grouped by type."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        timers: dict[str, dict] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            if isinstance(m, Counter):
                counters[m.name] = m.value
            elif isinstance(m, Gauge):
                gauges[m.name] = m.value
            else:
                timers[m.name] = {
                    "count": m.count,
                    "total_s": m.total_s,
                    "mean_s": m.mean_s,
                    "max_s": m.max_s,
                }
        return {"counters": counters, "gauges": gauges, "timers": timers}

    def reset(self) -> None:
        """Zero every registered metric (the registry itself survives)."""
        with self._lock:
            for m in self._metrics.values():
                if isinstance(m, Counter):
                    m.value = 0
                elif isinstance(m, Gauge):
                    m.value = 0.0
                else:
                    m.count, m.total_s, m.max_s = 0, 0.0, 0.0


METRICS = Metrics()
"""The process-wide registry every layer shares."""
