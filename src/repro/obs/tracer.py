"""Tracers: where telemetry events go.

The contract instrumented code follows is *guard, then emit*::

    tracer = get_tracer()
    ...
    if tracer.enabled:
        tracer.emit(IntervalEvent(...))

``enabled`` is a class attribute, so the disabled path costs one attribute
read and a branch — no event object is ever constructed.  The default
:data:`NULL_TRACER` is disabled; simulation results are identical whether
tracing is off, recording in memory or streaming to disk, because tracers
only *observe* (a test pins this).

A module-level current tracer (:func:`get_tracer` / :func:`set_tracer`)
exists so layers that are already globally configured (the execution
engines, the result store — see ``experiments.runner.configure``) can pick
up the CLI's ``--trace`` sink without threading a parameter through every
call site.  Library users who want explicit wiring pass a tracer straight
to :func:`repro.sim.run_application`.
"""

from __future__ import annotations

import contextlib
import json
import time
from pathlib import Path

from repro.obs.events import SpanEvent, TraceEvent

__all__ = [
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
]


class Tracer:
    """Base tracer: stamps wall-clock timestamps relative to its creation.

    Timestamps are ``time.perf_counter`` deltas (monotonic, sub-microsecond
    resolution), so a trace is self-consistent even across system clock
    adjustments.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()

    def timestamp(self) -> float:
        """Seconds since this tracer was created."""
        return time.perf_counter() - self.epoch

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def record(self, event: TraceEvent) -> dict:
        """The wire form of one event: payload plus ``kind`` and ``ts``."""
        return {"kind": event.kind, "ts": self.timestamp(), **event.to_dict()}

    @contextlib.contextmanager
    def span(self, name: str):
        """Time a block and emit a :class:`SpanEvent` when it exits."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit(SpanEvent(name=name, duration_s=time.perf_counter() - start))

    def close(self) -> None:
        """Flush and release any underlying sink (idempotent)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    Instrumented code never reaches ``emit`` when it honours the
    ``enabled`` guard; the methods exist so unguarded calls are still safe.
    """

    enabled = False

    def emit(self, event: TraceEvent) -> None:
        pass

    def span(self, name: str):
        return contextlib.nullcontext()


NULL_TRACER = NullTracer()
"""Shared disabled tracer (stateless, safe to reuse everywhere)."""


class RecordingTracer(Tracer):
    """Buffers events in memory — the tracer tests and the Chrome exporter
    use (the latter because ``trace_event`` JSON is a single array)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[TraceEvent] = []
        self.records: list[dict] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)
        self.records.append(self.record(event))

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class JsonlTracer(Tracer):
    """Streams events to a file, one JSON object per line.

    Lines are written eagerly but buffered by the file object; ``close``
    flushes.  The format is the native input of ``repro report`` and of
    :func:`repro.obs.export.read_events`.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self.n_events = 0

    def emit(self, event: TraceEvent) -> None:
        json.dump(self.record(event), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.n_events += 1

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()


_TRACER: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide current tracer (:data:`NULL_TRACER` by default)."""
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the current tracer; ``None`` restores the
    disabled default.  Returns the previously installed tracer so callers
    can restore it."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    return previous
