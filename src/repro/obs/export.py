"""Trace exporters: JSONL reading, Chrome ``trace_event`` JSON, text report.

Three consumers of the event stream:

* :func:`read_events` — parse a JSONL trace back into the list of dicts
  the tracers wrote (the common input of everything below);
* :func:`chrome_trace` / :func:`write_chrome_trace` — convert to the
  Chrome ``trace_event`` array format, loadable in ``chrome://tracing``
  and https://ui.perfetto.dev: jobs and spans become duration ("X")
  events, per-interval CPI/ways/convergence become counter ("C") tracks
  so the trajectories plot directly, everything else becomes instants;
* :func:`summarize` — the plain-text report behind ``repro report``:
  per-run CPI trajectories, repartition frequency and triggers,
  model-prediction error, convergence, top-N slowest jobs, time-in-phase
  breakdown, store traffic and the metrics snapshot.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from pathlib import Path

__all__ = ["chrome_trace", "read_events", "summarize", "write_chrome_trace"]

_SIM_TID = 1
_EXEC_TID = 2


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL trace file into event dicts (in file order).

    Raises ``ValueError`` for a Chrome-format trace (which is lossy and
    not meant to be read back) or for a malformed line.
    """
    path = Path(path)
    records: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if lineno == 1 and line.startswith("["):
                raise ValueError(
                    f"{path} looks like a Chrome trace (JSON array); the report "
                    "reads JSONL traces — re-run with --trace-format jsonl, or "
                    "load this file in chrome://tracing / Perfetto instead"
                )
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})") from None
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError(f"{path}:{lineno}: not a trace event (no 'kind')")
            records.append(record)
    return records


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace(records: list[dict]) -> list[dict]:
    """Convert event dicts to a Chrome ``trace_event`` array."""
    out: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "repro"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": _SIM_TID,
         "args": {"name": "simulation"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": _EXEC_TID,
         "args": {"name": "execution"}},
    ]
    for rec in records:
        kind = rec.get("kind")
        ts = _us(rec.get("ts", 0.0))
        if kind == "interval":
            run = f"{rec['app']}/{rec['policy']}"
            out.append({
                "name": f"cpi {run}", "cat": "sim", "ph": "C", "ts": ts,
                "pid": 1, "tid": _SIM_TID,
                "args": {f"t{t}": v for t, v in enumerate(rec["cpi"])},
            })
            out.append({
                "name": f"ways {run}", "cat": "sim", "ph": "C", "ts": ts,
                "pid": 1, "tid": _SIM_TID,
                "args": {f"t{t}": v for t, v in enumerate(rec["ways"])},
            })
        elif kind == "convergence":
            out.append({
                "name": f"convergence {rec['app']}/{rec['policy']}", "cat": "sim",
                "ph": "C", "ts": ts, "pid": 1, "tid": _SIM_TID,
                "args": {"mean_distance": rec["mean_distance"],
                         "max_distance": rec["max_distance"]},
            })
        elif kind == "repartition":
            out.append({
                "name": "repartition", "cat": "sim", "ph": "i", "s": "t",
                "ts": ts, "pid": 1, "tid": _SIM_TID,
                "args": {"old": rec["old"], "new": rec["new"],
                         "trigger": rec["trigger"], "moved_ways": rec["moved_ways"]},
            })
        elif kind == "job_end":
            dur = rec.get("duration_s", 0.0)
            out.append({
                "name": rec["label"], "cat": "exec", "ph": "X",
                "ts": _us(max(rec.get("ts", 0.0) - dur, 0.0)), "dur": _us(dur),
                "pid": 1, "tid": _EXEC_TID,
                "args": {"engine": rec["engine"], "ok": rec["ok"],
                         "attempts": rec["attempts"], "error": rec.get("error")},
            })
        elif kind == "span":
            dur = rec.get("duration_s", 0.0)
            out.append({
                "name": rec["name"], "cat": "phase", "ph": "X",
                "ts": _us(max(rec.get("ts", 0.0) - dur, 0.0)), "dur": _us(dur),
                "pid": 1, "tid": _EXEC_TID, "args": {},
            })
        elif kind in (
            "job_start", "retry", "store_hit", "store_miss", "metrics",
            "engine_degraded", "fault_injected", "interrupt",
            "sweep_submitted", "sweep_rejected", "serve_drain",
            "worker_join", "worker_lost", "job_shipped",
            "worker_registered", "worker_evicted", "fleet_scale",
        ):
            args = {k: v for k, v in rec.items() if k not in ("kind", "ts")}
            out.append({
                "name": kind, "cat": "exec", "ph": "i", "s": "t", "ts": ts,
                "pid": 1, "tid": _EXEC_TID, "args": args,
            })
    return out


def write_chrome_trace(path: str | Path, records: list[dict]) -> None:
    """Write ``records`` as a ``trace_event`` JSON array to ``path``."""
    with Path(path).open("w", encoding="utf-8") as fh:
        json.dump(chrome_trace(records), fh, separators=(",", ":"))
        fh.write("\n")


# ----------------------------------------------------------------------
# Text report
# ----------------------------------------------------------------------
def _series(values: list[float], points: int = 12) -> str:
    """Downsample a numeric series to <= ``points`` evenly spaced samples."""
    if not values:
        return "(empty)"
    if len(values) <= points:
        picked = values
    else:
        step = (len(values) - 1) / (points - 1)
        picked = [values[round(i * step)] for i in range(points)]
    rendered = " ".join(f"{v:.2f}" for v in picked)
    suffix = f"  ({len(values)} intervals)" if len(values) > points else ""
    return rendered + suffix


def _run_section(app: str, policy: str, records: list[dict], lines: list[str]) -> None:
    intervals = [r for r in records
                 if r["kind"] == "interval" and r["app"] == app and r["policy"] == policy]
    repartitions = [r for r in records
                    if r["kind"] == "repartition" and r["app"] == app and r["policy"] == policy]
    convergences = [r for r in records
                    if r["kind"] == "convergence" and r["app"] == app and r["policy"] == policy]
    n_threads = len(intervals[0]["cpi"])
    lines.append(f"run {app}/{policy}: {len(intervals)} intervals")
    lines.append("  per-thread CPI trajectory:")
    for t in range(n_threads):
        series = [r["cpi"][t] for r in intervals]
        lines.append(
            f"    t{t}: {_series(series)}   "
            f"min {min(series):.2f} mean {sum(series) / len(series):.2f} max {max(series):.2f}"
        )
    crit = TallyCounter(r["critical_thread"] for r in intervals)
    crit_str = ", ".join(f"t{t}x{c}" for t, c in crit.most_common())
    lines.append(f"  critical thread by interval: {crit_str}")

    errors = []
    for r in intervals:
        pred = r.get("predicted_cpi")
        if pred is None:
            continue
        for p, o in zip(pred, r["cpi"]):
            if o > 0:
                errors.append(abs(p - o) / o)
    if errors:
        lines.append(
            f"  model prediction error (|predicted-observed|/observed): "
            f"mean {sum(errors) / len(errors):.1%} over {len(errors)} thread-intervals"
        )

    if repartitions:
        triggers = TallyCounter(r["trigger"] for r in repartitions)
        trig_str = ", ".join(f"{k}={v}" for k, v in triggers.most_common())
        moved = sum(r["moved_ways"] for r in repartitions)
        lines.append(
            f"  repartitions: {len(repartitions)} over {len(intervals)} intervals "
            f"({trig_str}), {moved} ways moved, final targets {repartitions[-1]['new']}"
        )
    else:
        lines.append("  repartitions: 0")
    if convergences:
        last = convergences[-1]
        lines.append(
            f"  convergence: final mean distance {last['mean_distance']:.2f} ways/set, "
            f"{last['converged_sets']}/{last['total_sets']} sets at target"
        )


def summarize(records: list[dict], *, top: int = 5) -> str:
    """Render the plain-text report for a list of event dicts."""
    lines: list[str] = []
    kinds = TallyCounter(r["kind"] for r in records)
    span_s = max((r.get("ts", 0.0) for r in records), default=0.0)
    kind_str = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    lines.append(f"trace: {len(records)} events over {span_s:.2f}s  ({kind_str})")

    runs = list(dict.fromkeys(
        (r["app"], r["policy"]) for r in records if r["kind"] == "interval"
    ))
    for app, policy in runs:
        lines.append("")
        _run_section(app, policy, records, lines)

    job_ends = [r for r in records if r["kind"] == "job_end"]
    if job_ends:
        ok = [r for r in job_ends if r["ok"]]
        failed = [r for r in job_ends if not r["ok"]]
        retries = kinds.get("retry", 0)
        lines.append("")
        lines.append(f"jobs: {len(ok)} completed, {len(failed)} failed, {retries} retried attempts")
        slowest = sorted(ok, key=lambda r: r["duration_s"], reverse=True)[:top]
        if slowest:
            lines.append(f"  slowest {len(slowest)} jobs:")
            for i, r in enumerate(slowest, start=1):
                lines.append(
                    f"    {i}. {r['label']:<28} {r['duration_s']:8.3f}s  "
                    f"({r['attempts']} attempt(s), {r['engine']})"
                )
        for r in failed:
            lines.append(f"  FAILED {r['label']}: {r.get('error')}")

    joins = [r for r in records if r["kind"] == "worker_join"]
    losses = [r for r in records if r["kind"] == "worker_lost"]
    shipped = [r for r in records if r["kind"] == "job_shipped"]
    if joins or losses or shipped:
        lines.append("")
        lines.append(
            f"distributed: {len(joins)} worker join(s), {len(losses)} worker "
            f"loss(es), {len(shipped)} job(s) shipped"
        )
        by_worker = TallyCounter(r["worker"] for r in shipped)
        for worker, count in by_worker.most_common():
            lines.append(f"  {worker:<28} {count} job(s)")
        for r in losses:
            lines.append(
                f"  LOST {r['worker']} at {r['address']}: {r['reason']} "
                f"({r.get('requeued', 0)} job(s) requeued)"
            )

    registered = [r for r in records if r["kind"] == "worker_registered"]
    evicted = [r for r in records if r["kind"] == "worker_evicted"]
    scales = [r for r in records if r["kind"] == "fleet_scale"]
    if registered or evicted or scales:
        ups = sum(1 for r in scales if r.get("direction") == "up")
        downs = len(scales) - ups
        lines.append("")
        lines.append(
            f"fleet: {len(registered)} registration(s), {len(evicted)} eviction(s), "
            f"{ups} scale-up(s), {downs} scale-down(s), "
            f"{len(joins)} join(s), {len(losses)} loss(es)"
        )
        for r in scales:
            lines.append(
                f"  scale {r['direction']:<4} {r['workers_before']} -> "
                f"{r['workers_after']} (backlog {r['backlog']})"
            )
        for r in evicted:
            lines.append(f"  EVICTED {r['worker']} at {r['address']}: {r['reason']}")

    degraded = [r for r in records if r["kind"] == "engine_degraded"]
    if degraded:
        lines.append("")
        lines.append(f"engine degradations: {len(degraded)}")
        for r in degraded:
            lines.append(f"  WARNING {r['engine']} degraded to serial: {r['reason']}")

    faults = [r for r in records if r["kind"] == "fault_injected"]
    if faults:
        by_fault = TallyCounter(r["fault"] for r in faults)
        detail = ", ".join(f"{k}={v}" for k, v in sorted(by_fault.items()))
        lines.append("")
        lines.append(f"injected faults: {len(faults)} ({detail})")

    interrupts = [r for r in records if r["kind"] == "interrupt"]
    for r in interrupts:
        lines.append("")
        lines.append(
            f"interrupted by {r['signal']}: {r['completed']} cell(s) journaled "
            "before the stop (resume with `repro sweep --resume`)"
        )

    spans = [r for r in records if r["kind"] == "span"]
    if spans:
        totals: dict[str, list[float]] = {}
        for r in spans:
            totals.setdefault(r["name"], []).append(r["duration_s"])
        grand = sum(sum(v) for v in totals.values())
        lines.append("")
        lines.append("time in phase:")
        for name, durs in sorted(totals.items(), key=lambda kv: sum(kv[1]), reverse=True):
            total = sum(durs)
            share = total / grand if grand > 0 else 0.0
            lines.append(f"  {name:<24} {total:8.3f}s  {share:5.1%}  ({len(durs)} span(s))")

    submitted = [r for r in records if r["kind"] == "sweep_submitted"]
    rejected = [r for r in records if r["kind"] == "sweep_rejected"]
    drains = [r for r in records if r["kind"] == "serve_drain"]
    if submitted or rejected or drains:
        lines.append("")
        attached = sum(1 for r in submitted if r.get("attached"))
        lines.append(
            f"service: {len(submitted)} submission(s) ({attached} attached), "
            f"{len(rejected)} rejected"
        )
        fresh = [r for r in submitted if not r.get("attached")]
        if fresh:
            resolved = {
                "resumed": sum(r.get("resumed", 0) for r in fresh),
                "store": sum(r.get("store_hits", 0) for r in fresh),
                "coalesced": sum(r.get("coalesced", 0) for r in fresh),
                "scheduled": sum(r.get("scheduled", 0) for r in fresh),
            }
            detail = ", ".join(f"{k}={v}" for k, v in resolved.items())
            lines.append(f"  cell resolution: {detail}")
        if rejected:
            by_reason = TallyCounter(r["reason"] for r in rejected)
            detail = ", ".join(f"{k}={v}" for k, v in by_reason.most_common())
            lines.append(f"  rejections: {detail}")
        for r in drains:
            lines.append(
                f"  drained on {r['signal']}: {r['active_sweeps']} active sweep(s), "
                f"backlog {r['backlog']} released for resume"
            )

    hits = kinds.get("store_hit", 0)
    misses = kinds.get("store_miss", 0)
    if hits or misses:
        corrupt = sum(1 for r in records if r["kind"] == "store_miss" and r.get("corrupt"))
        lines.append("")
        lines.append(f"result store: {hits} hits, {misses} misses ({corrupt} corrupt)")

    metrics = [r for r in records if r["kind"] == "metrics"]
    if metrics:
        snap = metrics[-1]["snapshot"]
        counters = snap.get("counters", {})
        store_stale = counters.get("store.stale_swept", 0)
        prep_stale = counters.get("prep.stale_swept", 0)
        if store_stale or prep_stale:
            lines.append("")
            lines.append(
                f"stale artifacts swept: {store_stale} result(s), "
                f"{prep_stale} prepared program(s) — staged temp dirs left by "
                "crashed writers, reclaimed"
            )
        spec_runs = counters.get("spec.runs", 0)
        cmp_runs = counters.get("compare.runs", 0)
        if spec_runs or cmp_runs:
            lines.append("")
            lines.append("declarative experiments:")
            if spec_runs:
                lines.append(
                    f"  spec runs: {spec_runs} "
                    f"({counters.get('spec.smoke_runs', 0)} smoke), "
                    f"{counters.get('spec.expectation_failures', 0)} "
                    "expectation violation(s)"
                )
            if cmp_runs:
                lines.append(
                    f"  comparisons: {cmp_runs} "
                    f"({counters.get('compare.incomparable', 0)} incomparable) — "
                    f"cells equal={counters.get('compare.cells.equal', 0)} "
                    f"changed={counters.get('compare.cells.changed', 0)} "
                    f"added={counters.get('compare.cells.added', 0)} "
                    f"removed={counters.get('compare.cells.removed', 0)}"
                )
        lines.append("")
        lines.append("metrics:")
        for name, value in sorted(snap.get("counters", {}).items()):
            lines.append(f"  {name:<36} {value}")
        for name, value in sorted(snap.get("gauges", {}).items()):
            lines.append(f"  {name:<36} {value:g}")
        for name, agg in sorted(snap.get("timers", {}).items()):
            lines.append(
                f"  {name:<36} n={agg['count']} total={agg['total_s']:.3f}s "
                f"mean={agg['mean_s']:.4f}s max={agg['max_s']:.4f}s"
            )
    return "\n".join(lines)
