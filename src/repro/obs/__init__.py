"""repro.obs — structured telemetry for the simulator and execution layer.

The paper's runtime system *is* a monitoring loop (Fig. 17: the Cache/CPI
monitor feeding the partition engine); this package makes that loop — and
everything around it — observable instead of throwing the per-interval
story away.  Three pieces (DESIGN.md §B):

* **Tracers** (:mod:`repro.obs.tracer`): an event bus with typed events
  (:mod:`repro.obs.events`).  Disabled by default via :data:`NULL_TRACER`
  — instrumented code guards with ``tracer.enabled`` so a disabled run
  constructs no event objects and is byte-identical to an untraced one
  (``benchmarks/bench_obs_overhead.py`` bounds the residual cost).
* **Metrics** (:mod:`repro.obs.metrics`): an always-on registry of
  counters/gauges/timers shared by every layer (:data:`METRICS`).
* **Exporters** (:mod:`repro.obs.export`): JSONL in, Chrome
  ``trace_event`` JSON (Perfetto-loadable) and a plain-text report out.

CLI: ``--trace PATH [--trace-format jsonl|chrome]`` on ``run`` /
``compare`` / ``figure`` / ``sweep``, and ``repro report PATH`` to
summarize a JSONL trace.
"""

from repro.obs.events import (
    EVENT_KINDS,
    ConvergenceEvent,
    EngineDegradedEvent,
    FaultInjectedEvent,
    FleetScaleEvent,
    IntervalEvent,
    InterruptEvent,
    JobEndEvent,
    JobStartEvent,
    MetricsEvent,
    RepartitionEvent,
    RetryEvent,
    ServeDrainEvent,
    SpanEvent,
    StoreHitEvent,
    StoreMissEvent,
    SweepRejectedEvent,
    SweepSubmittedEvent,
    WorkerEvictedEvent,
    WorkerRegisteredEvent,
)
from repro.obs.export import chrome_trace, read_events, summarize, write_chrome_trace
from repro.obs.metrics import METRICS, Counter, Gauge, Metrics, Timer
from repro.obs.tracer import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "ConvergenceEvent",
    "EVENT_KINDS",
    "EngineDegradedEvent",
    "FaultInjectedEvent",
    "FleetScaleEvent",
    "Gauge",
    "IntervalEvent",
    "InterruptEvent",
    "JobEndEvent",
    "JobStartEvent",
    "JsonlTracer",
    "METRICS",
    "Metrics",
    "MetricsEvent",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "RepartitionEvent",
    "RetryEvent",
    "ServeDrainEvent",
    "SpanEvent",
    "StoreHitEvent",
    "StoreMissEvent",
    "SweepRejectedEvent",
    "SweepSubmittedEvent",
    "Timer",
    "Tracer",
    "WorkerEvictedEvent",
    "WorkerRegisteredEvent",
    "chrome_trace",
    "get_tracer",
    "read_events",
    "set_tracer",
    "summarize",
    "write_chrome_trace",
]
