"""Typed telemetry events.

Every event is a small frozen dataclass with a class-level ``kind`` tag.
The schema is flat and JSON-first: ``to_dict()`` produces exactly the
payload a :class:`~repro.obs.tracer.JsonlTracer` writes (the tracer adds
the ``kind`` and ``ts`` keys), and the exporters in
:mod:`repro.obs.export` consume those dicts back — no reification needed
on the reading side.

Two event families exist (DESIGN.md §B):

* **simulation events**, emitted per execution interval from inside a run —
  ``interval`` (the monitor's view: per-thread CPI/misses/ways, the
  critical thread, and the model's prediction for the interval when a
  model-based policy made one), ``repartition`` (a partition change:
  old/new targets, what triggered it, how many ways moved) and
  ``convergence`` (how far the per-set way occupancy still is from the
  targets after eviction control);
* **execution-layer events**, emitted around whole simulations —
  ``job_start``/``job_end``/``retry`` from the engines,
  ``store_hit``/``store_miss`` from the result store,
  ``engine_degraded`` when a pool engine falls back to in-process
  execution, ``fault_injected`` when an active
  :class:`~repro.exec.faults.FaultPlan` fires an injector,
  ``interrupt`` when a sweep is stopped by SIGINT/SIGTERM, plus generic
  ``span`` phase timings and a final ``metrics`` registry snapshot;
* **service events**, emitted by the ``repro serve`` front-end —
  ``sweep_submitted`` (admitted or attached submissions, with the
  resolution split: resumed/store/coalesced/scheduled),
  ``sweep_rejected`` (admission-control backpressure) and
  ``serve_drain`` (a signal began the graceful shutdown);
* **fleet events**, emitted by ``repro.fleet`` —
  ``worker_registered``/``worker_evicted`` from the registrar's
  membership view and ``fleet_scale`` from the autoscaling controller.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar

__all__ = [
    "ConvergenceEvent",
    "EVENT_KINDS",
    "EngineDegradedEvent",
    "FaultInjectedEvent",
    "FleetScaleEvent",
    "IntervalEvent",
    "InterruptEvent",
    "JobEndEvent",
    "JobShippedEvent",
    "JobStartEvent",
    "MetricsEvent",
    "RepartitionEvent",
    "RetryEvent",
    "ServeDrainEvent",
    "SpanEvent",
    "StoreHitEvent",
    "StoreMissEvent",
    "SweepRejectedEvent",
    "SweepSubmittedEvent",
    "WorkerEvictedEvent",
    "WorkerJoinEvent",
    "WorkerLostEvent",
    "WorkerRegisteredEvent",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class: ``kind`` tags the schema, ``to_dict`` is the payload."""

    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class IntervalEvent(TraceEvent):
    """One execution interval as the runtime's monitor saw it.

    ``predicted_cpi`` is the per-thread CPI the policy's models forecast
    *for this interval* when they chose its targets (one interval earlier);
    ``None`` for policies without models or before the models exist.
    """

    kind: ClassVar[str] = "interval"

    app: str
    policy: str
    index: int
    cpi: tuple[float, ...]
    misses: tuple[int, ...]
    ways: tuple[int, ...]
    critical_thread: int
    predicted_cpi: tuple[float, ...] | None = None


@dataclass(frozen=True)
class RepartitionEvent(TraceEvent):
    """A partition decision that changed the way targets."""

    kind: ClassVar[str] = "repartition"

    app: str
    policy: str
    index: int
    old: tuple[int, ...]
    new: tuple[int, ...]
    trigger: str
    moved_ways: int
    iterations: int | None = None


@dataclass(frozen=True)
class ConvergenceEvent(TraceEvent):
    """Distance of per-set way occupancy from the targets at an interval
    boundary — how far eviction control still has to walk the sets."""

    kind: ClassVar[str] = "convergence"

    app: str
    policy: str
    index: int
    mean_distance: float
    max_distance: int
    converged_sets: int
    total_sets: int


@dataclass(frozen=True)
class JobStartEvent(TraceEvent):
    """An engine began working on a job."""

    kind: ClassVar[str] = "job_start"

    label: str
    app: str
    policy: str
    engine: str


@dataclass(frozen=True)
class JobEndEvent(TraceEvent):
    """An engine finished (or gave up on) a job."""

    kind: ClassVar[str] = "job_end"

    label: str
    app: str
    policy: str
    engine: str
    ok: bool
    attempts: int
    duration_s: float
    error: str | None = None


@dataclass(frozen=True)
class RetryEvent(TraceEvent):
    """One failed attempt at a job (the attempt that will be retried or,
    on the last attempt, reported in the ``job_end``)."""

    kind: ClassVar[str] = "retry"

    label: str
    engine: str
    attempt: int
    error: str


@dataclass(frozen=True)
class EngineDegradedEvent(TraceEvent):
    """A pool engine fell back to in-process execution — a warning, not a
    failure: the batch still completes, but without parallelism.  The
    cause (a pool that could not be built, or a dead worker) is data a
    production operator must see, never a silent slowdown."""

    kind: ClassVar[str] = "engine_degraded"

    engine: str
    reason: str


@dataclass(frozen=True)
class FaultInjectedEvent(TraceEvent):
    """An active FaultPlan fired one injector.  ``key`` is the job label
    (or artifact digest for ``artifact-corruption``); ``attempt`` is the
    1-based attempt number the fault keyed on (0 for artifacts)."""

    kind: ClassVar[str] = "fault_injected"

    fault: str
    key: str
    attempt: int


@dataclass(frozen=True)
class InterruptEvent(TraceEvent):
    """A sweep was stopped by a signal after draining in-flight work.
    ``completed`` counts cells already durably journaled."""

    kind: ClassVar[str] = "interrupt"

    signal: str
    completed: int


@dataclass(frozen=True)
class StoreHitEvent(TraceEvent):
    kind: ClassVar[str] = "store_hit"

    label: str
    digest: str


@dataclass(frozen=True)
class StoreMissEvent(TraceEvent):
    kind: ClassVar[str] = "store_miss"

    label: str
    digest: str
    corrupt: bool = False


@dataclass(frozen=True)
class SweepSubmittedEvent(TraceEvent):
    """The sweep service admitted (or attached) one submission.

    ``attached`` means the grid content-addressed to a sweep already
    known to the service, so no new work was created at all; otherwise
    the counts say how the grid resolved: ``resumed`` from the sweep's
    journal, ``store_hits`` from the result store, ``coalesced`` onto
    cells another sweep already has in flight, ``scheduled`` as new
    engine work."""

    kind: ClassVar[str] = "sweep_submitted"

    sweep_id: str
    client: str
    cells: int
    attached: bool = False
    resumed: int = 0
    store_hits: int = 0
    coalesced: int = 0
    scheduled: int = 0


@dataclass(frozen=True)
class SweepRejectedEvent(TraceEvent):
    """Admission control turned a submission away (HTTP 429): the queue
    bound, the per-client quota, or the global sweep cap."""

    kind: ClassVar[str] = "sweep_rejected"

    client: str
    reason: str
    retry_after_s: float


@dataclass(frozen=True)
class ServeDrainEvent(TraceEvent):
    """The service began a graceful drain on a signal: in-flight cells
    finish and are journaled, queued cells are released for a later
    resume."""

    kind: ClassVar[str] = "serve_drain"

    signal: str
    active_sweeps: int
    backlog: int


@dataclass(frozen=True)
class WorkerJoinEvent(TraceEvent):
    """A remote worker completed the protocol handshake for a batch."""

    kind: ClassVar[str] = "worker_join"

    worker: str
    address: str
    pid: int


@dataclass(frozen=True)
class WorkerLostEvent(TraceEvent):
    """A remote worker's link died (vanished process, dropped connection,
    failed handshake).  ``requeued`` counts jobs sent back to the pool."""

    kind: ClassVar[str] = "worker_lost"

    worker: str
    address: str
    reason: str
    requeued: int = 0


@dataclass(frozen=True)
class WorkerRegisteredEvent(TraceEvent):
    """A worker announced itself to a registrar (or file registry) and
    entered the discoverable membership view."""

    kind: ClassVar[str] = "worker_registered"

    worker: str
    address: str
    pid: int


@dataclass(frozen=True)
class WorkerEvictedEvent(TraceEvent):
    """The registrar's liveness sweep (or an explicit deregistration)
    removed a worker from the membership view."""

    kind: ClassVar[str] = "worker_evicted"

    worker: str
    address: str
    reason: str


@dataclass(frozen=True)
class FleetScaleEvent(TraceEvent):
    """The autoscaling controller changed the fleet size: ``direction`` is
    ``"up"`` or ``"down"``, ``backlog`` the queue depth that drove it."""

    kind: ClassVar[str] = "fleet_scale"

    direction: str
    workers_before: int
    workers_after: int
    backlog: int
    reason: str = ""


@dataclass(frozen=True)
class JobShippedEvent(TraceEvent):
    """One job attempt was dispatched over the wire to a worker."""

    kind: ClassVar[str] = "job_shipped"

    label: str
    worker: str
    attempt: int


@dataclass(frozen=True)
class SpanEvent(TraceEvent):
    """A timed phase; the tracer stamps the *end*, so the phase started at
    ``ts - duration_s``."""

    kind: ClassVar[str] = "span"

    name: str
    duration_s: float


@dataclass(frozen=True)
class MetricsEvent(TraceEvent):
    """Snapshot of the metrics registry, typically emitted once at the end
    of a traced invocation so counters land next to the event stream."""

    kind: ClassVar[str] = "metrics"

    snapshot: dict


EVENT_KINDS: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        IntervalEvent,
        RepartitionEvent,
        ConvergenceEvent,
        JobStartEvent,
        JobEndEvent,
        RetryEvent,
        EngineDegradedEvent,
        FaultInjectedEvent,
        InterruptEvent,
        StoreHitEvent,
        StoreMissEvent,
        SweepSubmittedEvent,
        SweepRejectedEvent,
        ServeDrainEvent,
        WorkerJoinEvent,
        WorkerLostEvent,
        WorkerRegisteredEvent,
        WorkerEvictedEvent,
        FleetScaleEvent,
        JobShippedEvent,
        SpanEvent,
        MetricsEvent,
    )
}
"""``kind`` string -> event class, the authoritative schema registry."""
