"""Optimal static way partitions from per-thread cost curves.

Given per-thread curves ``cost_t[w]`` (cost of giving thread *t* exactly
``w`` ways — e.g. a Mattson miss curve, or a CPI estimate derived from
one), dynamic programming finds the exact optimal integer split of the
way budget under either objective:

* ``"total"`` — minimise ``sum_t cost_t[w_t]``: the throughput-oriented
  oracle (what a perfect Suh-style scheme would pick).
* ``"max"``   — minimise ``max_t cost_t[w_t]``: the paper's critical-path
  objective, as an oracle.

Both run in O(threads x ways^2), trivially fast at way counts that exist
in hardware.
"""

from __future__ import annotations

import numpy as np

__all__ = ["optimal_static_partition"]


def optimal_static_partition(
    cost_curves,
    total_ways: int,
    *,
    min_ways: int = 1,
    objective: str = "total",
) -> list[int]:
    """Exact optimal static partition for the given cost curves.

    Parameters
    ----------
    cost_curves:
        Sequence of per-thread arrays; ``cost_curves[t][w]`` is thread
        *t*'s cost at ``w`` ways and must be defined for
        ``w = 0..total_ways`` (index directly — no interpolation).
    total_ways:
        Way budget; the returned list sums to it exactly.
    min_ways:
        Per-thread floor.
    objective:
        ``"total"`` or ``"max"`` (see module docstring).

    Ties are broken toward giving earlier threads fewer ways, making the
    result deterministic.
    """
    curves = [np.asarray(c, dtype=np.float64) for c in cost_curves]
    n = len(curves)
    if n == 0:
        raise ValueError("need at least one cost curve")
    for t, c in enumerate(curves):
        if c.ndim != 1 or c.size < total_ways + 1:
            raise ValueError(
                f"curve {t} must cover 0..{total_ways} ways, got length {c.size}"
            )
        if not np.all(np.isfinite(c)):
            raise ValueError(f"curve {t} contains non-finite values")
    if total_ways < min_ways * n:
        raise ValueError(f"{total_ways} ways cannot give {n} threads {min_ways} each")
    if objective not in ("total", "max"):
        raise ValueError(f"unknown objective {objective!r}")

    combine = (lambda a, b: a + b) if objective == "total" else max

    # f[t][w] = best objective using threads 0..t with w ways in total;
    # choice[t][w] = ways given to thread t in that optimum.
    INF = float("inf")
    f = np.full((n, total_ways + 1), INF)
    choice = np.zeros((n, total_ways + 1), dtype=np.int64)
    for w in range(min_ways, total_ways + 1):
        f[0][w] = float(curves[0][w])
        choice[0][w] = w
    for t in range(1, n):
        for w in range(min_ways * (t + 1), total_ways + 1):
            best, best_k = INF, -1
            for k in range(min_ways, w - min_ways * t + 1):
                prev = f[t - 1][w - k]
                if prev == INF:
                    continue
                val = combine(prev, float(curves[t][k]))
                if val < best:
                    best, best_k = val, k
            f[t][w] = best
            choice[t][w] = best_k

    if f[n - 1][total_ways] == INF:
        raise ValueError("no feasible partition (check min_ways)")

    # Walk the choices back.
    out = [0] * n
    w = total_ways
    for t in range(n - 1, -1, -1):
        out[t] = int(choice[t][w])
        w -= out[t]
    assert sum(out) == total_ways
    return out
