"""Offline trace analysis: stack distances, miss curves, oracle partitions.

This package is the reproduction's measurement counterpart to the runtime
system: where the runtime *learns* CPI-vs-ways curves online from interval
observations, these tools compute exact LRU miss curves offline (Mattson's
algorithm) and solve for provably optimal static partitions — the upper
bounds the dynamic scheme is benchmarked against in
``benchmarks/bench_ablation_oracle.py``.
"""

from repro.analysis.oracle import (
    oracle_static_policy,
    oracle_static_targets,
    thread_miss_curves,
)
from repro.analysis.partition_opt import optimal_static_partition
from repro.analysis.stackdist import lru_stack_distances, miss_curve, working_set_lines

__all__ = [
    "lru_stack_distances",
    "miss_curve",
    "optimal_static_partition",
    "oracle_static_policy",
    "oracle_static_targets",
    "thread_miss_curves",
    "working_set_lines",
]
