"""Oracle static partitions for a workload.

Combines the two halves of this package: profile each thread's L2 access
stream with Mattson stack distances (the streams are policy-independent,
so this is a legitimate offline oracle), convert the per-thread miss
curves into cost curves, and solve for the exact optimal static partition.

Two oracles are exposed:

* ``objective="total"`` — the best a throughput-oriented scheme could
  possibly do with perfect information;
* ``objective="max"``  — the best *static* partition under the paper's
  own critical-path objective, using a CPI estimate
  ``cpi_t(w) ~ (busy base cycles + misses_t(w) * penalty) / instructions``.

Caveat (documented, inherent to any per-thread oracle): the curves treat
each thread's stream in isolation, so cross-thread effects on the shared
region (a thread hitting on lines another thread inserted) are not
modelled.  With the modest sharing fractions of the bundled workloads the
approximation is tight enough for an informative upper-bound baseline.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.partition_opt import optimal_static_partition
from repro.analysis.stackdist import miss_curve
from repro.cpu.streams import CompiledProgram
from repro.partition.static import StaticPolicy
from repro.sim.config import SystemConfig
from repro.sim.driver import prepare_program
from repro.trace.layout import STREAM_BASE_ADDRESS

__all__ = ["oracle_static_policy", "oracle_static_targets", "thread_miss_curves"]


def thread_miss_curves(compiled: CompiledProgram, config: SystemConfig) -> list[np.ndarray]:
    """Exact per-thread L2 miss curves at 0..total_ways ways.

    Streaming-region accesses are excluded from the profiled stream: they
    miss at any realistic allocation (each line is touched once), so they
    contribute a constant to every point of the curve and would otherwise
    only blur the DP's signal; their constant cost is added back.
    """
    curves = []
    for t in range(compiled.n_threads):
        parts = [sec[t].addresses for sec in compiled.sections]
        addrs = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        stream_mask = addrs >= STREAM_BASE_ADDRESS
        cacheable = addrs[~stream_mask]
        curve = miss_curve(cacheable, config.l2_geometry, config.total_ways).astype(
            np.float64
        )
        curve += int(stream_mask.sum())
        curves.append(curve)
    return curves


def oracle_static_targets(
    app: str,
    config: SystemConfig,
    *,
    objective: str = "max",
) -> list[int]:
    """Optimal static partition for ``app`` under the given objective."""
    compiled = prepare_program(app, config)
    curves = thread_miss_curves(compiled, config)
    if objective == "max":
        curves = _cpi_estimate_curves(compiled, curves, config)
    return optimal_static_partition(
        curves, config.total_ways, min_ways=config.min_ways, objective=objective
    )


def _cpi_estimate_curves(
    compiled: CompiledProgram, miss_curves: list[np.ndarray], config: SystemConfig
) -> list[np.ndarray]:
    """Per-thread CPI estimates at each way count.

    busy cycles ~ base work (known exactly from the compiled streams: the
    d_cycles/tail_cycles already include L1 activity) + L2 hits at the hit
    latency + misses at the memory latency.
    """
    timing = config.timing
    out = []
    for t in range(compiled.n_threads):
        base_cycles = 0.0
        instructions = 0
        l2_accesses = 0
        for sec in compiled.sections:
            s = sec[t]
            base_cycles += float(s.d_cycles.sum()) + s.tail_cycles
            instructions += s.total_instructions
            l2_accesses += s.n_l2_accesses
        misses = miss_curves[t]
        hits = l2_accesses - misses
        cycles = base_cycles + hits * timing.l2_hit_cycles + misses * timing.mem_cycles
        out.append(cycles / max(1, instructions))
    return out


def oracle_static_policy(
    app: str, config: SystemConfig, *, objective: str = "max"
) -> StaticPolicy:
    """A :class:`StaticPolicy` pinned to the oracle partition — run it with
    :func:`repro.sim.run_application` to get the oracle baseline."""
    targets = oracle_static_targets(app, config, objective=objective)
    return StaticPolicy(config.n_threads, config.total_ways, targets, min_ways=0)
