"""Mattson stack-distance analysis of address traces.

For an LRU set-associative cache, whether an access hits depends only on
its *stack distance*: the number of distinct lines touched in the same
cache set since the previous access to the same line.  One pass over a
trace therefore yields the exact miss count for **every** associativity
simultaneously (Mattson et al.'s classic inclusion property) — the tool
the cache-partitioning literature (Suh et al.) builds utility monitors
from, and what this package uses to compute oracle partitions.
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry

__all__ = ["lru_stack_distances", "miss_curve", "working_set_lines"]

#: Stack distance reported for cold (first-touch) accesses.
COLD = -1


def lru_stack_distances(addrs: np.ndarray, geometry: CacheGeometry) -> np.ndarray:
    """Per-access LRU stack distance within the access's cache set.

    Returns an int64 array: ``COLD`` (-1) for first touches, otherwise the
    number of distinct lines referenced in the same set since the last
    touch of this line (0 = consecutive re-reference).
    """
    addrs = np.asarray(addrs)
    if addrs.ndim != 1:
        raise ValueError("addrs must be 1-D")
    offset_bits = geometry.offset_bits
    index_mask = geometry.sets - 1
    tag_shift = offset_bits + geometry.index_bits

    # MRU-ordered tag list per set; list.index is the stack distance.
    stacks: list[list[int]] = [[] for _ in range(geometry.sets)]
    out = np.empty(addrs.size, dtype=np.int64)
    addr_list = addrs.tolist()
    for i, addr in enumerate(addr_list):
        s = (addr >> offset_bits) & index_mask
        tag = addr >> tag_shift
        stack = stacks[s]
        try:
            d = stack.index(tag)
        except ValueError:
            out[i] = COLD
            stack.insert(0, tag)
            continue
        out[i] = d
        if d:
            del stack[d]
            stack.insert(0, tag)
    return out


def miss_curve(
    addrs: np.ndarray, geometry: CacheGeometry, max_ways: int
) -> np.ndarray:
    """Exact LRU miss counts at every associativity 0..max_ways.

    ``curve[w]`` is the number of misses this trace would take in a cache
    of ``geometry.sets`` sets with ``w`` ways (w = 0 means every access
    misses).  By the inclusion property the whole curve falls out of one
    stack-distance pass: an access with stack distance ``d`` hits iff
    ``d < w``; cold accesses always miss.
    """
    if max_ways < 0:
        raise ValueError("max_ways must be >= 0")
    dists = lru_stack_distances(addrs, geometry)
    n = dists.size
    curve = np.empty(max_ways + 1, dtype=np.int64)
    if n == 0:
        curve[:] = 0
        return curve
    # hits at w = number of accesses with 0 <= d < w.
    warm = dists[dists >= 0]
    if warm.size:
        hist = np.bincount(np.minimum(warm, max_ways), minlength=max_ways + 1)
        hits_below = np.concatenate(([0], np.cumsum(hist)[:-1]))
    else:
        hits_below = np.zeros(max_ways + 1, dtype=np.int64)
    curve[:] = n - hits_below
    return curve


def working_set_lines(addrs: np.ndarray, geometry: CacheGeometry) -> int:
    """Number of distinct cache lines touched by the trace."""
    addrs = np.asarray(addrs)
    if addrs.size == 0:
        return 0
    lines = addrs >> geometry.offset_bits
    return int(np.unique(lines).size)
