"""``repro compare-runs``: diff two sweep result stores cell by cell.

Both sides are content-addressed :class:`~repro.exec.store.ResultStore`
trees (``<root>/v<version>/<digest[:2]>/<digest>.json``), so comparison
needs no manifest: a cell's key *is* its identity — the SHA-256 of its
``(app, policy, config)`` — and two runs of the same grid file the same
cells under the same keys.  The comparator:

* picks the **namespace** to compare (the version directories the two
  stores share; disjoint versions are *incomparable*, never a false
  "clean");
* classifies every cell key as ``equal`` / ``changed`` (a metric moved
  beyond its relative tolerance) / ``removed`` (in A only) / ``added``
  (in B only), scoping to a grid's keys when a spec is given — a store
  that shares no keys with the spec's grid is *incomparable* (foreign
  grid), not "clean";
* reports per-metric deltas (``total_cycles``, ``l2_misses``) against
  the tolerances, and never crashes on a malformed entry — unreadable
  payloads are counted and skipped.

Verdicts map to exit codes: ``clean`` → 0, ``regression`` (any changed
or removed cell) → 1, ``incomparable`` → 4.  The distinction matters in
CI: 4 means the comparison itself is invalid (wrong version, empty
store, foreign grid) and must not be read as "no regression".
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.grid import SweepGrid
from repro.obs.metrics import METRICS

__all__ = ["CellDiff", "RunComparison", "compare_runs"]

METRIC_NAMES = ("total_cycles", "l2_misses")
_NAMESPACE_RE = re.compile(r"^v[0-9][0-9A-Za-z.+-]*$")

EXIT_CLEAN = 0
EXIT_REGRESSION = 1
EXIT_INCOMPARABLE = 4


@dataclass(frozen=True)
class CellDiff:
    """One compared cell.  ``metrics`` maps metric name to
    ``{"a", "b", "delta", "rel", "tolerance", "beyond"}``."""

    key: str
    label: str  # "app/policy seed=S t=N" — how humans name the cell
    status: str  # equal | changed | added | removed
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "status": self.status,
            "metrics": self.metrics,
        }


@dataclass(frozen=True)
class RunComparison:
    """The outcome of :func:`compare_runs` (machine-readable throughout:
    ``to_dict()`` is the ``--json`` output, ``exit_code`` the process
    status)."""

    verdict: str  # clean | regression | incomparable
    reason: str | None  # why incomparable (None otherwise)
    namespace: str | None  # version namespace compared (vX.Y.Z)
    store_a: str
    store_b: str
    cells: tuple[CellDiff, ...] = ()
    skipped_a: int = 0  # unreadable entries ignored, per side
    skipped_b: int = 0
    tolerances: dict = field(default_factory=dict)

    @property
    def exit_code(self) -> int:
        if self.verdict == "incomparable":
            return EXIT_INCOMPARABLE
        return EXIT_REGRESSION if self.verdict == "regression" else EXIT_CLEAN

    def counts(self) -> dict:
        out = {"equal": 0, "changed": 0, "added": 0, "removed": 0}
        for cell in self.cells:
            out[cell.status] += 1
        return out

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "reason": self.reason,
            "namespace": self.namespace,
            "store_a": self.store_a,
            "store_b": self.store_b,
            "counts": self.counts(),
            "skipped": {"a": self.skipped_a, "b": self.skipped_b},
            "tolerances": dict(self.tolerances),
            "cells": [c.to_dict() for c in self.cells if c.status != "equal"],
        }

    def format(self) -> str:
        """Human rendering: verdict, counts, and every non-equal cell with
        its offending metrics (named, so CI logs point at the exact cell)."""
        if self.verdict == "incomparable":
            return (
                f"compare-runs: incomparable — {self.reason}\n"
                f"  a: {self.store_a}\n  b: {self.store_b}"
            )
        counts = self.counts()
        lines = [
            f"compare-runs: {self.verdict} — "
            f"{counts['equal']} equal, {counts['changed']} changed, "
            f"{counts['added']} added, {counts['removed']} removed "
            f"(namespace {self.namespace})"
        ]
        for cell in self.cells:
            if cell.status == "equal":
                continue
            if cell.status in ("added", "removed"):
                lines.append(f"  {cell.status:<8} {cell.label}  [{cell.key[:12]}]")
                continue
            deltas = ", ".join(
                f"{name} {m['a']:g} -> {m['b']:g} "
                f"({m['rel']:+.3%} vs tol {m['tolerance']:.3%})"
                for name, m in sorted(cell.metrics.items())
                if m["beyond"]
            )
            lines.append(f"  changed  {cell.label}  {deltas}")
        if self.skipped_a or self.skipped_b:
            lines.append(
                f"  skipped unreadable entries: a={self.skipped_a} b={self.skipped_b}"
            )
        return "\n".join(lines)


def _incomparable(reason: str, a: Path, b: Path, namespace: str | None = None):
    METRICS.counter("compare.incomparable").inc()
    return RunComparison(
        verdict="incomparable",
        reason=reason,
        namespace=namespace,
        store_a=str(a),
        store_b=str(b),
    )


def _namespaces(root: Path) -> list[str]:
    if not root.is_dir():
        return []
    return sorted(
        entry.name for entry in root.iterdir()
        if entry.is_dir() and _NAMESPACE_RE.match(entry.name)
    )


def _cell_metrics(result: dict) -> dict:
    return {
        "total_cycles": float(result["total_cycles"]),
        "l2_misses": float(sum(result["l2_totals"]["misses"])),
    }


def _read_cells(root: Path, namespace: str) -> tuple[dict, int]:
    """All readable cells under one version namespace:
    ``{digest: {"label", "metrics"}}`` plus the count of entries skipped
    as unreadable (bad JSON, missing fields, mis-keyed digests)."""
    cells: dict[str, dict] = {}
    skipped = 0
    for path in sorted((root / namespace).glob("*/*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            digest = payload["digest"]
            if digest != path.stem:
                raise ValueError("digest does not match file name")
            spec = payload["spec"]
            config = spec["config"]
            label = (
                f"{spec['app']}/{spec['policy']} "
                f"seed={config['seed']} t={config['n_threads']}"
            )
            cells[digest] = {"label": label, "metrics": _cell_metrics(payload["result"])}
        except Exception:  # noqa: BLE001 — any malformed entry is skipped, never fatal
            skipped += 1
    return cells, skipped


def compare_runs(
    store_a: str | Path,
    store_b: str | Path,
    *,
    grid: SweepGrid | None = None,
    tolerances: dict | None = None,
) -> RunComparison:
    """Diff result store ``a`` (the reference) against ``b`` (the
    candidate).  With a ``grid``, comparison is scoped to that grid's
    cell keys; without one, every key either store holds is compared.
    ``tolerances`` maps metric name → max relative delta (default 0.0 —
    byte-identical metrics or it's a change)."""
    a_root, b_root = Path(store_a), Path(store_b)
    tolerances = {name: float(tolerances.get(name, 0.0)) if tolerances else 0.0
                  for name in METRIC_NAMES}
    METRICS.counter("compare.runs").inc()

    for side, root in (("a", a_root), ("b", b_root)):
        if not root.is_dir():
            return _incomparable(f"store {side} does not exist: {root}", a_root, b_root)
    spaces_a, spaces_b = _namespaces(a_root), _namespaces(b_root)
    for side, spaces, root in (("a", spaces_a, a_root), ("b", spaces_b, b_root)):
        if not spaces:
            return _incomparable(
                f"store {side} is empty (no version namespace under {root})",
                a_root, b_root,
            )
    common = sorted(set(spaces_a) & set(spaces_b))
    if not common:
        return _incomparable(
            "no common version namespace "
            f"(a has {', '.join(spaces_a)}; b has {', '.join(spaces_b)}) — "
            "the runs were produced by different simulator versions",
            a_root, b_root,
        )
    namespace = common[-1]  # newest shared version

    cells_a, skipped_a = _read_cells(a_root, namespace)
    cells_b, skipped_b = _read_cells(b_root, namespace)
    if not cells_a and not cells_b:
        return _incomparable(
            f"namespace {namespace} holds no readable cells in either store "
            f"(skipped a={skipped_a} b={skipped_b})",
            a_root, b_root, namespace,
        )

    if grid is not None:
        wanted = {spec.digest: spec.label for spec in grid.specs()}
        in_scope_a = wanted.keys() & cells_a.keys()
        in_scope_b = wanted.keys() & cells_b.keys()
        if not in_scope_a and not in_scope_b:
            return _incomparable(
                f"neither store holds any of the grid's {len(wanted)} cells — "
                "these stores belong to a different grid (foreign grid)",
                a_root, b_root, namespace,
            )
        keys = sorted(wanted)
    else:
        keys = sorted(cells_a.keys() | cells_b.keys())

    diffs: list[CellDiff] = []
    for key in keys:
        in_a, in_b = cells_a.get(key), cells_b.get(key)
        if in_a is None and in_b is None:
            continue  # grid cell neither run produced (e.g. never executed)
        if in_b is None:
            diffs.append(CellDiff(key=key, label=in_a["label"], status="removed"))
            continue
        if in_a is None:
            diffs.append(CellDiff(key=key, label=in_b["label"], status="added"))
            continue
        metrics = {}
        beyond_any = False
        for name in METRIC_NAMES:
            va, vb = in_a["metrics"][name], in_b["metrics"][name]
            delta = vb - va
            rel = delta / abs(va) if va else (0.0 if not vb else float("inf"))
            beyond = abs(rel) > tolerances[name]
            beyond_any = beyond_any or beyond
            metrics[name] = {
                "a": va, "b": vb, "delta": delta, "rel": rel,
                "tolerance": tolerances[name], "beyond": beyond,
            }
        diffs.append(
            CellDiff(
                key=key,
                label=in_a["label"],
                status="changed" if beyond_any else "equal",
                metrics=metrics,
            )
        )

    counts = {"equal": 0, "changed": 0, "added": 0, "removed": 0}
    for diff in diffs:
        counts[diff.status] += 1
        METRICS.counter(f"compare.cells.{diff.status}").inc()
    verdict = "regression" if counts["changed"] or counts["removed"] else "clean"
    return RunComparison(
        verdict=verdict,
        reason=None,
        namespace=namespace,
        store_a=str(a_root),
        store_b=str(b_root),
        cells=tuple(diffs),
        skipped_a=skipped_a,
        skipped_b=skipped_b,
        tolerances=tolerances,
    )
