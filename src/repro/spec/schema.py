"""Experiment-spec schema: parsing, defaulting, validation, round-trip.

A *spec* is one YAML/JSON document that names everything a sweep needs —
the grid, the config scaling, the engine, fault plan, journal, stores and
the expected outcome — so an experiment is reproducible from a checked-in
file instead of a command line.  The document shape (all blocks optional
except ``spec_version`` and ``grid``)::

    spec_version: 1
    name: fig20-vs-shared
    description: model-based vs the shared baseline, fig. 20 slice
    grid:                      # SweepGrid axes (DESIGN.md §H)
      apps: [ft, cg]
      policies: [shared, model-based]
      seeds: [1]
      thread_counts: [4]
      baseline: shared
    config:                    # SystemConfig scaling shared by all cells
      intervals: 30
      interval_instructions: 8000
      cache_backend: fast
    engine:                    # where cells run (serial/pool/remote)
      jobs: 4
      max_retries: 2
    journal: {path: runs/f20.journal, resume: true}
    store_dir: runs/store
    prep_dir: runs/prep
    faults: {seed: 7, rules: [...]}   # FaultPlan document (DESIGN.md §E)
    expectations:              # aggregate assertions checked after the run
      max_failures: 0
      tolerances: {total_cycles: 0.0, l2_misses: 0.0}
      min_mean_speedup: {model-based: 0.0}

Validation is *collect-then-raise*: every problem found is reported in one
:class:`SpecError`, each line an actionable field path
(``spec.grid.thread_counts[2]: expected int >= 1``), and the CLI surfaces
them verbatim with exit 2.  :meth:`ExperimentSpec.to_dict` emits the
fully-defaulted document, and ``parse_spec(spec.to_dict())`` round-trips.

Compilation is delegated to :class:`repro.exec.grid.SweepGrid`, so a spec
compiles to exactly the :class:`~repro.exec.jobs.JobSpec` grid (same
digests, same order) the flag-driven CLI builds — spec-driven and
flag-driven sweeps are byte-identical by construction.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.engine import EngineOptions, ExecutionEngine, SerialEngine
from repro.exec.faults import FaultPlan
from repro.exec.grid import POLICY_ALIASES, GridError, SweepGrid

__all__ = [
    "EngineSpec",
    "Expectations",
    "ExperimentSpec",
    "JournalSpec",
    "SpecError",
    "load_spec",
    "parse_spec",
]

SPEC_VERSION = 1

_TOP_KEYS = {
    "spec_version", "name", "description", "grid", "config", "engine",
    "journal", "store_dir", "prep_dir", "faults", "expectations",
}
_GRID_KEYS = {"apps", "policies", "seeds", "thread_counts", "baseline"}
_CONFIG_KEYS = {"intervals", "interval_instructions", "cache_backend"}
_ENGINE_KEYS = {
    "kind", "jobs", "workers",
    "max_retries", "backoff_s", "backoff_cap_s", "backoff_budget_s",
}
_JOURNAL_KEYS = {"path", "resume"}
_EXPECT_KEYS = {"max_failures", "max_baseline_missing", "tolerances", "min_mean_speedup"}
_METRICS = ("total_cycles", "l2_misses")


class SpecError(ValueError):
    """A spec that fails validation.  ``problems`` holds every violation
    found, each a ``field.path: problem`` line; ``str()`` joins them."""

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        super().__init__("\n".join(self.problems))


class _Problems:
    """Collector: validation keeps going so one bad spec reports every
    problem at once instead of one per edit-run cycle."""

    def __init__(self) -> None:
        self.items: list[str] = []

    def add(self, path: str, problem: str) -> None:
        self.items.append(f"{path}: {problem}")

    def raise_if_any(self) -> None:
        if self.items:
            raise SpecError(self.items)


@dataclass(frozen=True)
class EngineSpec:
    """Where a spec's cells execute (mirrors ``--engine/--jobs/--workers``).

    ``kind=None`` means *inferred*, with the CLI's rule: remote if
    ``workers`` is non-empty, pool if ``jobs > 1``, else serial.
    """

    kind: str | None = None
    jobs: int = 1
    workers: tuple[str, ...] = ()
    options: EngineOptions = field(default_factory=EngineOptions)

    def resolved_kind(self) -> str:
        if self.kind is not None:
            return self.kind
        return "remote" if self.workers else "pool" if self.jobs > 1 else "serial"

    def build(self) -> ExecutionEngine:
        kind = self.resolved_kind()
        if kind == "remote":
            from repro.dist import RemoteEngine, parse_worker_address

            return RemoteEngine(
                [parse_worker_address(w) for w in self.workers], options=self.options
            )
        if kind == "pool":
            from repro.exec.pool import ProcessPoolEngine

            return ProcessPoolEngine(self.jobs, options=self.options)
        return SerialEngine(options=self.options)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "jobs": self.jobs,
            "workers": list(self.workers),
            "max_retries": self.options.max_retries,
            "backoff_s": self.options.backoff_s,
            "backoff_cap_s": self.options.backoff_cap_s,
            "backoff_budget_s": self.options.backoff_budget_s,
        }


@dataclass(frozen=True)
class JournalSpec:
    """Crash-safety block: journal every cell to ``path``; ``resume``
    restores completed cells on re-run (DESIGN.md §E)."""

    path: str
    resume: bool = True

    def to_dict(self) -> dict:
        return {"path": self.path, "resume": self.resume}


@dataclass(frozen=True)
class Expectations:
    """Aggregate assertions checked after a spec run (and the tolerances
    ``repro compare-runs`` applies when diffing two runs of the spec).

    ``tolerances`` maps metric name → max *relative* delta allowed before
    a cell counts as changed; ``min_mean_speedup`` maps policy → the
    minimum mean speedup (over the baseline) every app must reach.
    """

    max_failures: int = 0
    max_baseline_missing: int | None = None
    tolerances: dict = field(default_factory=dict)
    min_mean_speedup: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "max_failures": self.max_failures,
            "max_baseline_missing": self.max_baseline_missing,
            "tolerances": dict(self.tolerances),
            "min_mean_speedup": dict(self.min_mean_speedup),
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """One parsed, validated, fully-defaulted experiment spec."""

    grid: SweepGrid
    name: str = ""
    description: str = ""
    engine: EngineSpec = field(default_factory=EngineSpec)
    journal: JournalSpec | None = None
    store_dir: str | None = None
    prep_dir: str | None = None
    faults: FaultPlan | None = None
    expectations: Expectations = field(default_factory=Expectations)
    source: str = "<spec>"

    def to_dict(self) -> dict:
        """The fully-defaulted document; ``parse_spec`` round-trips it."""
        grid = self.grid.to_dict()
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "description": self.description,
            "grid": {k: grid[k] for k in
                     ("apps", "policies", "seeds", "thread_counts", "baseline")},
            "config": {k: grid[k] for k in
                       ("intervals", "interval_instructions", "cache_backend")},
            "engine": self.engine.to_dict(),
            "journal": self.journal.to_dict() if self.journal else None,
            "store_dir": self.store_dir,
            "prep_dir": self.prep_dir,
            "faults": self.faults.to_dict() if self.faults else None,
            "expectations": self.expectations.to_dict(),
        }


def _check_keys(block: dict, known: set, path: str, problems: _Problems) -> None:
    for key in sorted(set(block) - known):
        problems.add(f"{path}.{key}", f"unknown key (known: {', '.join(sorted(known))})")


def _block(payload: dict, key: str, problems: _Problems) -> dict | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, dict):
        problems.add(f"spec.{key}", f"expected a mapping, got {type(value).__name__}")
        return None
    return value


def _opt_str(block: dict, key: str, path: str, problems: _Problems) -> str | None:
    value = block.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        problems.add(f"{path}.{key}", f"expected a non-empty string, got {value!r}")
        return None
    return value


def _nonneg_int(value: object, path: str, problems: _Problems, default: int) -> int:
    if value is None:
        return default
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        problems.add(path, f"expected int >= 0, got {value!r}")
        return default
    return value


def _parse_grid(payload: dict, problems: _Problems) -> SweepGrid | None:
    grid_block = _block(payload, "grid", problems)
    if grid_block is None and payload.get("grid") is None:
        # Absent and explicit ``grid: null`` are both "missing"; _block
        # already flagged any other non-mapping value.
        problems.add("spec.grid", "required block is missing")
    config_block = _block(payload, "config", problems) or {}
    if grid_block is None:
        return None
    _check_keys(grid_block, _GRID_KEYS, "spec.grid", problems)
    _check_keys(config_block, _CONFIG_KEYS, "spec.config", problems)
    # The config scalars are validated here under their own ``spec.config``
    # paths; SweepGrid.build re-checks them (harmlessly) with the axes.
    intervals = config_block.get("intervals", 50)
    interval_instructions = config_block.get("interval_instructions", 20_000)
    cache_backend = config_block.get("cache_backend", "fast")
    for key, value in (
        ("intervals", intervals), ("interval_instructions", interval_instructions),
    ):
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            problems.add(f"spec.config.{key}", f"expected int >= 1, got {value!r}")
            return None
    if cache_backend not in ("fast", "reference", "batch"):
        problems.add(
            "spec.config.cache_backend",
            f"expected one of fast, reference, batch, got {cache_backend!r}",
        )
        return None
    try:
        return SweepGrid.build(
            apps=grid_block.get("apps"),
            policies=grid_block.get("policies"),
            seeds=grid_block.get("seeds"),
            thread_counts=grid_block.get("thread_counts"),
            baseline=grid_block.get("baseline"),
            intervals=intervals,
            interval_instructions=interval_instructions,
            cache_backend=cache_backend,
            path="spec.grid",
        )
    except GridError as exc:
        problems.add(exc.path, exc.problem)
        return None


def _parse_engine(payload: dict, problems: _Problems) -> EngineSpec:
    block = _block(payload, "engine", problems)
    if block is None:
        return EngineSpec()
    _check_keys(block, _ENGINE_KEYS, "spec.engine", problems)
    kind = block.get("kind")
    if kind is not None and kind not in ("serial", "pool", "remote"):
        problems.add("spec.engine.kind", f"expected serial, pool or remote, got {kind!r}")
        kind = None
    jobs = block.get("jobs", 1)
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        problems.add("spec.engine.jobs", f"expected int >= 1, got {jobs!r}")
        jobs = 1
    workers = block.get("workers", [])
    if not isinstance(workers, list) or not all(isinstance(w, str) for w in workers):
        problems.add("spec.engine.workers", "expected a list of HOST:PORT strings")
        workers = []
    else:
        from repro.dist import parse_worker_address

        for index, worker in enumerate(workers):
            try:
                parse_worker_address(worker)
            except ValueError as exc:
                problems.add(f"spec.engine.workers[{index}]", str(exc))
    if kind == "remote" and not workers:
        problems.add("spec.engine.workers", "engine kind 'remote' needs at least one worker")
    option_values = {}
    for key in ("max_retries", "backoff_s", "backoff_cap_s", "backoff_budget_s"):
        if key in block:
            option_values[key] = block[key]
    try:
        options = EngineOptions(**option_values)
    except (TypeError, ValueError) as exc:
        problems.add("spec.engine", str(exc))
        options = EngineOptions()
    return EngineSpec(kind=kind, jobs=jobs, workers=tuple(workers), options=options)


def _parse_journal(payload: dict, problems: _Problems) -> JournalSpec | None:
    block = _block(payload, "journal", problems)
    if block is None:
        return None
    _check_keys(block, _JOURNAL_KEYS, "spec.journal", problems)
    path = _opt_str(block, "path", "spec.journal", problems)
    if path is None:
        problems.add("spec.journal.path", "required (where cell outcomes are journaled)")
        return None
    resume = block.get("resume", True)
    if not isinstance(resume, bool):
        problems.add("spec.journal.resume", f"expected true/false, got {resume!r}")
        resume = True
    return JournalSpec(path=path, resume=resume)


def _parse_faults(payload: dict, problems: _Problems) -> FaultPlan | None:
    block = _block(payload, "faults", problems)
    if block is None:
        return None
    try:
        return FaultPlan.from_dict(block)
    except (KeyError, TypeError, ValueError) as exc:
        problems.add("spec.faults", f"invalid fault plan: {exc}")
        return None


def _parse_expectations(
    payload: dict, grid: SweepGrid | None, problems: _Problems
) -> Expectations:
    block = _block(payload, "expectations", problems)
    if block is None:
        return Expectations()
    _check_keys(block, _EXPECT_KEYS, "spec.expectations", problems)
    max_failures = _nonneg_int(
        block.get("max_failures"), "spec.expectations.max_failures", problems, 0
    )
    max_baseline_missing = block.get("max_baseline_missing")
    if max_baseline_missing is not None:
        max_baseline_missing = _nonneg_int(
            max_baseline_missing, "spec.expectations.max_baseline_missing", problems, 0
        )
    tolerances = block.get("tolerances", {})
    if not isinstance(tolerances, dict):
        problems.add("spec.expectations.tolerances", "expected a mapping of metric -> number")
        tolerances = {}
    else:
        for metric, tol in sorted(tolerances.items()):
            if metric not in _METRICS:
                problems.add(
                    f"spec.expectations.tolerances.{metric}",
                    f"unknown metric (known: {', '.join(_METRICS)})",
                )
            elif not isinstance(tol, (int, float)) or isinstance(tol, bool) or tol < 0:
                problems.add(
                    f"spec.expectations.tolerances.{metric}",
                    f"expected a number >= 0, got {tol!r}",
                )
    speedups = block.get("min_mean_speedup", {})
    if not isinstance(speedups, dict):
        problems.add(
            "spec.expectations.min_mean_speedup", "expected a mapping of policy -> number"
        )
        speedups = {}
    else:
        normalised = {}
        for policy, floor in sorted(speedups.items()):
            policy = POLICY_ALIASES.get(policy, policy)
            if grid is not None and policy not in grid.policies:
                problems.add(
                    f"spec.expectations.min_mean_speedup.{policy}",
                    f"policy is not swept by this spec (swept: {', '.join(grid.policies)})",
                )
            elif grid is not None and policy == grid.baseline:
                problems.add(
                    f"spec.expectations.min_mean_speedup.{policy}",
                    "policy is the baseline (its speedup is identically zero)",
                )
            if not isinstance(floor, (int, float)) or isinstance(floor, bool):
                problems.add(
                    f"spec.expectations.min_mean_speedup.{policy}",
                    f"expected a number, got {floor!r}",
                )
            else:
                normalised[policy] = float(floor)
        speedups = normalised
    return Expectations(
        max_failures=max_failures,
        max_baseline_missing=max_baseline_missing,
        tolerances={m: float(t) for m, t in tolerances.items()
                    if m in _METRICS and isinstance(t, (int, float))
                    and not isinstance(t, bool) and t >= 0},
        min_mean_speedup=speedups,
    )


def parse_spec(payload: object, *, source: str = "<spec>") -> ExperimentSpec:
    """Validate a decoded YAML/JSON document into an
    :class:`ExperimentSpec`; raises :class:`SpecError` carrying *every*
    problem found, each with an actionable field path."""
    problems = _Problems()
    if not isinstance(payload, dict):
        raise SpecError([f"spec: expected a mapping, got {type(payload).__name__}"])
    version = payload.get("spec_version")
    if version != SPEC_VERSION:
        problems.add(
            "spec.spec_version",
            f"expected {SPEC_VERSION}, got {version!r}"
            + ("" if "spec_version" in payload else " (missing)"),
        )
    _check_keys(payload, _TOP_KEYS, "spec", problems)
    name = payload.get("name", "")
    if not isinstance(name, str):
        problems.add("spec.name", f"expected a string, got {name!r}")
        name = ""
    description = payload.get("description", "")
    if not isinstance(description, str):
        problems.add("spec.description", f"expected a string, got {description!r}")
        description = ""
    grid = _parse_grid(payload, problems)
    engine = _parse_engine(payload, problems)
    journal = _parse_journal(payload, problems)
    store_dir = _opt_str(payload, "store_dir", "spec", problems)
    prep_dir = _opt_str(payload, "prep_dir", "spec", problems)
    faults = _parse_faults(payload, problems)
    expectations = _parse_expectations(payload, grid, problems)
    problems.raise_if_any()
    assert grid is not None  # no problems means the grid parsed
    return ExperimentSpec(
        grid=grid,
        name=name,
        description=description,
        engine=engine,
        journal=journal,
        store_dir=store_dir,
        prep_dir=prep_dir,
        faults=faults,
        expectations=expectations,
        source=source,
    )


def load_spec(path: str | Path) -> ExperimentSpec:
    """Read and parse a spec file.  ``.json`` is always available;
    ``.yaml``/``.yml`` needs PyYAML (a clear :class:`SpecError` if the
    interpreter lacks it, not an ImportError traceback)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SpecError([f"spec: cannot read {path}: {exc}"]) from None
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise SpecError(
                [f"spec: {path} is YAML but PyYAML is not installed; "
                 "install pyyaml or use a .json spec"]
            ) from None
        try:
            payload = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise SpecError([f"spec: {path} is not valid YAML: {exc}"]) from None
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError([f"spec: {path} is not valid JSON: {exc}"]) from None
    return parse_spec(payload, source=str(path))
