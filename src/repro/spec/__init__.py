"""Declarative experiment specs and the continuous result comparator.

This package turns experiments into checked-in files (DESIGN.md §H):

* :mod:`repro.spec.schema` — versioned YAML/JSON documents naming a
  sweep's grid, config scaling, engine, fault plan, journal, stores and
  expected outcome; validated collect-all with actionable field paths
  (``spec.grid.thread_counts[2]: expected int >= 1``) and compiled
  through :class:`repro.exec.grid.SweepGrid`, so a spec run is
  byte-identical to the equivalent flag-driven ``repro sweep``.
* :mod:`repro.spec.run` — ``repro run-spec``'s engine: executes a spec
  (serial/pool/remote, journal/resume aware, smoke mode) and checks its
  ``expectations`` block.
* :mod:`repro.spec.compare` — ``repro compare-runs``'s engine: diffs two
  content-addressed result stores cell by cell, classifying
  added/removed/changed against per-metric tolerances, with a
  machine-readable *incomparable* verdict for stores that cannot be
  meaningfully diffed (wrong version, empty, foreign grid).

The checked-in specs live in ``specs/`` at the repo root; CI replays
one on every push and fails on any cell-level regression.
"""

from repro.spec.compare import CellDiff, RunComparison, compare_runs
from repro.spec.run import check_expectations, run_experiment, smoke_spec
from repro.spec.schema import (
    EngineSpec,
    Expectations,
    ExperimentSpec,
    JournalSpec,
    SpecError,
    load_spec,
    parse_spec,
)

__all__ = [
    "CellDiff",
    "EngineSpec",
    "Expectations",
    "ExperimentSpec",
    "JournalSpec",
    "RunComparison",
    "SpecError",
    "check_expectations",
    "compare_runs",
    "load_spec",
    "parse_spec",
    "run_experiment",
    "smoke_spec",
]
