"""Execute a parsed :class:`~repro.spec.schema.ExperimentSpec`.

``run_experiment`` is a thin, deterministic adapter: it builds exactly
the engine/store/journal/fault-plan the flag-driven ``repro sweep``
would, then calls the same :func:`repro.exec.sweep.run_sweep` — so a
spec run and its equivalent flag run produce byte-identical
resume-invariant aggregates (pinned by ``tests/test_spec_run.py``).

``smoke`` mode shrinks a spec to a seconds-scale probe of the same
machinery (first value of every grid axis, capped intervals) for CI
jobs that want the wiring exercised, not the full figure.

``check_expectations`` evaluates the spec's ``expectations`` block
against a finished :class:`~repro.exec.sweep.SweepResult` and returns
the violations as ``field.path: problem`` strings — same shape as
schema errors, so the CLI reports both identically.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.exec.engine import ExecutionEngine
from repro.exec.faults import set_fault_plan
from repro.exec.store import ResultStore
from repro.exec.sweep import SweepResult, run_sweep
from repro.obs.metrics import METRICS
from repro.spec.schema import ExperimentSpec

__all__ = ["check_expectations", "run_experiment", "smoke_spec"]

SMOKE_MAX_INTERVALS = 5
SMOKE_MAX_INTERVAL_INSTRUCTIONS = 2000


def smoke_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """The seconds-scale probe of ``spec``: first value of every grid
    axis, intervals capped — same schema, same pipeline, tiny grid."""
    grid = spec.grid
    small = dataclasses.replace(
        grid,
        apps=grid.apps[:1],
        policies=grid.policies[: (2 if len(grid.policies) > 1 else 1)],
        seeds=grid.seeds[:1],
        thread_counts=grid.thread_counts[:1],
        baseline=grid.policies[0],
        intervals=min(grid.intervals, SMOKE_MAX_INTERVALS),
        interval_instructions=min(
            grid.interval_instructions, SMOKE_MAX_INTERVAL_INSTRUCTIONS
        ),
    )
    return dataclasses.replace(spec, grid=small)


def run_experiment(
    spec: ExperimentSpec,
    *,
    smoke: bool = False,
    engine: ExecutionEngine | None = None,
    store_dir: str | Path | None = None,
    prep_dir: str | Path | None = None,
    journal_path: str | Path | None = None,
) -> SweepResult:
    """Run ``spec``'s sweep.  The keyword overrides exist for the CLI
    (``--cache-dir``/``--prep-dir``/``--journal`` beat the spec's own
    blocks) and for tests that inject a prepared engine.

    Raises what :func:`run_sweep` raises — notably
    :class:`~repro.exec.journal.JournalMismatchError` when the spec's
    journal belongs to a different grid.
    """
    if smoke:
        spec = smoke_spec(spec)
        METRICS.counter("spec.smoke_runs").inc()
    METRICS.counter("spec.runs").inc()
    grid = spec.grid

    set_fault_plan(spec.faults)  # before the engine: pool workers inherit it
    owns_engine = engine is None
    if engine is None:
        engine = spec.engine.build()

    store = None
    store_root = store_dir if store_dir is not None else spec.store_dir
    if store_root is not None:
        store = ResultStore(store_root)

    prep_root = prep_dir if prep_dir is not None else spec.prep_dir
    if prep_root is not None:
        from repro.prep import configure_prep

        configure_prep(prep_root)

    journal = journal_path if journal_path is not None else (
        spec.journal.path if spec.journal else None
    )
    if smoke and journal_path is None and journal is not None:
        # A smoke run shrinks the grid (different digest); give it its own
        # journal so it can never trip the full run's mismatch guard.
        journal = f"{journal}.smoke"
    resume = spec.journal.resume if spec.journal else False

    try:
        return run_sweep(
            grid.apps,
            grid.policies,
            seeds=grid.seeds,
            thread_counts=grid.thread_counts,
            config=grid.config(),
            engine=engine,
            store=store,
            baseline=grid.baseline,
            journal=journal,
            resume=bool(journal) and resume,
        )
    finally:
        set_fault_plan(None)
        if owns_engine and hasattr(engine, "close"):
            engine.close()


def check_expectations(spec: ExperimentSpec, result: SweepResult) -> list[str]:
    """The spec's ``expectations`` block evaluated against ``result``;
    returns violations as ``field.path: problem`` strings (empty = met)."""
    expect = spec.expectations
    violations: list[str] = []
    if len(result.failures) > expect.max_failures:
        labels = sorted(
            f"{c.app}/{c.policy} seed={c.seed} t={c.n_threads}" for c in result.failures
        )
        violations.append(
            f"spec.expectations.max_failures: {len(result.failures)} cell(s) failed "
            f"(allowed {expect.max_failures}): " + ", ".join(labels[:5])
        )
    if expect.max_baseline_missing is not None:
        missing = result.baseline_missing
        if missing > expect.max_baseline_missing:
            violations.append(
                f"spec.expectations.max_baseline_missing: {missing} baseline cell(s) "
                f"missing (allowed {expect.max_baseline_missing})"
            )
    for policy, floor in sorted(expect.min_mean_speedup.items()):
        for app in result.apps:
            speedup = result.mean_speedup(app, policy)
            if speedup is None:
                violations.append(
                    f"spec.expectations.min_mean_speedup.{policy}: no speedup "
                    f"for app {app!r} (cell failed or baseline missing)"
                )
            elif speedup < floor:
                violations.append(
                    f"spec.expectations.min_mean_speedup.{policy}: {app} reached "
                    f"{speedup:+.2%}, below the {floor:+.2%} floor"
                )
    if violations:
        METRICS.counter("spec.expectation_failures").inc(len(violations))
    return violations
