"""repro.serve — async sweep service over the execution layer.

``repro serve`` turns the repo's batch sweep machinery into a long-lived
localhost service (DESIGN.md §F): many concurrent clients POST sweep
grids, the service coalesces duplicate work down to one simulation per
content-addressed cell, admission control sheds load it cannot absorb
(429 + Retry-After), and every sweep's progress is streamable as NDJSON
while its journal makes it crash-resumable.  Stdlib asyncio only — no
new dependencies.

Layers, bottom-up:

* :mod:`repro.serve.protocol` — requests, content-addressed sweep
  identity, stream event records;
* :mod:`repro.serve.scheduler` — bridge from the event loop to the
  blocking engines (one consumer task, bounded batches);
* :mod:`repro.serve.coalescer` — digest -> in-flight-future registry;
* :mod:`repro.serve.admission` — quotas, backlog bound, Retry-After;
* :mod:`repro.serve.service` — sweep tasks, journals, event streams;
* :mod:`repro.serve.http` — the five-route HTTP/1.1 front-end;
* :mod:`repro.serve.runner` — lifecycle, signals, test harness;
* :mod:`repro.serve.client` — blocking client (``repro submit``).
"""

from repro.serve.admission import AdmissionController, Rejection
from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.coalescer import CellCoalescer
from repro.serve.protocol import DEFAULT_PORT, RequestError, SweepRequest
from repro.serve.runner import (
    ServeSettings,
    ServerHandle,
    run_server,
    serve_forever,
    start_in_thread,
)
from repro.serve.scheduler import EngineScheduler
from repro.serve.service import SweepService, SweepTask

__all__ = [
    "AdmissionController",
    "Backpressure",
    "CellCoalescer",
    "DEFAULT_PORT",
    "EngineScheduler",
    "Rejection",
    "RequestError",
    "ServeClient",
    "ServeError",
    "ServeSettings",
    "ServerHandle",
    "SweepRequest",
    "SweepService",
    "SweepTask",
    "run_server",
    "serve_forever",
    "start_in_thread",
]
