"""Wire protocol of the sweep service: requests, sweep identity, events.

A :class:`SweepRequest` is the JSON body of ``POST /v1/sweeps`` — the
same grid ``repro sweep`` takes on the command line (apps x policies x
seeds x thread-counts over a scaled :class:`~repro.sim.config.SystemConfig`),
validated up front so a malformed submission is a 400 with a message, not
a traceback inside the scheduler.

Sweep identity is content-addressed: :attr:`SweepRequest.sweep_id` is the
SHA-256 digest of the same grid key ``repro sweep --journal`` stamps into
its journal header (:func:`repro.exec.sweep.grid_key`, which includes
``repro.__version__``).  Two clients submitting identical grids therefore
*name the same sweep* and attach to one execution; the journal a sweep
writes is stored under its id, so a restarted service resumes exactly the
journal that sweep left behind.

Event records (the NDJSON stream of ``GET /v1/sweeps/<id>/events``) are
plain dicts built by :func:`cell_event` / :func:`status_event` — flat,
JSON-first, one object per line, mirroring the obs event style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.exec.grid import SweepGrid
from repro.exec.jobs import JobSpec
from repro.exec.sweep import SweepCell
from repro.partition import POLICY_REGISTRY
from repro.sim.config import SystemConfig
from repro.trace.workloads import list_workloads

__all__ = ["RequestError", "SweepRequest", "cell_event", "status_event"]

DEFAULT_PORT = 8787
"""Default TCP port of ``repro serve`` (localhost only)."""


class RequestError(ValueError):
    """A submission that fails validation — rendered as HTTP 400."""


def _str_list(payload: dict, key: str, *, required: bool = False) -> list[str] | None:
    value = payload.get(key)
    if value is None:
        if required:
            raise RequestError(f"{key!r} is required (a non-empty list of strings)")
        return None
    if not isinstance(value, list) or not value or not all(isinstance(v, str) for v in value):
        raise RequestError(f"{key!r} must be a non-empty list of strings")
    return value


def _int_list(payload: dict, key: str, default: list[int], *, minimum: int = 0) -> list[int]:
    value = payload.get(key)
    if value is None:
        return default
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(v, int) and not isinstance(v, bool) for v in value)
    ):
        raise RequestError(f"{key!r} must be a non-empty list of integers")
    if any(v < minimum for v in value):
        raise RequestError(f"{key!r} values must be >= {minimum}")
    return value


def _pos_int(payload: dict, key: str, default: int) -> int:
    value = payload.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise RequestError(f"{key!r} must be an integer >= 1")
    return value


@dataclass(frozen=True)
class SweepRequest:
    """One validated sweep submission (the body of ``POST /v1/sweeps``).

    ``baseline`` is already resolved (``"shared"`` when swept, else the
    first policy) so every identity derived from the request — grid key,
    sweep id, journal header — is deterministic in the payload.
    """

    apps: tuple[str, ...]
    policies: tuple[str, ...]
    seeds: tuple[int, ...] = (1,)
    thread_counts: tuple[int, ...] = (4,)
    baseline: str = "shared"
    intervals: int = 50
    interval_instructions: int = 20_000
    cache_backend: str = "fast"
    client: str = "anonymous"
    resume: bool = field(default=True, compare=False)

    @classmethod
    def from_dict(cls, payload: object) -> "SweepRequest":
        """Validate a JSON payload into a request; raises
        :class:`RequestError` with an operator-readable message."""
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        apps = _str_list(payload, "apps", required=True)
        policies = _str_list(payload, "policies", required=True)
        known_apps = list_workloads()
        unknown = [a for a in apps if a not in known_apps]
        if unknown:
            raise RequestError(
                f"unknown workloads: {', '.join(unknown)} (known: {', '.join(known_apps)})"
            )
        unknown = [p for p in policies if p not in POLICY_REGISTRY]
        if unknown:
            raise RequestError(
                f"unknown policies: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(POLICY_REGISTRY))})"
            )
        baseline = payload.get("baseline")
        if baseline is None:
            baseline = "shared" if "shared" in policies else policies[0]
        elif baseline not in policies:
            raise RequestError(
                f"baseline {baseline!r} is not among the swept policies: {', '.join(policies)}"
            )
        backend = payload.get("cache_backend", "fast")
        if backend not in ("fast", "reference"):
            raise RequestError("'cache_backend' must be 'fast' or 'reference'")
        client = payload.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise RequestError("'client' must be a non-empty string")
        return cls(
            apps=tuple(apps),
            policies=tuple(policies),
            seeds=tuple(_int_list(payload, "seeds", [1])),
            thread_counts=tuple(_int_list(payload, "thread_counts", [4], minimum=1)),
            baseline=baseline,
            intervals=_pos_int(payload, "intervals", 50),
            interval_instructions=_pos_int(payload, "interval_instructions", 20_000),
            cache_backend=backend,
            client=client,
            resume=bool(payload.get("resume", True)),
        )

    def to_dict(self) -> dict:
        return {
            "apps": list(self.apps),
            "policies": list(self.policies),
            "seeds": list(self.seeds),
            "thread_counts": list(self.thread_counts),
            "baseline": self.baseline,
            "intervals": self.intervals,
            "interval_instructions": self.interval_instructions,
            "cache_backend": self.cache_backend,
            "client": self.client,
        }

    @cached_property
    def grid(self) -> SweepGrid:
        """The request as the canonical :class:`~repro.exec.grid.SweepGrid`
        every entry point compiles through — so spec digests (and therefore
        store keys and coalescing) agree across CLI, specs and service."""
        return SweepGrid(
            apps=self.apps,
            policies=self.policies,
            seeds=self.seeds,
            thread_counts=self.thread_counts,
            baseline=self.baseline,
            intervals=self.intervals,
            interval_instructions=self.interval_instructions,
            cache_backend=self.cache_backend,
        )

    def config(self) -> SystemConfig:
        """The base config this grid varies — exactly what
        ``repro sweep`` builds from the same flags."""
        return self.grid.config()

    def grid_key(self) -> dict:
        return self.grid.grid_key()

    @property
    def sweep_id(self) -> str:
        """Content address of the whole sweep (includes the simulator
        version): the attach/coalesce key and the journal file name."""
        return self.grid.digest

    def specs(self) -> list[JobSpec]:
        """The grid in canonical sweep order (shared with ``run_sweep``)."""
        return self.grid.specs()

    @property
    def n_cells(self) -> int:
        return self.grid.n_cells


def cell_event(
    cell: SweepCell, *, key: str, completed: int, total: int, replayed: bool = False
) -> dict:
    """One completed cell as an NDJSON stream record.  ``replayed`` marks
    history restored from the journal/store at attach time rather than
    produced live."""
    return {
        "event": "cell",
        "key": key,
        "app": cell.app,
        "policy": cell.policy,
        "seed": cell.seed,
        "n_threads": cell.n_threads,
        "ok": cell.ok,
        "source": cell.source,
        "total_cycles": cell.total_cycles,
        "error": cell.error,
        "completed": completed,
        "total": total,
        "replayed": replayed,
    }


def status_event(status: dict) -> dict:
    """The stream's first record (current progress) and its last (the
    terminal status)."""
    return {"event": "status", **status}
