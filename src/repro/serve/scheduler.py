"""Bridge from the asyncio service to the synchronous execution engines.

The engines (:class:`~repro.exec.engine.SerialEngine`,
:class:`~repro.exec.pool.ProcessPoolEngine`) are blocking batch APIs, and
neither is safe to drive from two threads at once — so one scheduler task
owns the engine and feeds it bounded batches pulled from a FIFO queue of
``(spec, future)`` cells.  Each batch runs in a worker thread
(``run_in_executor``); the engine's ``on_outcome`` callback fires there
as each cell finalises, persists the result into the shared
:class:`~repro.exec.store.ResultStore` (the same completion-ordered
durability rule ``run_sweep`` follows), and posts the outcome back onto
the event loop, where the cell's future resolves and every attached
sweep journals and streams it.

Bounded batches are what make shutdown cheap: a drain only has to wait
out the *current* batch (at most ``batch_size`` cells — workers are not
interruptible), then flushes everything still queued by resolving its
futures to ``None``, the "not executed, resume later" sentinel.
"""

from __future__ import annotations

import asyncio
from collections import deque

from repro.exec.engine import ExecutionEngine
from repro.exec.jobs import JobOutcome, JobSpec
from repro.exec.store import ResultStore
from repro.obs.metrics import METRICS

__all__ = ["EngineScheduler"]


class EngineScheduler:
    """Single-consumer cell queue in front of one execution engine."""

    def __init__(
        self,
        engine: ExecutionEngine,
        store: ResultStore | None,
        *,
        batch_size: int | None = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.engine = engine
        self.store = store
        # Default: enough to keep a pool's workers busy without making a
        # drain wait on a huge indivisible batch.
        self.batch_size = batch_size or max(2 * getattr(engine, "jobs", 1), 4)
        self._queue: deque[tuple[JobSpec, asyncio.Future]] = deque()
        self._wake = asyncio.Event()
        self._draining = False
        self._dispatched = 0  # cells inside the currently running batch
        self._task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.executed = 0

    # -- queue side (event-loop thread) ---------------------------------

    @property
    def backlog(self) -> int:
        """Cells queued or currently executing — the admission bound."""
        return len(self._queue) + self._dispatched

    def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._task = self._loop.create_task(self._run(), name="serve-scheduler")

    def submit(self, spec: JobSpec, future: asyncio.Future) -> None:
        """Enqueue one cell (the coalescer guarantees digest uniqueness
        among in-flight cells)."""
        if self._draining:
            # Submissions are rejected at admission once draining; a cell
            # that slips through resolves to the drain sentinel.
            if not future.done():
                future.set_result(None)
            return
        self._queue.append((spec, future))
        METRICS.gauge("serve.queue.depth").set(self.backlog)
        self._wake.set()

    async def drain(self) -> None:
        """Finish the in-flight batch, flush the queue with ``None``
        sentinels, stop the scheduler task, and close the engine (which
        drains a warm worker pool)."""
        self._draining = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        if hasattr(self.engine, "close"):
            self.engine.close()

    # -- consumer -------------------------------------------------------

    async def _run(self) -> None:
        assert self._loop is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._queue and not self._draining:
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.batch_size, len(self._queue)))
                ]
                self._dispatched = len(batch)
                METRICS.gauge("serve.queue.depth").set(self.backlog)
                try:
                    await self._run_batch(batch)
                finally:
                    self._dispatched = 0
                    METRICS.gauge("serve.queue.depth").set(self.backlog)
            if self._draining:
                break
        while self._queue:
            _, future = self._queue.popleft()
            if not future.done():
                future.set_result(None)
        METRICS.gauge("serve.queue.depth").set(0)

    async def _run_batch(self, batch: list[tuple[JobSpec, asyncio.Future]]) -> None:
        assert self._loop is not None
        loop = self._loop
        specs = [spec for spec, _ in batch]
        futures = {spec.digest: future for spec, future in batch}

        def on_outcome(outcome: JobOutcome) -> None:
            # Engine-thread side: persist first (completion-ordered
            # durability, same as run_sweep), then hand the outcome to
            # the loop so sweeps can journal/stream it while the rest of
            # the batch is still running.
            if outcome.ok and self.store is not None and outcome.result is not None:
                self.store.put(outcome.spec, outcome.result)
            loop.call_soon_threadsafe(self._deliver, futures[outcome.spec.digest], outcome)

        def run() -> list[JobOutcome]:
            return self.engine.run(specs, on_outcome=on_outcome)

        with METRICS.span("serve.batch"):
            try:
                outcomes = await loop.run_in_executor(None, run)
            except Exception as exc:  # noqa: BLE001 — engine bugs must not wedge the service
                METRICS.counter("serve.scheduler.errors").inc()
                for _, future in batch:
                    if not future.done():
                        future.set_exception(RuntimeError(f"engine batch failed: {exc}"))
                        # Consume the exception if nothing awaits this future.
                        future.exception()
                return
        # Custom engines may ignore on_outcome; resolve any stragglers.
        for (_, future), outcome in zip(batch, outcomes):
            self._deliver(future, outcome)

    def _deliver(self, future: asyncio.Future, outcome: JobOutcome) -> None:
        if not future.done():
            self.executed += 1
            METRICS.counter("serve.cells.executed").inc()
            future.set_result(outcome)
