"""Minimal asyncio HTTP/1.1 front-end for the sweep service.

Stdlib-only by design (ISSUE: no new dependencies): a hand-rolled
request parser over ``asyncio.start_server`` serving exactly the five
routes the service needs —

* ``GET /healthz`` — liveness (also reports draining);
* ``GET /v1/stats`` — service counters + store stats;
* ``POST /v1/sweeps`` — submit a sweep (202 admitted / 200 attached /
  429 backpressure with ``Retry-After`` / 400 invalid / 503 draining);
* ``GET /v1/sweeps/<id>`` — sweep status (running, retained or archived
  from its on-disk journal);
* ``GET /v1/sweeps/<id>/events`` — NDJSON stream: journal/history
  replay, then live tail until the sweep reaches a terminal status.

Every response closes the connection (``Connection: close``) — clients
are simple, and the stream endpoint is long-lived anyway.  The parser is
deliberately strict and small: requests over ``MAX_BODY`` bytes or with
malformed framing get a 4xx and the connection dropped; this is a
localhost service for sweep submission, not a general web server.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs.metrics import METRICS
from repro.serve.service import SweepService

__all__ = ["handle_connection", "start_http_server"]

MAX_HEADER = 16 * 1024
MAX_BODY = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


def _response_head(status: int, content_type: str, extra: dict | None = None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n").encode("ascii")


def _json_response(status: int, body: dict, extra: dict | None = None) -> bytes:
    payload = (json.dumps(body) + "\n").encode("utf-8")
    head = _response_head(
        status, "application/json",
        {**(extra or {}), "Content-Length": str(len(payload))},
    )
    return head + b"\r\n" + payload


async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes] | None:
    """Parse one request; returns ``(method, path, body)`` or ``None`` on
    a connection closed before/amid the head."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large")
    if len(head) > MAX_HEADER:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {lines[0]!r}")
    method, path, _version = parts
    length = 0
    for line in lines[1:]:
        if ":" not in line:
            continue
        name, value = line.split(":", 1)
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise ValueError("bad Content-Length") from None
    if length > MAX_BODY:
        raise ValueError("body too large")
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def handle_connection(
    service: SweepService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One connection = one request = one response (Connection: close)."""
    try:
        try:
            request = await _read_request(reader)
        except ValueError as exc:
            writer.write(_json_response(400, {"error": str(exc)}))
            await writer.drain()
            return
        except asyncio.IncompleteReadError:
            return
        if request is None:
            return
        method, path, body = request
        await _route(service, method, path, body, writer)
    except (ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-response; nothing to salvage
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _route(
    service: SweepService, method: str, path: str, body: bytes,
    writer: asyncio.StreamWriter,
) -> None:
    if path == "/healthz" and method == "GET":
        writer.write(_json_response(200, {
            "status": "draining" if service.draining else "ok",
        }))
        await writer.drain()
        return
    if path == "/v1/stats" and method == "GET":
        writer.write(_json_response(200, service.stats()))
        await writer.drain()
        return
    if path == "/v1/sweeps":
        if method != "POST":
            writer.write(_json_response(405, {"error": "use POST"}))
            await writer.drain()
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            writer.write(_json_response(400, {"error": "body is not valid JSON"}))
            await writer.drain()
            return
        status, response = service.submit(payload)
        extra = {}
        if status == 429:
            extra["Retry-After"] = str(max(1, round(response.get("retry_after_s", 1))))
        writer.write(_json_response(status, response, extra))
        await writer.drain()
        return
    if path.startswith("/v1/sweeps/") and method == "GET":
        rest = path[len("/v1/sweeps/"):]
        if rest.endswith("/events"):
            await _stream_events(service, rest[: -len("/events")].rstrip("/"), writer)
            return
        sweep_id = rest.rstrip("/")
        task = service.get(sweep_id)
        if task is not None:
            writer.write(_json_response(200, task.describe()))
        else:
            archived = service.archived_status(sweep_id)
            if archived is not None:
                writer.write(_json_response(200, archived))
            else:
                writer.write(_json_response(404, {"error": f"unknown sweep {sweep_id!r}"}))
        await writer.drain()
        return
    writer.write(_json_response(404, {"error": f"no route for {method} {path}"}))
    await writer.drain()


async def _stream_events(
    service: SweepService, sweep_id: str, writer: asyncio.StreamWriter
) -> None:
    """``GET /v1/sweeps/<id>/events``: NDJSON, replay then live tail."""
    task = service.get(sweep_id)
    if task is None:
        archived = service.archived_events(sweep_id)
        if archived is None:
            writer.write(_json_response(404, {"error": f"unknown sweep {sweep_id!r}"}))
            await writer.drain()
            return
        writer.write(_response_head(200, "application/x-ndjson") + b"\r\n")
        for event in archived:
            writer.write((json.dumps(event) + "\n").encode("utf-8"))
        await writer.drain()
        return
    METRICS.counter("serve.streams").inc()
    writer.write(_response_head(200, "application/x-ndjson") + b"\r\n")
    await writer.drain()
    async for event in task.stream():
        writer.write((json.dumps(event) + "\n").encode("utf-8"))
        await writer.drain()


async def start_http_server(
    service: SweepService, host: str, port: int
) -> asyncio.base_events.Server:
    """Bind and start serving; the caller owns the returned server."""

    async def _handler(reader, writer):
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(_handler, host, port, limit=MAX_HEADER)
