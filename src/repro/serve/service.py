"""The sweep service: multi-tenant front-end over the runner/store stack.

One :class:`SweepService` owns the shared pieces — a
:class:`~repro.exec.store.ResultStore`, an
:class:`~repro.serve.scheduler.EngineScheduler` wrapping one execution
engine, a :class:`~repro.serve.coalescer.CellCoalescer` and an
:class:`~repro.serve.admission.AdmissionController` — and a registry of
:class:`SweepTask`\\ s, one per content-addressed sweep id.

Life of a submission (``submit``):

1. validate (:class:`~repro.serve.protocol.SweepRequest`) — 400 on junk;
2. **attach** if the sweep id is already known (running or retained):
   identical grids from concurrent clients share one sweep outright;
3. resolve the grid: cells restored from the sweep's own journal
   (service was killed mid-sweep and restarted), cells already in the
   result store, cells another sweep has in flight (coalesced), and the
   remainder that needs scheduling;
4. **admission** over that remainder only — warm or duplicate work is
   always admitted — rejecting with 429 + Retry-After when the backlog
   bound or a quota would be exceeded;
5. open the journal (``journals/<sweep_id>.jsonl`` under the data dir)
   and start the sweep task, which journals and streams every cell as it
   completes and finally assembles the exact
   :class:`~repro.exec.sweep.SweepResult` ``run_sweep`` would have built
   — byte-identical aggregates are the contract
   (``tests/test_serve_service.py`` pins it, including across a service
   kill/restart).

``drain()`` is the signal path: stop admitting, let the scheduler finish
its in-flight batch, resolve queued cells to the drain sentinel, close
every journal (each append was already fsynced) and shut the engine's
warm pool down.  Unfinished sweeps end as ``"interrupted"`` — their
journals resume on the next submission of the same grid.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from pathlib import Path

from repro.exec.journal import SweepJournal
from repro.exec.store import ResultStore
from repro.exec.sweep import SweepCell, SweepResult
from repro.obs.events import ServeDrainEvent, SweepRejectedEvent, SweepSubmittedEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer
from repro.serve.admission import AdmissionController
from repro.serve.coalescer import CellCoalescer
from repro.serve.protocol import RequestError, SweepRequest, cell_event, status_event
from repro.serve.scheduler import EngineScheduler

__all__ = ["SweepService", "SweepTask"]


class SweepTask:
    """One sweep's in-service state: cells, journal, event history."""

    def __init__(
        self, service: "SweepService", request: SweepRequest, specs: list | None = None
    ) -> None:
        self.service = service
        self.request = request
        self.id = request.sweep_id
        # Reuse the submitter's spec objects: their digests are cached
        # per instance, and the admission count already computed them.
        self.specs = request.specs() if specs is None else specs
        self.total = len(self.specs)
        self.status = "running"
        self.clients = {request.client}
        self.cells: dict[str, SweepCell] = {}
        self.resumed = 0
        self.store_hits = 0
        self.coalesced = 0
        self.scheduled = 0
        self.executed = 0
        self.result: SweepResult | None = None
        self.events: list[dict] = []
        self.task: asyncio.Task | None = None
        self.journal: SweepJournal | None = None
        self._started = time.perf_counter()
        self.wall_s: float | None = None
        self._waiters: list[asyncio.Future] = []

    # -- progress/event plumbing ----------------------------------------

    def _emit(self, event: dict) -> None:
        self.events.append(event)
        for waiter in self._waiters:
            if not waiter.done():
                waiter.set_result(None)
        self._waiters.clear()

    async def stream(self):
        """Replay history, then tail live events until the sweep ends —
        the body of ``GET /v1/sweeps/<id>/events``.  Detach-safe: a
        consumer can stop at any point; late consumers of a finished
        sweep get the full replay and an immediate end."""
        index = 0
        yield status_event(self.describe())
        while True:
            while index < len(self.events):
                yield self.events[index]
                index += 1
            if self.status != "running":
                return
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter

    def describe(self) -> dict:
        """The status payload of ``GET /v1/sweeps/<id>``."""
        payload = {
            "sweep_id": self.id,
            "status": self.status,
            "clients": sorted(self.clients),
            "total_cells": self.total,
            "completed": len(self.cells),
            "resumed": self.resumed,
            "store_hits": self.store_hits,
            "coalesced": self.coalesced,
            "scheduled": self.scheduled,
            "executed": self.executed,
            "failures": sum(1 for c in self.cells.values() if not c.ok),
            "wall_s": round(
                self.wall_s if self.wall_s is not None
                else time.perf_counter() - self._started,
                6,
            ),
        }
        if self.result is not None:
            payload["result"] = self.result.to_dict()
        return payload

    # -- lifecycle ------------------------------------------------------

    def start(self, restored: dict, hits: dict | None = None) -> None:
        """Resolve every cell and start the completion consumer.

        ``restored`` maps digest -> ok
        :class:`~repro.exec.journal.JournalEntry` from this sweep's own
        journal (a previous service incarnation); ``hits`` maps digest ->
        store result prefetched by :meth:`SweepService.submit` (pass
        ``None`` to look the store up here).  Called with no awaits after
        admission, so the resolution is atomic under asyncio.
        """
        store = self.service.store
        pending: list[tuple[object, asyncio.Future]] = []
        for spec in self.specs:
            digest = spec.digest
            if digest in restored:
                entry = restored[digest]
                # Restored verbatim (original source preserved) so the
                # final aggregates match an uninterrupted sweep's bytes.
                cell = SweepCell(
                    app=entry.app,
                    policy=entry.policy,
                    seed=entry.seed,
                    n_threads=entry.n_threads,
                    total_cycles=entry.total_cycles,
                    source=entry.source,
                )
                self.cells[digest] = cell
                self.resumed += 1
                METRICS.counter("serve.cells.resumed").inc()
                self._emit(cell_event(
                    cell, key=digest, completed=len(self.cells), total=self.total,
                    replayed=True,
                ))
                continue
            if hits is not None:
                cached = hits.get(digest)
            else:
                cached = store.get(spec) if store is not None else None
            if cached is not None:
                cell = self._cell(spec, total_cycles=cached.total_cycles, source="store")
                self.cells[digest] = cell
                self.store_hits += 1
                METRICS.counter("serve.cells.store_hits").inc()
                self._journal(spec, cell)
                self._emit(cell_event(
                    cell, key=digest, completed=len(self.cells), total=self.total,
                ))
                continue
            coalesced, future = self.service.coalescer.acquire(spec)
            if coalesced:
                self.coalesced += 1
            else:
                self.scheduled += 1
            pending.append((spec, future))
        if not pending:
            # Every cell resolved at submit time (journal replay / warm
            # store): finalize synchronously so the submit response
            # already carries the terminal status and result — a warm
            # client needs exactly one round trip, no task, no stream.
            try:
                self._finalize()
            finally:
                self._close()
            return
        self.task = asyncio.get_running_loop().create_task(
            self._run(pending), name=f"sweep-{self.id[:12]}"
        )

    async def _run(self, pending: list[tuple[object, asyncio.Future]]) -> None:
        try:
            await asyncio.gather(
                *(self._await_cell(spec, future) for spec, future in pending)
            )
        except Exception as exc:  # noqa: BLE001 — a sweep failure must not kill the loop
            self.status = "failed"
            self._emit(status_event({"sweep_id": self.id, "status": "failed",
                                     "error": str(exc)}))
            METRICS.counter("serve.sweeps.failed").inc()
        else:
            self._finalize()
        finally:
            self._close()

    def _finalize(self) -> None:
        if len(self.cells) < self.total:
            # Drained before every cell ran: resumable, not done.
            self.status = "interrupted"
            METRICS.counter("serve.sweeps.interrupted").inc()
        else:
            self.result = self._build_result()
            self.status = "done"
            METRICS.counter("serve.sweeps.completed").inc()
        self.wall_s = time.perf_counter() - self._started
        self._emit(status_event(self.describe()))

    def _close(self) -> None:
        if self.journal is not None:
            self.journal.close()
            self.journal = None
        self.service._sweep_finished(self)

    async def _await_cell(self, spec, future: asyncio.Future) -> None:
        digest = spec.digest
        try:
            outcome = await future
        except RuntimeError as exc:  # engine batch blew up (scheduler resolved us)
            outcome = None
            cell = self._cell(spec, total_cycles=None, source="run", error=str(exc))
            self.cells[digest] = cell
            self._journal(spec, cell)
            self._emit(cell_event(cell, key=digest, completed=len(self.cells),
                                  total=self.total))
            return
        if outcome is None:
            return  # drain sentinel: cell never ran; journal holds the rest
        if outcome.ok:
            cell = self._cell(
                spec, total_cycles=outcome.total_cycles, source="run"
            )
            self.executed += 1
        else:
            cell = self._cell(spec, total_cycles=None, source="run", error=outcome.error)
        self.cells[digest] = cell
        self._journal(spec, cell)
        self._emit(cell_event(cell, key=digest, completed=len(self.cells),
                              total=self.total))

    def _build_result(self) -> SweepResult:
        request = self.request
        cells = [self.cells[spec.digest] for spec in self.specs]
        store = self.service.store
        return SweepResult(
            apps=list(request.apps),
            policies=list(request.policies),
            seeds=list(request.seeds),
            thread_counts=list(request.thread_counts),
            baseline=request.baseline,
            cells=cells,
            engine=self.service.scheduler.engine.name,
            wall_s=time.perf_counter() - self._started,
            simulated=self.executed,
            store_hits=self.store_hits,
            store_stats=store.stats() if store is not None else None,
            failures=[c for c in cells if not c.ok],
            resumed=self.resumed,
        )

    @staticmethod
    def _cell(spec, *, total_cycles, source, error=None) -> SweepCell:
        return SweepCell(
            app=spec.app,
            policy=spec.policy,
            seed=spec.config.seed,
            n_threads=spec.config.n_threads,
            total_cycles=total_cycles,
            source=source,
            error=error,
        )

    def _journal(self, spec, cell: SweepCell) -> None:
        if self.journal is None:
            return
        from repro.exec.journal import JournalEntry

        self.journal.append(JournalEntry(
            key=spec.digest,
            app=cell.app,
            policy=cell.policy,
            seed=cell.seed,
            n_threads=cell.n_threads,
            total_cycles=cell.total_cycles,
            source=cell.source,
            error=cell.error,
        ))


class SweepService:
    """Registry + shared machinery behind the HTTP front-end."""

    def __init__(
        self,
        *,
        engine,
        store: ResultStore | None,
        data_dir: str | Path,
        admission: AdmissionController | None = None,
        batch_size: int | None = None,
        retain: int = 64,
    ) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.data_dir = Path(data_dir)
        self.journal_dir = self.data_dir / "journals"
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        self.store = store
        self.scheduler = EngineScheduler(engine, store, batch_size=batch_size)
        self.coalescer = CellCoalescer(self.scheduler)
        self.admission = admission or AdmissionController(
            workers=lambda: max(getattr(engine, "jobs", 1), 1)
        )
        self.retain = retain
        self._sweeps: "OrderedDict[str, SweepTask]" = OrderedDict()
        self.draining = False
        self._drained = asyncio.Event()
        self._started_at = time.time()
        # Fleet plumbing, attached by the runner when fleet settings are
        # on: the hosted registrar (the engine's membership source) and
        # the autoscaling controller.
        self.registrar = None
        self.fleet = None

    def start(self) -> None:
        """Start the scheduler; call once from inside the event loop."""
        self.scheduler.start()

    # -- submissions ----------------------------------------------------

    def journal_path(self, sweep_id: str) -> Path:
        return self.journal_dir / f"{sweep_id}.jsonl"

    def submit(self, payload: object) -> tuple[int, dict]:
        """Handle ``POST /v1/sweeps``; returns ``(http_status, body)``.

        Synchronous on purpose: the whole resolve/admit/start path runs
        without awaiting, so admission decisions cannot interleave.
        """
        METRICS.counter("serve.requests").inc()
        try:
            request = SweepRequest.from_dict(payload)
        except RequestError as exc:
            return 400, {"error": str(exc)}
        if self.draining:
            return 503, {"error": "service is draining; resubmit after restart"}

        sweep_id = request.sweep_id
        task = self._sweeps.get(sweep_id)
        if task is not None and task.status in ("running", "done"):
            task.clients.add(request.client)
            METRICS.counter("serve.sweeps.attached").inc()
            self._trace(SweepSubmittedEvent(
                sweep_id=sweep_id, client=request.client, cells=task.total,
                attached=True,
            ))
            return 200, {"attached": True, **task.describe()}

        # Resolution plan (read-only): journal of a previous incarnation,
        # store hits, in-flight twins — only the remainder needs capacity.
        restored = {}
        journal_file = self.journal_path(sweep_id)
        if request.resume and journal_file.is_file():
            header, entries, _ = SweepJournal.load(journal_file)
            if header is not None and header.get("grid_digest") == sweep_id:
                restored = {k: e for k, e in entries.items() if e.ok}
        specs = request.specs()
        # One store lookup per cell: the hits found here are handed to
        # task.start() so resolution doesn't read the store again.
        hits: dict[str, object] = {}
        new_cells = 0
        for spec in specs:
            digest = spec.digest
            if digest in restored:
                continue
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                hits[digest] = cached
            elif not self.coalescer.in_flight(digest):
                new_cells += 1
        rejection = self.admission.admit(request.client, new_cells, self.scheduler.backlog)
        if rejection is not None:
            self._trace(SweepRejectedEvent(
                client=request.client, reason=rejection.reason,
                retry_after_s=rejection.retry_after_s,
            ))
            return 429, rejection.to_dict()

        self.admission.register(request.client)
        task = SweepTask(self, request, specs)
        key = request.grid_key()
        if request.resume and restored:
            task.journal = SweepJournal.resume(journal_file, key)
        else:
            # Fresh start — also the recovery path for a journal at this
            # path that failed validation above (corrupt or foreign).
            task.journal = SweepJournal.begin(journal_file, key)
        self._sweeps[sweep_id] = task
        self._sweeps.move_to_end(sweep_id)
        task.start(restored, hits)
        METRICS.counter("serve.sweeps.submitted").inc()
        self._trace(SweepSubmittedEvent(
            sweep_id=sweep_id, client=request.client, cells=task.total,
            resumed=task.resumed, store_hits=task.store_hits,
            coalesced=task.coalesced, scheduled=task.scheduled,
        ))
        return 202, {"attached": False, **task.describe()}

    # -- queries --------------------------------------------------------

    def get(self, sweep_id: str) -> SweepTask | None:
        return self._sweeps.get(sweep_id)

    def archived_status(self, sweep_id: str) -> dict | None:
        """Status for a sweep known only by its on-disk journal (written
        by an earlier incarnation, or evicted from retention)."""
        journal_file = self.journal_path(sweep_id)
        if not journal_file.is_file():
            return None
        header, entries, _ = SweepJournal.load(journal_file)
        if header is None or header.get("grid_digest") != sweep_id:
            return None
        completed = [e for e in entries.values() if e.ok]
        return {
            "sweep_id": sweep_id,
            "status": "archived",
            "completed": len(completed),
            "failures": len(entries) - len(completed),
            "grid": header.get("grid"),
        }

    def archived_events(self, sweep_id: str) -> list[dict] | None:
        """Journal replay for an archived sweep (then the stream ends)."""
        status = self.archived_status(sweep_id)
        if status is None:
            return None
        journal_file = self.journal_path(sweep_id)
        _, entries, _ = SweepJournal.load(journal_file)
        events = [status_event(status)]
        ordered = list(entries.values())
        for done, entry in enumerate(ordered, start=1):
            cell = SweepCell(
                app=entry.app, policy=entry.policy, seed=entry.seed,
                n_threads=entry.n_threads, total_cycles=entry.total_cycles,
                source=entry.source, error=entry.error,
            )
            events.append(cell_event(
                cell, key=entry.key, completed=done, total=len(ordered), replayed=True,
            ))
        events.append(status_event(status))
        return events

    def stats(self) -> dict:
        """The ``GET /v1/stats`` payload: service-level counters plus the
        shared store's hit/miss/stale accounting."""
        snapshot = METRICS.snapshot()["counters"]
        serve = {k: v for k, v in sorted(snapshot.items()) if k.startswith("serve.")}
        return {
            "uptime_s": round(time.time() - self._started_at, 3),
            "draining": self.draining,
            "active_sweeps": sum(
                1 for t in self._sweeps.values() if t.status == "running"
            ),
            "retained_sweeps": len(self._sweeps),
            "backlog": self.scheduler.backlog,
            "in_flight_cells": self.coalescer.in_flight_count,
            "engine": self.scheduler.engine.name,
            "counters": serve,
            "store": self.store.stats() if self.store is not None else None,
            "registrar": (
                None
                if self.registrar is None
                else {
                    "address": list(self.registrar.address),
                    "workers": self.registrar.members(),
                    "registered": self.registrar.registered,
                    "evicted": self.registrar.evicted,
                }
            ),
            "fleet": None if self.fleet is None else self.fleet.describe(),
        }

    # -- lifecycle ------------------------------------------------------

    def _sweep_finished(self, task: SweepTask) -> None:
        self.admission.release(task.request.client)
        # Retention: keep the most recent `retain` finished sweeps for
        # attach/replay; older ones fall back to their on-disk journal.
        finished = [
            sid for sid, t in self._sweeps.items() if t.status != "running"
        ]
        while len(finished) > self.retain:
            self._sweeps.pop(finished.pop(0), None)

    async def drain(self, signame: str = "SIGTERM") -> None:
        """Graceful shutdown: finish in-flight cells, journal them, stop."""
        if self.draining:
            await self._drained.wait()
            return
        self.draining = True
        active = [t for t in self._sweeps.values() if t.status == "running"]
        self._trace(ServeDrainEvent(
            signal=signame, active_sweeps=len(active),
            backlog=self.scheduler.backlog,
        ))
        METRICS.counter("serve.drains").inc()
        await self.scheduler.drain()
        await asyncio.gather(
            *(t.task for t in active if t.task is not None), return_exceptions=True
        )
        # Our writers are stopped: anything still staged is an orphan.
        if self.store is not None:
            self.store.sweep_stale(0.0)
        self._drained.set()

    @staticmethod
    def _trace(event) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(event)
