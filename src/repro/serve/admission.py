"""Admission control: bounded backlog, per-client quotas, backpressure.

The service exists so "heavy traffic from millions of users" degrades
gracefully instead of OOMing the box: every submission is checked here
*before* any cell is enqueued.  Three independent limits:

* **backlog bound** — the scheduler may hold at most ``max_pending_cells``
  cells that are queued or executing.  A submission whose *new* work
  (cells not already resolved by the store, the journal, or an in-flight
  twin) would overflow the bound is rejected.  Coalesced and cached cells
  are free: a fully-warm or fully-duplicate submission is always admitted,
  which is what makes request coalescing an admission-control feature and
  not just a cache optimisation.
* **per-client quota** — at most ``max_sweeps_per_client`` unfinished
  sweeps owned by one client id, so a single runaway tenant cannot starve
  the rest (the LFOC-style fairness concern at service granularity).
* **global sweep cap** — ``max_active_sweeps`` unfinished sweeps total.

A rejection carries a ``retry_after_s`` estimate derived from the live
``exec.job`` timer (mean job cost x backlog / workers, clamped to
[1s, 60s]) — the value of the HTTP 429 ``Retry-After`` header.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import METRICS

__all__ = ["AdmissionController", "Rejection"]


@dataclass(frozen=True)
class Rejection:
    """Why a submission was turned away, and when to try again.

    ``reason`` is the machine-groupable kind (``backlog`` /
    ``client_quota`` / ``sweep_cap``); ``message`` the operator-readable
    sentence."""

    reason: str
    message: str
    retry_after_s: float

    def to_dict(self) -> dict:
        return {
            "error": self.message,
            "reason": self.reason,
            "retry_after_s": self.retry_after_s,
        }


class AdmissionController:
    def __init__(
        self,
        *,
        max_pending_cells: int = 512,
        max_active_sweeps: int = 64,
        max_sweeps_per_client: int = 8,
        workers: int | Callable[[], int] = 1,
    ) -> None:
        if min(max_pending_cells, max_active_sweeps, max_sweeps_per_client) < 1:
            raise ValueError("admission limits must all be >= 1")
        if not callable(workers) and workers < 1:
            raise ValueError("admission limits must all be >= 1")
        self.max_pending_cells = max_pending_cells
        self.max_active_sweeps = max_active_sweeps
        self.max_sweeps_per_client = max_sweeps_per_client
        self._workers = workers
        self._active_by_client: dict[str, int] = {}

    @property
    def workers(self) -> int:
        """The divisor for ``retry_after_s``: a live count when a callable
        was wired (the fleet grows and shrinks under us), else the static
        construction-time int.  Never below 1 — an empty fleet should
        inflate the estimate, not divide by zero."""
        if callable(self._workers):
            try:
                return max(int(self._workers()), 1)
            except Exception:
                return 1
        return self._workers

    # -- accounting ------------------------------------------------------

    @property
    def active_sweeps(self) -> int:
        return sum(self._active_by_client.values())

    def register(self, client: str) -> None:
        """Count a newly admitted sweep against ``client``'s quota."""
        self._active_by_client[client] = self._active_by_client.get(client, 0) + 1
        METRICS.gauge("serve.active_sweeps").set(self.active_sweeps)

    def release(self, client: str) -> None:
        """A sweep owned by ``client`` reached a terminal state."""
        left = self._active_by_client.get(client, 0) - 1
        if left > 0:
            self._active_by_client[client] = left
        else:
            self._active_by_client.pop(client, None)
        METRICS.gauge("serve.active_sweeps").set(self.active_sweeps)

    # -- decisions -------------------------------------------------------

    def retry_after_s(self, backlog: int) -> float:
        """Estimate when capacity frees up: the backlog drained at the
        observed mean job cost across ``workers``, clamped to [1, 60]s so
        a cold timer (no jobs yet) still returns something actionable."""
        mean_s = METRICS.timer("exec.job").mean_s or 0.1
        return max(1.0, min(60.0, backlog * mean_s / self.workers))

    def admit(self, client: str, new_cells: int, backlog: int) -> Rejection | None:
        """Admit or reject a submission wanting ``new_cells`` scheduled
        on top of the scheduler's current ``backlog``.  Returns None when
        admitted (the caller then ``register``-s the sweep)."""
        owned = self._active_by_client.get(client, 0)
        if owned >= self.max_sweeps_per_client:
            return self._reject(
                f"client {client!r} already has {owned} active sweep(s) "
                f"(limit {self.max_sweeps_per_client})",
                backlog,
                "client_quota",
            )
        if self.active_sweeps >= self.max_active_sweeps:
            return self._reject(
                f"{self.active_sweeps} sweeps already active (limit {self.max_active_sweeps})",
                backlog,
                "sweep_cap",
            )
        if new_cells and backlog + new_cells > self.max_pending_cells:
            return self._reject(
                f"scheduling {new_cells} cell(s) would exceed the pending-cell bound "
                f"({backlog} queued, limit {self.max_pending_cells})",
                backlog,
                "backlog",
            )
        return None

    def _reject(self, message: str, backlog: int, kind: str) -> Rejection:
        METRICS.counter("serve.sweeps.rejected").inc()
        METRICS.counter(f"serve.rejected.{kind}").inc()
        return Rejection(
            reason=kind, message=message,
            retry_after_s=round(self.retry_after_s(backlog), 3),
        )
