"""Thin blocking client for the sweep service (stdlib ``http.client``).

Used by ``repro submit``, the tests and
``benchmarks/bench_serve_concurrency.py``.  Deliberately synchronous —
callers that want concurrency run many clients on threads, which is also
exactly the shape the coalescing/admission machinery is built to absorb.

Backpressure is a first-class outcome, not an exception the caller has
to dig out of a response: :meth:`ServeClient.submit` raises
:class:`Backpressure` (carrying ``retry_after_s``) on a 429, and
:meth:`ServeClient.run` turns that into honest retry-with-backoff — the
loop every well-behaved client of this service ends up writing.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator

__all__ = ["Backpressure", "ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An HTTP error response from the service (status + message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class Backpressure(ServeError):
    """HTTP 429: admission control asked us to come back later."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(429, message)
        self.retry_after_s = retry_after_s


class ServeClient:
    """One service endpoint; connections are per-call (the server closes
    them anyway)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, *,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- low-level ------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {"error": data.decode("utf-8", "replace")}
            return response.status, decoded
        finally:
            conn.close()

    # -- API ------------------------------------------------------------

    def healthz(self) -> dict:
        status, body = self._request("GET", "/healthz")
        if status != 200:
            raise ServeError(status, body.get("error", "health check failed"))
        return body

    def stats(self) -> dict:
        status, body = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServeError(status, body.get("error", "stats failed"))
        return body

    def submit(self, request: dict) -> dict:
        """POST the sweep; returns the submission body (``sweep_id``,
        ``attached``, resolution counts).  Raises :class:`Backpressure`
        on 429 and :class:`ServeError` on any other error."""
        status, body = self._request("POST", "/v1/sweeps", request)
        if status == 429:
            raise Backpressure(
                body.get("reason", "backpressure"),
                float(body.get("retry_after_s", 1.0)),
            )
        if status not in (200, 202):
            raise ServeError(status, body.get("error", "submission failed"))
        return body

    def status(self, sweep_id: str) -> dict:
        status, body = self._request("GET", f"/v1/sweeps/{sweep_id}")
        if status != 200:
            raise ServeError(status, body.get("error", f"unknown sweep {sweep_id}"))
        return body

    def events(self, sweep_id: str) -> Iterator[dict]:
        """Stream ``GET /v1/sweeps/<id>/events``: yields each NDJSON
        record; ends when the server closes the stream (terminal status
        or archived replay exhausted)."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/sweeps/{sweep_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                data = response.read()
                try:
                    message = json.loads(data).get("error", "stream failed")
                except (json.JSONDecodeError, AttributeError):
                    message = "stream failed"
                raise ServeError(response.status, message)
            buffer = b""
            while True:
                read1 = getattr(response, "read1", None)
                chunk = read1(65536) if read1 is not None else response.read(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()

    def wait(self, sweep_id: str, *, poll_s: float = 0.1) -> dict:
        """Follow the event stream until the sweep reaches a terminal
        status, then return the final status payload."""
        while True:
            terminal = None
            for event in self.events(sweep_id):
                if event.get("event") == "status" and event.get("status") != "running":
                    terminal = event
            if terminal is not None:
                return self.status(sweep_id)
            # Stream ended without a terminal status (e.g. drain race):
            # re-check, and re-attach if still running.
            current = self.status(sweep_id)
            if current.get("status") != "running":
                return current
            time.sleep(poll_s)

    def run(self, request: dict, *, max_attempts: int = 60) -> dict:
        """Submit-with-backoff, then wait: the whole client-side loop.

        Retries 429s honoring ``retry_after_s``; returns the terminal
        status payload (with ``result`` when the sweep completed)."""
        for attempt in range(max_attempts):
            try:
                submission = self.submit(request)
                break
            except Backpressure as exc:
                if attempt == max_attempts - 1:
                    raise
                time.sleep(min(exc.retry_after_s, 5.0))
        if submission.get("status") != "running":
            # Resolved at submit time (warm store, journal replay, or an
            # attach to a finished sweep): no stream needed.
            return submission
        return self.wait(submission["sweep_id"])
