"""Service lifecycle: settings, event loop, signals, test harness.

``run_server`` is what ``repro serve`` calls: build the engine/store
stack from :class:`ServeSettings`, run :func:`serve_forever` until a
signal (or the ``stop`` event in tests) begins the drain, and exit 0 on
a clean drain — the same contract ``repro sweep`` has under SIGTERM
(PR 5): in-flight work finishes and is journaled, queued work is
released for a later resume, the warm pool shuts down.

``start_in_thread`` runs the whole service on a daemon thread with its
own event loop — the harness the in-process tests and the concurrency
benchmark use, so they exercise the real HTTP path without subprocesses.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.exec.engine import SerialEngine
from repro.exec.pool import ProcessPoolEngine
from repro.exec.store import ResultStore
from repro.obs.metrics import METRICS
from repro.prep import configure_prep
from repro.serve.admission import AdmissionController
from repro.serve.http import start_http_server
from repro.serve.protocol import DEFAULT_PORT
from repro.serve.service import SweepService

__all__ = ["ServeSettings", "ServerHandle", "run_server", "serve_forever", "start_in_thread"]

_SIGNALS = ("SIGINT", "SIGTERM")


@dataclass
class ServeSettings:
    """Everything ``repro serve`` configures, defaults matching the CLI."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    data_dir: Path = field(default_factory=lambda: Path("serve-data"))
    jobs: int = 1
    engine: str | None = None  # serial | pool | remote; None = infer
    workers: list[tuple[str, int]] | None = None  # remote fleet addresses
    cache_dir: Path | None = None  # default: <data_dir>/store
    prep_dir: Path | None = None
    max_pending_cells: int = 512
    max_active_sweeps: int = 64
    max_sweeps_per_client: int = 8
    batch_size: int | None = None
    retain: int = 64
    port_file: Path | None = None
    registrar_port: int | None = None  # host a FleetRegistrar on this port
    registrar_port_file: Path | None = None
    fleet_min: int = 0
    fleet_max: int = 0  # > 0 enables the autoscaling controller
    fleet_poll_s: float = 1.0
    store_shards: int = 1
    fleet_launcher: object | None = None  # test seam; default SubprocessLauncher

    def resolved_cache_dir(self) -> Path:
        return Path(self.cache_dir) if self.cache_dir else Path(self.data_dir) / "store"

    @property
    def fleet_enabled(self) -> bool:
        return self.registrar_port is not None or self.fleet_max > 0


def _build_engine(settings: ServeSettings, registrar=None):
    """Engine selection, mirroring the batch CLI: an explicit ``engine``
    wins, otherwise ``workers`` (or a hosted registrar) implies remote
    and ``jobs > 1`` a pool."""
    name = settings.engine or (
        "remote"
        if (settings.workers or registrar is not None)
        else "pool" if settings.jobs > 1 else "serial"
    )
    if name == "remote":
        if not settings.workers and registrar is None:
            raise ValueError("engine 'remote' requires worker addresses")
        from repro.dist import RemoteEngine

        return RemoteEngine(settings.workers or (), membership=registrar)
    if name == "pool":
        return ProcessPoolEngine(settings.jobs)
    return SerialEngine()


def build_service(settings: ServeSettings) -> SweepService:
    """Assemble the engine/store/admission stack behind one service.

    With fleet settings this also hosts the registrar (the engine's
    membership source, in-process) and constructs — but does not start —
    the autoscaling controller; :func:`serve_forever` owns both
    lifecycles, and :meth:`SweepService.stats` surfaces both.
    """
    registrar = None
    if settings.fleet_enabled:
        from repro.fleet import FleetRegistrar

        registrar = FleetRegistrar(
            settings.host, settings.registrar_port or 0
        ).start()
    engine = _build_engine(settings, registrar)
    backend = None
    if settings.store_shards > 1:
        from repro.exec.backend import ShardedBackend

        backend = ShardedBackend.local(settings.resolved_cache_dir(), settings.store_shards)
    store = ResultStore(settings.resolved_cache_dir(), backend=backend)
    if settings.prep_dir is not None:
        configure_prep(settings.prep_dir)
    # A callable keeps Retry-After honest while the fleet autoscales;
    # getattr freshness matters because RemoteEngine.jobs is live.
    live_workers = lambda: max(getattr(engine, "jobs", 1), 1)  # noqa: E731
    admission = AdmissionController(
        max_pending_cells=settings.max_pending_cells,
        max_active_sweeps=settings.max_active_sweeps,
        max_sweeps_per_client=settings.max_sweeps_per_client,
        workers=live_workers,
    )
    service = SweepService(
        engine=engine,
        store=store,
        data_dir=settings.data_dir,
        admission=admission,
        batch_size=settings.batch_size,
        retain=settings.retain,
    )
    service.registrar = registrar
    if settings.fleet_max > 0:
        from repro.fleet import FleetController, SubprocessLauncher

        launcher = settings.fleet_launcher
        if launcher is None:
            launcher = SubprocessLauncher(
                registrar=registrar.address, prep_dir=settings.prep_dir
            )
        service.fleet = FleetController(
            launcher,
            min_workers=settings.fleet_min,
            max_workers=settings.fleet_max,
            poll_s=settings.fleet_poll_s,
        )
    return service


async def serve_forever(
    settings: ServeSettings,
    *,
    ready: "threading.Event | None" = None,
    stop: asyncio.Event | None = None,
) -> None:
    """Run the service until a signal (or ``stop``) triggers the drain.

    ``ready`` (a *threading* event — it is set from inside the loop but
    awaited from another thread) fires once the socket is bound and the
    port file, if any, is written.  ``stop`` lets tests drive shutdown
    without signals.
    """
    service = build_service(settings)
    service.start()
    server = await start_http_server(service, settings.host, settings.port)
    bound_port = server.sockets[0].getsockname()[1]
    settings.port = bound_port  # report back when port=0 picked a free one
    if settings.port_file is not None:
        port_file = Path(settings.port_file)
        port_file.parent.mkdir(parents=True, exist_ok=True)
        port_file.write_text(f"{bound_port}\n", encoding="utf-8")
    print(f"serve: listening on http://{settings.host}:{bound_port}", flush=True)
    if service.registrar is not None:
        reg_port = service.registrar.address[1]
        if settings.registrar_port_file is not None:
            reg_file = Path(settings.registrar_port_file)
            reg_file.parent.mkdir(parents=True, exist_ok=True)
            reg_file.write_text(f"{reg_port}\n", encoding="utf-8")
        print(f"serve: registrar on {settings.host}:{reg_port}", flush=True)
    if service.fleet is not None:
        service.fleet.start()
        print(
            f"serve: autoscaling fleet [{service.fleet.min_workers}, "
            f"{service.fleet.max_workers}]",
            flush=True,
        )

    loop = asyncio.get_running_loop()
    stop = stop or asyncio.Event()
    got_signal: list[str] = []

    def _on_signal(name: str) -> None:
        if not got_signal:  # second signal: still drain, never abort
            got_signal.append(name)
            stop.set()

    installed: list[int] = []
    for name in _SIGNALS:
        signum = getattr(signal, name)
        try:
            loop.add_signal_handler(signum, _on_signal, name)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread (start_in_thread): tests use `stop`
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
        signame = got_signal[0] if got_signal else "stop"
        print(f"serve: draining ({signame})", flush=True)
        server.close()
        await server.wait_closed()
        # Drain before stopping the fleet: in-flight batches may still
        # need the workers.  The engine tolerates losses either way.
        await service.drain(signame)
        if service.fleet is not None:
            await asyncio.get_running_loop().run_in_executor(None, service.fleet.stop)
        if service.registrar is not None:
            service.registrar.stop()
        METRICS.counter("serve.clean_exits").inc()
        print("serve: drained cleanly", flush=True)
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def run_server(settings: ServeSettings) -> int:
    """Blocking entry point for ``repro serve``; returns the exit code."""
    try:
        asyncio.run(serve_forever(settings))
    except KeyboardInterrupt:
        # SIGINT raced the handler installation; nothing was in flight.
        return 0
    return 0


class ServerHandle:
    """A service running on a daemon thread (tests and benchmarks)."""

    def __init__(self, settings: ServeSettings) -> None:
        self.settings = settings
        self._ready = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._main, name="repro-serve", daemon=True)

    @property
    def port(self) -> int:
        return self.settings.port

    @property
    def base_url(self) -> str:
        return f"http://{self.settings.host}:{self.settings.port}"

    def _main(self) -> None:
        async def _serve() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await serve_forever(self.settings, ready=self._ready, stop=self._stop)

        asyncio.run(_serve())

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread did not become ready")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Trigger the drain and join the thread (clean shutdown)."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve thread did not drain in time")

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(settings: ServeSettings) -> ServerHandle:
    """Start a service on a daemon thread; returns the started handle."""
    return ServerHandle(settings).start()
