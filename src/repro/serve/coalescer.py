"""Request coalescing: one execution per content-addressed cell.

The store already dedupes across *time* (a digest computed once is never
recomputed); the coalescer dedupes across *concurrent* clients: every
cell in flight is registered here under its
:attr:`~repro.exec.jobs.JobSpec.digest`, and a second sweep wanting the
same digest attaches to the existing future instead of scheduling a
twin.  Together the two make overlapping submissions from N clients cost
exactly one simulation per distinct cell — the Com-CAS daemon shape,
with content addressing doing the request matching for free.

Purely single-threaded asyncio state: every method must be called from
the event-loop thread (the scheduler delivers outcomes back onto the
loop via ``call_soon_threadsafe``).
"""

from __future__ import annotations

import asyncio

from repro.exec.jobs import JobSpec
from repro.obs.metrics import METRICS

__all__ = ["CellCoalescer"]


class CellCoalescer:
    """Digest -> in-flight future registry over an
    :class:`~repro.serve.scheduler.EngineScheduler`."""

    def __init__(self, scheduler) -> None:
        self._scheduler = scheduler
        self._in_flight: dict[str, asyncio.Future] = {}
        self.coalesced = 0
        self.scheduled = 0

    def in_flight(self, digest: str) -> bool:
        fut = self._in_flight.get(digest)
        return fut is not None and not fut.done()

    @property
    def in_flight_count(self) -> int:
        return sum(1 for f in self._in_flight.values() if not f.done())

    def acquire(self, spec: JobSpec) -> tuple[bool, asyncio.Future]:
        """Return ``(coalesced, future)`` for ``spec``'s outcome.

        ``coalesced`` is True when the cell was already executing for
        another sweep; otherwise the cell is enqueued on the scheduler
        and a fresh future is registered.  The future resolves to the
        cell's :class:`~repro.exec.jobs.JobOutcome` — or to ``None`` if
        the service drained before the cell was dispatched.
        """
        fut = self._in_flight.get(spec.digest)
        if fut is not None and not fut.done():
            self.coalesced += 1
            METRICS.counter("serve.cells.coalesced").inc()
            return True, fut
        fut = asyncio.get_running_loop().create_future()
        self._in_flight[spec.digest] = fut
        fut.add_done_callback(self._make_reaper(spec.digest))
        self.scheduled += 1
        METRICS.counter("serve.cells.scheduled").inc()
        self._scheduler.submit(spec, fut)
        return False, fut

    def _make_reaper(self, digest: str):
        def _reap(fut: asyncio.Future) -> None:
            # Only evict our own registration: a later acquire() of the
            # same digest (e.g. a failed cell being re-attempted) may
            # have replaced it with a fresh future.
            if self._in_flight.get(digest) is fut:
                del self._in_flight[digest]

        return _reap
