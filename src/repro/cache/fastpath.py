"""Vectorized L2 replay kernel: the ``"fast"`` cache backend.

:class:`~repro.cache.shared.PartitionedSharedCache` is written for
fidelity to the paper's Section V mechanism: nested per-set lists, one
``access()`` method call per L2 reference, per-way Python scans on every
replacement.  Every figure replays hundreds of thousands of accesses
through it, so it dominates the wall-clock of policy sweeps.

This module provides a behavioural twin engineered for speed:

* :class:`FastPartitionedSharedCache` — the same replacement-control
  mechanism on a **struct-of-arrays** layout:

  - flat ``tags`` / ``owner`` / ``last`` / ``lru-stamp`` slot arrays of
    length ``sets x ways`` (slot ``j = set * ways + way``) instead of
    nested per-set lists;
  - one **global line map** ``line -> slot`` where
    ``line = addr >> offset_bits`` already concatenates (tag, set), so a
    lookup costs a single dict probe and the set index is only
    decomposed on misses;
  - per ``(set, owner)`` **recency queues** (`OrderedDict`, oldest
    first) plus a per-slot back-pointer to the queue holding the slot,
    maintained in O(1) per access.  They turn every victim choice —
    own-LRU, over-target-LRU, global-LRU — into a handful of O(1)
    oldest-entry peeks instead of O(ways) Python scans, and the queue
    length doubles as the Section V current-assignment counter.

* :func:`replay` — a fused replay kernel used by
  :class:`repro.cpu.engine.CMPEngine` when the L2 is a fast cache.  It
  batch-precomputes each section stream's line indices, counter bases
  and hit/miss access costs with NumPy (one vector shift/mask/add per
  stream instead of two shifts, a mask and a float add per access), then
  drives a **specialised kernel** generated for the concrete
  ``(n_threads, enforce_partition)`` pair: per-thread clocks, cursors,
  stream lists and statistics counters become scalar fast-locals, the
  thread scheduler becomes an unrolled comparison chain, and the victim
  peeks are unrolled over the thread count.  Generated kernels are
  compiled once and cached for the life of the process.

Equivalence contract
--------------------
The fast backend must be **byte-identical** to the reference: same hits,
same victims, same per-thread :class:`~repro.cache.stats.CacheStats`,
same interval records, same floats in ``RunResult.to_dict()``.  Floating
point makes this stricter than "same algorithm": the kernel performs the
same IEEE-754 operations on the same operands in the same order as the
reference engine.  Elementwise hoists are allowed (``d_cycles[i] +
miss_cycles[i]`` becomes one NumPy vector add because float64 addition
rounds identically), accumulation-order changes are not.  LRU stamps are
unique (one global clock tick per access), so every oldest-entry peek
resolves to exactly the slot the reference's first-minimal-stamp way
scan would pick, and the scheduler chain picks exactly the reference's
lowest-index minimum-clock thread (see :func:`_kernel_source`).
``tests/test_cache_differential.py`` enforces the contract across apps x
policies x seeds x geometries; any observable divergence is a bug in
this module, never an accepted tolerance.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.shared import PartitionedSharedCache
from repro.cache.stats import CacheStats
from repro.core.records import IntervalObservation, IntervalRecord, RunResult
from repro.obs.events import ConvergenceEvent
from repro.sync.barrier import BarrierLog

__all__ = ["CACHE_BACKENDS", "FastPartitionedSharedCache", "make_shared_cache", "replay"]

_INVALID = -1


class FastPartitionedSharedCache:
    """Struct-of-arrays twin of :class:`PartitionedSharedCache`.

    Drop-in: constructor signature, public attributes and every public
    method match the reference class, and all of them produce identical
    values for identical access histories.  See the module docstring for
    the layout; the paper-facing semantics (Section V replacement
    control, gradual repartitioning, cross-partition hits) are
    documented on the reference class.
    """

    #: Checked by :class:`repro.cpu.engine.CMPEngine` to select :func:`replay`.
    supports_replay_kernel = True
    backend = "fast"

    def __init__(
        self,
        geometry: CacheGeometry,
        n_threads: int,
        *,
        enforce_partition: bool = True,
        targets: list[int] | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if enforce_partition and geometry.ways < n_threads:
            raise ValueError(
                f"cannot partition {geometry.ways} ways among {n_threads} threads "
                "with at least one way each"
            )
        self.geometry = geometry
        self.n_threads = n_threads
        self.enforce_partition = enforce_partition
        self.stats = CacheStats(n_threads)

        sets, ways = geometry.sets, geometry.ways
        self._offset_bits = geometry.offset_bits
        self._index_bits = geometry.index_bits
        self._set_mask = sets - 1
        # line -> slot, where line = addr >> offset_bits (tag and set
        # concatenated, so one dict serves every set).
        self._lines: dict[int, int] = {}
        self._tags: list[int] = [_INVALID] * (sets * ways)  # holds *lines*
        self._owner: list[int] = [_INVALID] * (sets * ways)
        self._last: list[int] = [_INVALID] * (sets * ways)
        self._stamp: list[int] = [0] * (sets * ways)
        # Recency queues, slot -> None, oldest first.  With partition
        # enforcement there is one queue per (set, owner) — its length
        # doubles as the Section V current-assignment counter and every
        # victim rule reduces to O(1) oldest peeks over the set's queues.
        # Without enforcement (global LRU) a single queue per set is the
        # whole replacement state, and a flat counter array keeps the
        # per-owner occupancy the introspection APIs report.
        if enforce_partition:
            self._lru: list[OrderedDict[int, None]] = [
                OrderedDict() for _ in range(sets * n_threads)
            ]
            self._count: list[int] | None = None
        else:
            self._lru = [OrderedDict() for _ in range(sets)]
            self._count = [0] * (sets * n_threads)
        # Back-pointer: the queue currently holding each valid slot
        # (always lru[set * n + owner[j]]; cached so the hit path does a
        # single list load instead of recomputing the queue index).
        self._queue_of: list[OrderedDict[int, None] | None] = [None] * (sets * ways)
        self._filled: list[int] = [0] * sets
        self._clock = 0

        self.targets: list[int] = [0] * n_threads
        if targets is None:
            targets = self._equal_targets()
        self.set_targets(targets)

    # ------------------------------------------------------------------
    # Partition control — identical semantics to the reference class.
    # ------------------------------------------------------------------
    def _equal_targets(self) -> list[int]:
        base, extra = divmod(self.geometry.ways, self.n_threads)
        return [base + (1 if t < extra else 0) for t in range(self.n_threads)]

    def set_targets(self, targets: list[int]) -> None:
        """Install new target way assignments (takes effect gradually).

        Mutates ``self.targets`` in place: the replay kernel holds a
        local reference to the list across the whole run.
        """
        targets = [int(v) for v in targets]
        if len(targets) != self.n_threads:
            raise ValueError(f"need {self.n_threads} targets, got {len(targets)}")
        if any(v < 0 for v in targets):
            raise ValueError(f"targets must be non-negative, got {targets}")
        if sum(targets) != self.geometry.ways:
            raise ValueError(
                f"targets must sum to {self.geometry.ways} ways, got {targets} (sum {sum(targets)})"
            )
        self.targets[:] = targets

    # ------------------------------------------------------------------
    # Hot path (standalone form; CMPEngine replays bypass it via `replay`)
    # ------------------------------------------------------------------
    def access(self, thread: int, addr: int) -> bool:
        """Access one byte address on behalf of ``thread``; True on hit.

        Behaviourally identical to the reference ``access``; kept as a
        real method so non-fused drivers (the multi-app engine, property
        tests, interactive use) can treat both backends uniformly.
        """
        line = addr >> self._offset_bits
        stats = self.stats
        stats.accesses[thread] += 1
        self._clock += 1
        j = self._lines.get(line)
        if j is not None:
            stats.hits[thread] += 1
            last = self._last
            if last[j] != thread:
                stats.inter_thread_hits[thread] += 1
                last[j] = thread
            else:
                stats.intra_thread_hits[thread] += 1
            self._stamp[j] = self._clock
            self._queue_of[j].move_to_end(j)
            return True

        stats.misses[thread] += 1
        self._fill(thread, line)
        return False

    def _fill(self, thread: int, line: int) -> None:
        ways = self.geometry.ways
        s = line & self._set_mask
        cb = s * self.n_threads
        tags = self._tags

        count = self._count
        if self._filled[s] < ways:
            # Cold fill: first invalid slot of the set, no eviction.
            base = s * ways
            j = tags.index(_INVALID, base, base + ways)
            self._filled[s] += 1
        else:
            j, victim_queue = self._choose_victim(thread, cb, s)
            self.stats.evictions[thread] += 1
            if self._last[j] != thread:
                self.stats.inter_thread_evictions[thread] += 1
            del self._lines[tags[j]]
            del victim_queue[j]
            if count is not None:
                count[cb + self._owner[j]] -= 1

        tags[j] = line
        self._owner[j] = thread
        self._last[j] = thread
        self._stamp[j] = self._clock
        self._lines[line] = j
        queue = self._lru[cb + thread] if count is None else self._lru[s]
        queue[j] = None
        self._queue_of[j] = queue
        if count is not None:
            count[cb + thread] += 1

    def _choose_victim(self, thread: int, cb: int, s: int) -> tuple[int, OrderedDict]:
        """Victim slot plus the recency queue holding it.

        O(1) oldest-entry peeks.  LRU stamps are globally unique, so the
        minimum-stamp entry among the peeked candidates is exactly the
        slot the reference's way-order scan would return — no tie-break
        cases exist.
        """
        lru = self._lru
        if not self.enforce_partition:
            # Global LRU: the set's single queue is the recency order.
            queue = lru[s]
            return next(iter(queue)), queue
        n = self.n_threads
        stamp = self._stamp
        targets = self.targets
        own = lru[cb + thread]
        if len(own) < targets[thread]:
            # Under target: oldest line among over-target owners.
            best = -1
            best_stamp = None
            best_queue = own
            for o in range(n):
                queue = lru[cb + o]
                if len(queue) > targets[o]:
                    cj = next(iter(queue))
                    st = stamp[cj]
                    if best_stamp is None or st < best_stamp:
                        best, best_stamp, best_queue = cj, st, queue
            if best >= 0:
                return best, best_queue
            # Unreachable when counts and targets both sum to `ways`
            # on a full set, but fall through to own-LRU defensively.
        if own:
            # At or over target (or no over-target victim): own LRU.
            return next(iter(own)), own
        # The thread owns nothing here (possible when its target is 0).
        # Eviction control still applies: prefer the oldest line among
        # over-target owners so under-target threads keep their lines,
        # then fall back to global LRU over every owner's queue.
        for guarded in (True, False):
            best = -1
            best_stamp = None
            best_queue = None
            for o in range(n):
                queue = lru[cb + o]
                if queue and (not guarded or len(queue) > targets[o]):
                    cj = next(iter(queue))
                    st = stamp[cj]
                    if best_stamp is None or st < best_stamp:
                        best, best_stamp, best_queue = cj, st, queue
            if best >= 0:
                return best, best_queue
        return best, best_queue

    # ------------------------------------------------------------------
    # Introspection — same outputs as the reference class.
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        return (addr >> self._offset_bits) in self._lines

    def owner_of(self, addr: int) -> int | None:
        """Thread that inserted the line holding ``addr``, or None."""
        j = self._lines.get(addr >> self._offset_bits)
        return None if j is None else self._owner[j]

    def occupancy(self) -> list[int]:
        """Total lines currently held per thread, across all sets."""
        n = self.n_threads
        totals = [0] * n
        if self._count is None:
            for i, queue in enumerate(self._lru):
                totals[i % n] += len(queue)
        else:
            for i, c in enumerate(self._count):
                totals[i % n] += c
        return totals

    def set_occupancy(self, s: int) -> list[int]:
        """Per-thread way counts of one set (the Section V counters)."""
        n = self.n_threads
        if self._count is None:
            return [len(self._lru[s * n + t]) for t in range(n)]
        return self._count[s * n : s * n + n]

    def partition_distance(self) -> dict:
        """Misplaced-way distance to the target partition.

        Must match :meth:`PartitionedSharedCache.partition_distance` to
        the bit: sets are visited in order and the mean uses the same
        single float division, so the ``convergence`` telemetry events
        emitted during fast replays are identical to reference ones.
        """
        targets = self.targets
        n = self.n_threads
        total = 0
        worst = 0
        converged = 0
        if self._count is None:
            counts = [len(q) for q in self._lru]
        else:
            counts = self._count
        for cb in range(0, len(counts), n):
            d = 0
            for t in range(n):
                over = counts[cb + t] - targets[t]
                if over > 0:
                    d += over
            total += d
            if d > worst:
                worst = d
            if d == 0:
                converged += 1
        sets = self.geometry.sets
        return {
            "mean_distance": total / sets,
            "max_distance": worst,
            "converged_sets": converged,
            "total_sets": sets,
        }

    def check_invariants(self) -> None:
        """Assert internal consistency; used by property-based tests.

        Beyond the reference checks (line map mirrors the tag array,
        owner counters consistent, filled counters exact), also asserts
        that every recency queue lists exactly its owner's slots in
        strictly increasing stamp order and that every valid slot's
        queue back-pointer names the queue that holds it — the
        properties that make the O(1) victim peeks equivalent to the
        reference's LRU scans.
        """
        sets, ways = self.geometry.sets, self.geometry.ways
        n = self.n_threads
        total_valid = 0
        for s in range(sets):
            base = s * ways
            valid = [j for j in range(base, base + ways) if self._tags[j] != _INVALID]
            total_valid += len(valid)
            assert len(valid) == self._filled[s], f"set {s}: filled counter mismatch"
            recount = [0] * n
            for j in valid:
                line = self._tags[j]
                assert line & self._set_mask == s, f"set {s} slot {j}: line in wrong set"
                assert self._lines.get(line) == j, f"set {s} slot {j}: line map mismatch"
                o = self._owner[j]
                assert 0 <= o < n, f"set {s} slot {j}: bad owner"
                recount[o] += 1
            if self._count is None:
                for t in range(n):
                    queue = self._lru[s * n + t]
                    assert len(queue) == recount[t], f"set {s} thread {t}: queue length mismatch"
                    stamps = [self._stamp[j] for j in queue]
                    assert stamps == sorted(stamps), (
                        f"set {s} thread {t}: queue out of LRU order"
                    )
                    for j in queue:
                        assert self._owner[j] == t, (
                            f"set {s} thread {t}: queue holds foreign slot"
                        )
                        assert self._queue_of[j] is queue, (
                            f"set {s} thread {t}: stale queue back-pointer"
                        )
            else:
                # No stamp-order check: the per-set queue's insertion
                # order IS the recency order (the replay kernel skips
                # stamp upkeep entirely in this mode).
                queue = self._lru[s]
                assert len(queue) == len(valid), f"set {s}: queue length mismatch"
                for j in queue:
                    assert self._queue_of[j] is queue, f"set {s}: stale queue back-pointer"
                for t in range(n):
                    assert self._count[s * n + t] == recount[t], (
                        f"set {s} thread {t}: occupancy counter mismatch"
                    )
        assert len(self._lines) == total_valid, "line map size mismatch"

    def flush(self) -> None:
        """Invalidate all lines (used between independent experiments)."""
        sets, ways = self.geometry.sets, self.geometry.ways
        size = sets * ways
        self._lines.clear()
        self._tags[:] = [_INVALID] * size
        self._owner[:] = [_INVALID] * size
        self._last[:] = [_INVALID] * size
        self._stamp[:] = [0] * size
        self._queue_of[:] = [None] * size
        for queue in self._lru:
            queue.clear()
        if self._count is not None:
            self._count[:] = [0] * (sets * self.n_threads)
        self._filled[:] = [0] * sets


#: Registry of selectable shared-cache implementations
#: (``SystemConfig.cache_backend`` / ``--cache-backend``).  ``"batch"``
#: is only *batched* when the exec-layer planner groups >= 2 cells onto
#: one prepared program (see :mod:`repro.exec.batch`); a solo run with
#: the batch backend is a 1-lane batch, which by design replays through
#: the non-batched fastpath kernel — stacking state for one lane buys
#: nothing — and is counted by the ``batch.fallback`` metric.
CACHE_BACKENDS = {
    "reference": PartitionedSharedCache,
    "fast": FastPartitionedSharedCache,
    "batch": FastPartitionedSharedCache,
}


def make_shared_cache(
    geometry: CacheGeometry,
    n_threads: int,
    *,
    backend: str = "fast",
    enforce_partition: bool = True,
    targets: list[int] | None = None,
):
    """Build the shared L2 for the selected backend.

    ``backend`` is ``"fast"`` (struct-of-arrays + fused replay kernel,
    the default), ``"reference"`` (the readable per-set implementation
    the differential harness treats as ground truth), or ``"batch"``
    (multi-lane replay when cells share a prepared program; identical
    to ``"fast"`` for a single cell).
    """
    try:
        cls = CACHE_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {backend!r}; known: {', '.join(sorted(CACHE_BACKENDS))}"
        ) from None
    if backend == "batch":
        from repro.obs.metrics import METRICS

        METRICS.counter("batch.fallback").inc()
    return cls(
        geometry, n_threads, enforce_partition=enforce_partition, targets=targets
    )


# ----------------------------------------------------------------------
# Specialised kernel generation
# ----------------------------------------------------------------------

_KERNELS: dict[tuple[int, bool], object] = {}

#: One-slot memo of prepared replay streams: [key, compiled-program ref,
#: {section index: streams}].  Holding the program pins its id() (the
#: key) while cached; bounding the cache to one program keeps memory
#: proportional to a single app even across long sweeps.
_PREP_CACHE: list = [None, None, {}]


def _peek_block(
    indent: str, t: int, n: int, *, guarded: bool, skip_own: bool, own_alias: bool
) -> list[str]:
    """Unrolled oldest-entry peeks over the per-owner queues of one set.

    ``guarded=True`` emits the Section V over-target filter
    (``len(queue) > targets[o]``); otherwise any non-empty queue is a
    candidate (global LRU).  ``skip_own`` drops owner ``t`` from the
    scan — used by the over-target pass, where the requesting thread is
    under target and therefore can never be over it.  ``own_alias``
    reuses the already-bound ``own`` local for owner ``t``'s queue
    (only available in enforce-partition kernels).
    """
    lines = [f"{indent}bs = None"]
    for o in range(n):
        if skip_own and o == t:
            continue
        if o == t and own_alias:
            q = "own"
        else:
            q = f"lru[cb + {o}]" if o else "lru[cb]"
        cond = f"len(q_) > targets[{o}]" if guarded else "q_"
        lines += [
            f"{indent}q_ = {q}",
            f"{indent}if {cond}:",
            f"{indent}    cj = next(iter(q_))",
            f"{indent}    st = stamp[cj]",
            f"{indent}    if bs is None or st < bs:",
            f"{indent}        j = cj; bs = st; vq = q_",
        ]
    return lines


def _sync_block(indent: str, n: int, clk_expr: str) -> list[str]:
    """Write scalar state back, fire the interval tick, reload clocks.

    Busy cycles are derived, not accumulated: every event charges clock
    and busy identically except barriers, which advance only the clock
    and book the difference as stall — so ``busy == clock - stall`` at
    all times.  All cycle quantities are integer-valued floats (< 2^53),
    making the subtraction exact, so the derived value is bit-identical
    to the reference's accumulated one while the per-access hot path
    saves one float add.

    The tick may install new targets and charge reconfiguration overhead
    to every running thread's clock and busy (stall untouched, so the
    identity is preserved); clocks are reloaded afterwards.  Done
    threads keep their sentinel clock; their real values were written
    when they finished.
    """
    lines = []
    for t in range(n):
        lines.append(f"{indent}if not d{t}: clock[{t}] = c{t}; busy[{t}] = c{t} - st{t}")
    lines.append(
        f"{indent}" + "; ".join(f"instr[{t}] = ib{t} + cum{t}[i{t}]" for t in range(n))
    )
    for t in range(n):
        lines.append(
            f"{indent}miss_l[{t}] = mis{t}; evict_l[{t}] = evt{t}; "
            f"ith_l[{t}] = ith{t}; ite_l[{t}] = ite{t}; inh_l[{t}] = inh{t}"
        )
    running = ", ".join(f"not d{t}" for t in range(n))
    lines.append(f"{indent}next_tick = fire(({running},), {clk_expr})")
    for t in range(n):
        lines.append(f"{indent}if not d{t}: c{t} = clock[{t}]")
    return lines


def _thread_body(t: int, n: int, enforce: bool, clk_expr: str, indent: str) -> list[str]:
    """One scheduler-leaf body: thread ``t`` finishes its section or
    issues exactly one L2 access, mirroring the reference loop step."""
    p = indent
    body = [
        f"{p}if i{t} >= n{t}:",
        f"{p}    c{t} += tc{t}",
        f"{p}    ib{t} += ti{t}",
        f"{p}    tot += ti{t}",
        f"{p}    clock[{t}] = c{t}",
        f"{p}    busy[{t}] = c{t} - st{t}",
        f"{p}    arrivals[{t}] = c{t}",
        f"{p}    d{t} = True",
        f"{p}    active -= 1",
        f"{p}    c{t} = INF",
        f"{p}    if tot >= next_tick:",
        *_sync_block(p + " " * 8, n, clk_expr),
        f"{p}    continue",
        f"{p}line = line{t}[i{t}]",
    ]
    if enforce:
        body.append(f"{p}clk += 1")
    body += [
        f"{p}j = gget(line)",
        f"{p}if j is not None:",
        f"{p}    if last[j] != {t}:",
        f"{p}        ith{t} += 1",
        f"{p}        last[j] = {t}",
        f"{p}    else:",
        f"{p}        inh{t} += 1",
    ]
    if enforce:
        body.append(f"{p}    stamp[j] = clk")
    body += [
        f"{p}    qref[j].move_to_end(j)",
        f"{p}    c{t} += dch{t}[i{t}]",
        f"{p}else:",
        f"{p}    mis{t} += 1",
        f"{p}    s = line & set_mask",
    ]
    v = p + " " * 8
    if enforce:
        body += [
            f"{p}    cb = s * {n}",
            f"{p}    own = lru[cb + {t}]" if t else f"{p}    own = lru[cb]",
            f"{p}    if filled[s] < ways:",
            f"{p}        base = s * ways",
            f"{p}        j = tags.index(INV, base, base + ways)",
            f"{p}        filled[s] += 1",
            f"{p}    else:",
            # Common case first: at/over target with own lines → own LRU.
            f"{v}if own and len(own) >= targets[{t}]:",
            f"{v}    j = next(iter(own)); vq = own",
            f"{v}else:",
            f"{v}    j = -1",
            f"{v}    if len(own) < targets[{t}]:",
            *_peek_block(v + " " * 8, t, n, guarded=True, skip_own=True, own_alias=True),
            f"{v}    if j < 0 and own:",
            f"{v}        j = next(iter(own)); vq = own",
            # Owns nothing (target 0): eviction control still applies —
            # over-target owners first, then global LRU.
            f"{v}    if j < 0:",
            *_peek_block(v + " " * 8, t, n, guarded=True, skip_own=False, own_alias=True),
            f"{v}    if j < 0:",
            *_peek_block(v + " " * 8, t, n, guarded=False, skip_own=False, own_alias=True),
            f"{v}evt{t} += 1",
            f"{v}if last[j] != {t}:",
            f"{v}    ite{t} += 1",
            f"{v}del gmap[tags[j]]",
            f"{v}del vq[j]",
            f"{p}    tags[j] = line",
            f"{p}    owner[j] = {t}",
            f"{p}    last[j] = {t}",
            f"{p}    stamp[j] = clk",
            f"{p}    gmap[line] = j",
            f"{p}    own[j] = None",
            f"{p}    qref[j] = own",
        ]
    else:
        # Plain LRU: one recency queue per set makes the victim an O(1)
        # peek and its insertion order the whole replacement state — no
        # stamps, no global clock (derived at sync points from the
        # access indices).  Occupancy counters are kept for the
        # introspection APIs.
        body += [
            f"{p}    q = lru[s]",
            f"{p}    cb = s * {n}",
            f"{p}    if filled[s] < ways:",
            f"{p}        base = s * ways",
            f"{p}        j = tags.index(INV, base, base + ways)",
            f"{p}        filled[s] += 1",
            f"{p}    else:",
            f"{v}j = next(iter(q))",
            f"{v}evt{t} += 1",
            f"{v}if last[j] != {t}:",
            f"{v}    ite{t} += 1",
            f"{v}del gmap[tags[j]]",
            f"{v}del q[j]",
            f"{v}count[cb + owner[j]] -= 1",
            f"{p}    count[cb + {t}] += 1",
            f"{p}    tags[j] = line",
            f"{p}    owner[j] = {t}",
            f"{p}    last[j] = {t}",
            f"{p}    gmap[line] = j",
            f"{p}    q[j] = None",
            f"{p}    qref[j] = q",
        ]
    body += [
        f"{p}    c{t} += dcm{t}[i{t}]",
        f"{p}tot += dil{t}[i{t}]",
        f"{p}i{t} += 1",
        f"{p}if tot >= next_tick:",
        *_sync_block(p + "    ", n, clk_expr),
    ]
    return body


def _dispatch_tree(
    w: int, rest: tuple[int, ...], indent: str, n: int, enforce: bool, clk_expr: str
) -> list[str]:
    """Left-fold min-clock dispatch as a nested decision tree.

    ``w`` is the running winner; each level compares it against the next
    contender with ``<=`` (keeping the earlier index on ties) and
    branches, so every root-to-leaf path performs exactly ``n - 1``
    comparisons and the leaf thread is the lowest-index minimum-clock
    thread — the reference scheduler's pick, tie-break included.  Thread
    bodies are duplicated across the ``2^(n-1)`` leaves; the kernels are
    compiled once per (n_threads, enforce) and cached, so the code-size
    cost is paid once while the comparison count is paid per access.
    """
    if not rest:
        return _thread_body(w, n, enforce, clk_expr, indent)
    t = rest[0]
    return [
        f"{indent}if c{w} <= c{t}:",
        *_dispatch_tree(w, rest[1:], indent + "    ", n, enforce, clk_expr),
        f"{indent}else:",
        *_dispatch_tree(t, rest[1:], indent + "    ", n, enforce, clk_expr),
    ]


def _kernel_source(n: int, enforce: bool) -> str:
    """Source of the replay kernel specialised for ``n`` threads.

    Everything per-thread is a scalar fast-local; the scheduler is the
    nested comparison tree of :func:`_dispatch_tree` (exactly ``n - 1``
    clock comparisons per dispatch, lowest index winning ties, matching
    the reference scheduler).  Finished threads park their clock at
    ``+inf`` to drop out of the dispatch; their true arrival time lives
    in ``arrivals``/``clock``.
    """
    clk_expr = "clk" if enforce else "clk + " + " + ".join(f"i{t}" for t in range(n))
    L = []
    A = L.append
    A("def _kernel(sections, prep, clock, busy, stall, instr, fire, barrier, tick_len,")
    A("            clk, gmap, tags, owner, last, stamp, lru, qref, filled, targets,")
    A("            count, set_mask, ways, miss_l, evict_l, ith_l, ite_l, inh_l):")
    A("    INF = _INF")
    A("    INV = _INVALID")
    A("    gget = gmap.get")
    A("    tot = 0")
    A("    next_tick = tick_len")
    for t in range(n):
        A(f"    c{t} = clock[{t}]; st{t} = stall[{t}]; ib{t} = instr[{t}]")
        A(
            f"    mis{t} = miss_l[{t}]; evt{t} = evict_l[{t}]; ith{t} = ith_l[{t}]; "
            f"ite{t} = ite_l[{t}]; inh{t} = inh_l[{t}]"
        )
    A("    si = 0")
    A("    for raw in sections:")
    A("        ps = prep(raw)")
    for t in range(n):
        A(f"        line{t}, dch{t}, dcm{t}, dil{t}, cum{t}, n{t}, tc{t}, ti{t} = ps[{t}]")
        A(f"        i{t} = 0")
        A(f"        d{t} = False")
    A(f"        active = {n}")
    A(f"        arrivals = [0.0] * {n}")
    A("        while active:")
    L.extend(_dispatch_tree(0, tuple(range(1, n)), " " * 12, n, enforce, clk_expr))
    # Fold the finished section's instructions into the per-thread bases
    # (tail instructions were folded when each thread finished).
    A("        " + "; ".join(f"ib{t} += cum{t}[n{t}]" for t in range(n)))
    if not enforce:
        A("        clk += " + " + ".join(f"n{t}" for t in range(n)))
    A("        barrier(si, arrivals)")
    A("        si += 1")
    A("        " + "; ".join(f"c{t} = clock[{t}]; st{t} = stall[{t}]" for t in range(n)))
    for t in range(n):
        A(f"    clock[{t}] = c{t}; busy[{t}] = c{t} - st{t}; instr[{t}] = ib{t}")
        A(
            f"    miss_l[{t}] = mis{t}; evict_l[{t}] = evt{t}; ith_l[{t}] = ith{t}; "
            f"ite_l[{t}] = ite{t}; inh_l[{t}] = inh{t}"
        )
    A("    return clk, tot")
    return "\n".join(L) + "\n"


def _get_kernel(n: int, enforce: bool):
    key = (n, enforce)
    fn = _KERNELS.get(key)
    if fn is None:
        tag = "part" if enforce else "lru"
        ns = {"_INF": float("inf"), "_INVALID": _INVALID}
        exec(  # noqa: S102 — own template, parameterised only by two ints
            compile(_kernel_source(n, enforce), f"<fastpath-kernel-{n}-{tag}>", "exec"),
            ns,
        )
        fn = _KERNELS[key] = ns["_kernel"]
    return fn


def replay(engine) -> RunResult:
    """Fused replay of ``engine`` (a :class:`repro.cpu.engine.CMPEngine`)
    against its :class:`FastPartitionedSharedCache`.

    Control flow is a transcription of ``CMPEngine._run_reference`` with
    four mechanical transformations, none of which may change observable
    behaviour:

    1. **Batch precomputation.**  Each section stream's per-access line
       index, counter base, hit cost (``d_cycles + l2_hit_cycles``) and
       miss cost (``d_cycles + miss_cycles``) are NumPy vector ops
       materialised as Python lists once per section.
    2. **Cache inlining.**  The bodies of ``access``/``_fill``/
       ``_choose_victim`` are fused into the replay loop over aliases of
       the cache's own state arrays, so interval snapshots observe
       exactly the state the reference would produce.
    3. **Specialisation.**  The loop itself is generated per
       ``(n_threads, enforce_partition)`` — see :func:`_kernel_source`.
    4. **Derived counters.**  Every access bumps exactly one of
       {inter-hit, intra-hit, miss}; ``hits`` and ``accesses`` are their
       sums and are materialised only when a snapshot is about to be
       taken (interval boundaries and run end).
    """
    l2 = engine.l2
    compiled = engine.compiled
    timing = engine.timing
    n = compiled.n_threads
    l2_hit_cycles = timing.l2_hit_cycles

    clock = [0.0] * n
    busy = [0.0] * n
    instr = [0] * n
    stall = [0.0] * n
    barriers = BarrierLog(n)
    intervals: list[IntervalRecord] = []

    tick_len = engine.interval_instructions * n
    interval_index = 0
    tick_instr = [0] * n
    tick_busy = [0.0] * n
    tracer = engine.tracer
    trace_on = tracer.enabled
    policy_name = getattr(engine.runtime, "name", "none")

    off = l2._offset_bits
    set_mask = l2._set_mask
    stats = l2.stats
    # Offsets let `hits`/`accesses` be derived even if the cache already
    # absorbed standalone accesses before this replay.
    ith_c = stats.inter_thread_hits
    inh_c = stats.intra_thread_hits
    miss_c = stats.misses
    hit_base = [stats.hits[t] - ith_c[t] - inh_c[t] for t in range(n)]
    acc_base = [stats.accesses[t] - stats.hits[t] - miss_c[t] for t in range(n)]

    def sync_l2(clk_now: int) -> None:
        """Materialise the derived counters before a snapshot."""
        l2._clock = clk_now
        hits = stats.hits
        accesses = stats.accesses
        for t in range(n):
            h = hit_base[t] + ith_c[t] + inh_c[t]
            hits[t] = h
            accesses[t] = acc_base[t] + h + miss_c[t]

    tick_snapshot = stats.snapshot()
    next_tick_val = tick_len

    def fire(running, clk_now: int) -> int:
        """Interval tick: snapshot, consult the runtime, apply targets.

        Mirrors the reference engine's ``fire_tick`` exactly; returns
        the next aggregate-instruction tick for the kernel to watch.
        """
        nonlocal interval_index, next_tick_val, tick_snapshot
        sync_l2(clk_now)
        snap = stats.snapshot()
        d_instr = tuple(instr[t] - tick_instr[t] for t in range(n))
        d_busy = tuple(busy[t] - tick_busy[t] for t in range(n))
        cpi = tuple(d_busy[t] / d_instr[t] if d_instr[t] > 0 else 0.0 for t in range(n))
        obs = IntervalObservation(
            index=interval_index,
            cpi=cpi,
            instructions=d_instr,
            busy_cycles=d_busy,
            targets=tuple(l2.targets),
            l2=snap.minus(tick_snapshot),
        )
        if trace_on and l2.enforce_partition:
            # Distance against the targets in effect during the interval
            # just closed, before the runtime may install new ones.
            tracer.emit(
                ConvergenceEvent(
                    app=compiled.name,
                    policy=policy_name,
                    index=interval_index,
                    **l2.partition_distance(),
                )
            )
        new_targets = None
        if engine.runtime is not None:
            new_targets = engine.runtime.on_interval(obs)
            if new_targets is not None:
                l2.set_targets(list(new_targets))
                # Reconfiguration cost goes to every *running* thread;
                # threads waiting at the barrier absorb it in their slack.
                oh = timing.partition_overhead_cycles
                for t in range(n):
                    if running[t]:
                        clock[t] += oh
                        busy[t] += oh
        intervals.append(
            IntervalRecord(
                observation=obs,
                new_targets=tuple(new_targets) if new_targets is not None else None,
            )
        )
        for t in range(n):
            tick_instr[t] = instr[t]
            tick_busy[t] = busy[t]
        tick_snapshot = snap
        interval_index += 1
        next_tick_val += tick_len
        return next_tick_val

    def barrier(section_index: int, arrivals: list[float]) -> None:
        """End-of-section barrier: everyone resumes at the latest arrival."""
        barriers.record(section_index, arrivals)
        release = max(arrivals)
        for t in range(n):
            stall[t] += release - arrivals[t]
            clock[t] = release

    prep_key = (id(compiled), off, l2_hit_cycles)
    if _PREP_CACHE[0] != prep_key:
        _PREP_CACHE[0] = prep_key
        # Strong reference to `compiled` pins its id() while cached.
        _PREP_CACHE[1] = compiled
        _PREP_CACHE[2] = {}
    prep_slots = _PREP_CACHE[2]

    # A program materialised from a repro.prep stream bundle carries its
    # fold products (hit/miss cost vectors, instruction prefix sums)
    # precomputed and mmapped; use them when they were folded for this
    # exact line offset and hit latency, otherwise fold from the arrays.
    fold = getattr(compiled, "fold_source", None)
    if fold is not None and not fold.matches(off, l2_hit_cycles):
        fold = None

    def prep(si: int) -> list[tuple]:
        """Vector-precompute one section's per-thread replay streams.

        The streams depend only on the compiled program, the line-offset
        geometry and the L2 hit latency — not on the policy — so they
        are memoised in a one-slot module cache (keyed by section index)
        and reused verbatim when the same program is replayed under
        other policies (the shape of every policy-comparison
        experiment).  The kernel only ever reads them.
        """
        cached = prep_slots.get(si)
        if cached is not None:
            return cached
        if fold is not None:
            out = fold.section_prep(si)
            prep_slots[si] = out
            return out
        out = []
        for s_ in compiled.sections[si]:
            a = s_.addresses
            line_arr = a >> off
            di = s_.d_instructions
            # Exclusive prefix sums: cum[i] = instructions of the first i
            # accesses.  Keeps the source integer dtype so ``ib + cum[i]``
            # stays an exact Python int — the kernel derives a thread's
            # running instruction count at sync points instead of
            # accumulating per access.
            cum = np.empty(di.size + 1, dtype=di.dtype)
            cum[0] = 0
            np.cumsum(di, out=cum[1:])
            out.append((
                line_arr.tolist(),
                (s_.d_cycles + l2_hit_cycles).tolist(),
                (s_.d_cycles + s_.miss_cycles).tolist(),
                di.tolist(),
                cum.tolist(),
                int(a.size),
                s_.tail_cycles,
                s_.tail_instructions,
            ))
        prep_slots[si] = out
        return out

    kernel = _get_kernel(n, l2.enforce_partition)
    clk, tot = kernel(
        range(len(compiled.sections)), prep, clock, busy, stall, instr, fire, barrier,
        tick_len, l2._clock,
        l2._lines, l2._tags, l2._owner, l2._last, l2._stamp,
        l2._lru, l2._queue_of, l2._filled, l2.targets, l2._count,
        set_mask, l2.geometry.ways,
        stats.misses, stats.evictions, stats.inter_thread_hits,
        stats.inter_thread_evictions, stats.intra_thread_hits,
    )

    # Flush a final partial interval so short runs still report stats.
    if tot > (interval_index * tick_len) and any(
        instr[t] - tick_instr[t] > 0 for t in range(n)
    ):
        # The run is over; record the partial interval but charge no
        # overhead (there is no next interval to reconfigure for).
        fire((False,) * n, clk)
    sync_l2(clk)

    l1_acc = [0] * n
    l1_hit = [0] * n
    for section in compiled.sections:
        for t, s_ in enumerate(section):
            l1_acc[t] += s_.l1_accesses
            l1_hit[t] += s_.l1_hits

    return RunResult(
        app=compiled.name,
        policy=getattr(engine.runtime, "name", "none"),
        n_threads=n,
        total_cycles=max(clock) if n else 0.0,
        thread_instructions=tuple(instr),
        thread_busy_cycles=tuple(busy),
        thread_stall_cycles=tuple(stall),
        l2_totals=stats.snapshot(),
        thread_l1_accesses=tuple(l1_acc),
        thread_l1_hits=tuple(l1_hit),
        intervals=intervals,
        barriers=barriers,
    )
