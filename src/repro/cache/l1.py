"""Private L1 caches.

Each core has a private L1 (8 KB, 4-way in the paper's configuration).  Two
interfaces are provided:

* :class:`PrivateCache` — a per-access object API (a single-sharer
  unpartitioned cache), used by tests, examples and any caller that wants
  classic ``access(addr) -> hit`` semantics.

* :func:`simulate_l1_filter` — a batch API that runs a whole address trace
  through an LRU L1 and returns the hit mask as a NumPy array.  Because the
  L1 is private, its behaviour is independent of anything the shared-L2
  partitioning scheme does, so each thread's trace can be filtered **once**
  and the resulting L2 access stream reused across every policy under
  comparison.  This is the single biggest performance lever in the whole
  simulator and is why this function exists separately from the object API.
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.shared import PartitionedSharedCache

__all__ = ["PrivateCache", "simulate_l1_filter"]


class PrivateCache(PartitionedSharedCache):
    """A private (single-sharer) set-associative LRU cache."""

    def __init__(self, geometry: CacheGeometry) -> None:
        super().__init__(geometry, n_threads=1, enforce_partition=False)

    def access(self, addr: int, thread: int = 0) -> bool:  # type: ignore[override]
        # Argument order flipped relative to the shared cache on purpose:
        # a private cache has exactly one client.
        return super().access(0, addr)


def simulate_l1_filter(addrs: np.ndarray, geometry: CacheGeometry) -> np.ndarray:
    """Run ``addrs`` through an LRU cache; return a boolean hit mask.

    The loop is plain Python by necessity (LRU state is a sequential
    dependence), but the per-set state is a short MRU-ordered list of tags,
    so each iteration is a handful of C-level list operations.  For the
    default 4-way L1 this processes roughly a million accesses per second.
    """
    addrs = np.asarray(addrs)
    if addrs.ndim != 1:
        raise ValueError("addrs must be 1-D")
    offset_bits = geometry.offset_bits
    index_mask = geometry.sets - 1
    tag_shift = offset_bits + geometry.index_bits
    ways = geometry.ways

    mru: list[list[int]] = [[] for _ in range(geometry.sets)]
    hits = np.zeros(addrs.size, dtype=bool)

    # Bind hot names locally; convert once to a Python list of ints (NumPy
    # scalar extraction inside the loop is several times slower).
    addr_list = addrs.tolist()
    for i, addr in enumerate(addr_list):
        s = (addr >> offset_bits) & index_mask
        tag = addr >> tag_shift
        row = mru[s]
        if tag in row:
            if row[0] != tag:
                row.remove(tag)
                row.insert(0, tag)
            hits[i] = True
        else:
            row.insert(0, tag)
            if len(row) > ways:
                row.pop()
    return hits
