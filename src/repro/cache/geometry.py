"""Cache geometry: sizes, set indexing and tag extraction.

All caches in the simulator are physically-indexed set-associative caches
described by a :class:`CacheGeometry`.  Addresses are byte addresses; the
geometry turns them into ``(set index, tag)`` pairs.  Way *partitioning*
never changes the geometry — the paper's mechanism (Section V) only changes
which line is chosen as the replacement victim.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheGeometry"]


def _is_pow2(v: int) -> bool:
    return v > 0 and (v & (v - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a set-associative cache.

    Parameters
    ----------
    sets:
        Number of cache sets (power of two).
    ways:
        Associativity.  The shared L2 in the paper is highly associative
        (64-way at 1 MB; its worked example in Fig. 15 uses 32 ways, which
        is our scaled default).
    line_bytes:
        Cache line size in bytes (power of two).
    """

    sets: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _is_pow2(self.sets):
            raise ValueError(f"sets must be a power of two, got {self.sets}")
        if self.ways < 1:
            raise ValueError(f"ways must be >= 1, got {self.ways}")
        if not _is_pow2(self.line_bytes):
            raise ValueError(f"line_bytes must be a power of two, got {self.line_bytes}")

    @classmethod
    def from_size(cls, size_bytes: int, ways: int, line_bytes: int = 64) -> "CacheGeometry":
        """Build a geometry from a total capacity, mirroring the paper's
        "increase cache size by adding ways" convention when ``ways`` grows
        at fixed ``sets``."""
        lines = size_bytes // line_bytes
        if lines * line_bytes != size_bytes:
            raise ValueError("size_bytes must be a multiple of line_bytes")
        if lines % ways != 0:
            raise ValueError(f"{size_bytes} bytes / {line_bytes}B lines not divisible by {ways} ways")
        return cls(sets=lines // ways, ways=ways, line_bytes=line_bytes)

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {"sets": self.sets, "ways": self.ways, "line_bytes": self.line_bytes}

    @classmethod
    def from_dict(cls, data: dict) -> "CacheGeometry":
        return cls(sets=data["sets"], ways=data["ways"], line_bytes=data["line_bytes"])

    @property
    def size_bytes(self) -> int:
        return self.sets * self.ways * self.line_bytes

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def index_bits(self) -> int:
        return self.sets.bit_length() - 1

    def set_index(self, addr: int) -> int:
        """Set index of a byte address."""
        return (addr >> self.offset_bits) & (self.sets - 1)

    def tag(self, addr: int) -> int:
        """Tag of a byte address (includes nothing below the index bits)."""
        return addr >> (self.offset_bits + self.index_bits)

    def line_address(self, addr: int) -> int:
        """Byte address of the start of the line containing ``addr``."""
        return addr & ~(self.line_bytes - 1)

    def way_bytes(self) -> int:
        """Capacity contributed by one way (sets * line size): the unit of
        allocation when partitioning by ways."""
        return self.sets * self.line_bytes
