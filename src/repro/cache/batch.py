"""Batched multi-lane replay: the ``"batch"`` cache backend.

A sweep grid replays the *same* prepared program — same app, seed,
thread count, L1-filtered stream arrays — once per policy/L2-geometry
cell.  :func:`replay_batch` executes N such cells ("lanes") against one
:class:`~repro.cpu.streams.CompiledProgram`: the per-access stream
products (line indices, hit/miss cost vectors, instruction deltas) are
materialised once as contiguous arrays straight off the (possibly
mmapped) :mod:`repro.prep` views, per-lane cache and CPU state lives in
stacked struct-of-arrays (``tags``/``owner``/``last``/``lru-stamp`` of
shape ``[lanes, sets x ways]``), and each lane's replay inner loop runs
in the compiled C routine of :mod:`repro.cache.batchkernel`.

Lanes execute sequentially, each to completion — a deliberate deviation
from per-access lane-vectorisation: NumPy's ~2.5 µs per-operator
dispatch on the ~20 operators a lane-parallel step needs was measured
to lose to the fused Python fastpath below ~48 lanes, while the C lane
kernel beats it by two orders of magnitude at any lane count (BENCH.md
v1.9.0 records both).  Batching still amortises what is shared — one
program prep, one stream materialisation, one state allocation — and
keeps the engine-facing contract the exec layer needs: one batch in,
one byte-identical :class:`~repro.core.records.RunResult` per lane out,
in lane order.

Equivalence contract
--------------------
Identical to the fastpath's: every lane result is **byte-identical** to
a solo reference-backend run of that cell — same IEEE-754 operations on
the same operands in the same order (the C routine transcribes the
reference loop; all cycle quantities are integer-valued doubles, so
busy cycles derive exactly as ``clock - stall``), same statistics, same
interval records.  ``tests/test_cache_differential.py`` and the
hypothesis lane-equivalence property enforce it.

When no C compiler is available the batch degrades gracefully: each
lane replays through the pure-Python fastpath kernel instead (still
sharing the prepared program), counted by ``batch.fallback_pure``.
"""

from __future__ import annotations

import ctypes
from dataclasses import dataclass, field

import numpy as np

from repro.cache.batchkernel import RC_TICK, load_kernel
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats
from repro.core.records import IntervalObservation, IntervalRecord, RunResult
from repro.cpu.streams import CompiledProgram
from repro.obs.events import ConvergenceEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sync.barrier import BarrierLog

__all__ = ["BatchLane", "replay_batch"]

# ctrl-array slots; must match the #defines in batchkernel.KERNEL_SOURCE.
_C_CLK, _C_TOT, _C_NEXT_TICK, _C_SEC, _C_ACTIVE = range(5)

_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_I32 = ctypes.POINTER(ctypes.c_int32)
_P_F64 = ctypes.POINTER(ctypes.c_double)


@dataclass
class BatchLane:
    """One cell of a batch: an L2 configuration plus its runtime.

    ``runtime`` is consulted at every interval boundary exactly like
    :class:`~repro.cpu.engine.CMPEngine` consults it (``None`` disables
    repartitioning; interval records are still produced).  ``targets``
    is the initial way assignment; it must sum to ``geometry.ways``.
    """

    geometry: CacheGeometry
    enforce_partition: bool = True
    targets: list[int] | None = None
    runtime: object | None = None
    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)


def _validate_targets(targets: list[int], n: int, ways: int) -> list[int]:
    """The reference cache's ``set_targets`` checks, verbatim."""
    targets = [int(v) for v in targets]
    if len(targets) != n:
        raise ValueError(f"need {n} targets, got {len(targets)}")
    if any(v < 0 for v in targets):
        raise ValueError(f"targets must be non-negative, got {targets}")
    if sum(targets) != ways:
        raise ValueError(
            f"targets must sum to {ways} ways, got {targets} (sum {sum(targets)})"
        )
    return targets


def _equal_targets(n: int, ways: int) -> list[int]:
    base, extra = divmod(ways, n)
    return [base + (1 if t < extra else 0) for t in range(n)]


def _partition_distance(counts: list[int], targets: list[int], sets: int, n: int) -> dict:
    """Misplaced-way distance, matching ``partition_distance`` to the bit
    (sets visited in order, mean from one float division)."""
    total = 0
    worst = 0
    converged = 0
    for cb in range(0, sets * n, n):
        d = 0
        for t in range(n):
            over = counts[cb + t] - targets[t]
            if over > 0:
                d += over
        total += d
        if d > worst:
            worst = d
        if d == 0:
            converged += 1
    return {
        "mean_distance": total / sets,
        "max_distance": worst,
        "converged_sets": converged,
        "total_sets": sets,
    }


class _SharedStreams:
    """The per-batch stream materialisation, shared by every lane.

    Per-thread concatenations (across sections) of the fastpath's fold
    products — the same elementwise NumPy ops the fastpath performs
    (``addresses >> off``, ``d_cycles + l2_hit_cycles``, ``d_cycles +
    miss_cycles``), so the doubles the C kernel accumulates are the
    doubles the reference accumulates.  When the program came from a
    prep bundle the source arrays are mmapped views; one pass here
    copies them into kernel-contiguous layout for all lanes.
    """

    def __init__(self, compiled: CompiledProgram, off: int, l2_hit_cycles: float) -> None:
        n = compiled.n_threads
        n_sections = len(compiled.sections)
        self.n_threads = n
        self.n_sections = n_sections
        per_line: list[list[np.ndarray]] = [[] for _ in range(n)]
        per_dch: list[list[np.ndarray]] = [[] for _ in range(n)]
        per_dcm: list[list[np.ndarray]] = [[] for _ in range(n)]
        per_dil: list[list[np.ndarray]] = [[] for _ in range(n)]
        self.ends = np.zeros(n_sections * n, dtype=np.int64)
        self.tail_c = np.zeros(n_sections * n, dtype=np.float64)
        self.tail_i = np.zeros(n_sections * n, dtype=np.int64)
        counts = [0] * n
        for si, section in enumerate(compiled.sections):
            for t, s_ in enumerate(section):
                per_line[t].append(s_.addresses >> off)
                per_dch[t].append(s_.d_cycles + l2_hit_cycles)
                per_dcm[t].append(s_.d_cycles + s_.miss_cycles)
                per_dil[t].append(s_.d_instructions)
                counts[t] += int(s_.addresses.size)
                self.ends[si * n + t] = counts[t]
                self.tail_c[si * n + t] = s_.tail_cycles
                self.tail_i[si * n + t] = s_.tail_instructions
        self.stream_base = np.zeros(n, dtype=np.int64)
        acc = 0
        for t in range(n):
            self.stream_base[t] = acc
            acc += counts[t]
        join = lambda chunks, dt: (  # noqa: E731 — local glue
            np.ascontiguousarray(np.concatenate([c for t in range(n) for c in chunks[t]]), dtype=dt)
            if acc
            else np.zeros(0, dtype=dt)
        )
        self.line = join(per_line, np.int64)
        self.dch = join(per_dch, np.float64)
        self.dcm = join(per_dcm, np.float64)
        self.dil = join(per_dil, np.int64)
        self.l1_acc = [0] * n
        self.l1_hit = [0] * n
        for section in compiled.sections:
            for t, s_ in enumerate(section):
                self.l1_acc[t] += s_.l1_accesses
                self.l1_hit[t] += s_.l1_hits


class _BatchState:
    """Stacked per-lane state: one row per lane, sized for the largest
    lane geometry (lanes may differ in L2 sets x ways)."""

    def __init__(self, lanes: list[BatchLane], n: int, n_sections: int) -> None:
        L = len(lanes)
        max_slots = max(lane.geometry.sets * lane.geometry.ways for lane in lanes)
        max_counts = max(lane.geometry.sets for lane in lanes) * n
        self.tags = np.full((L, max_slots), -1, dtype=np.int64)
        self.owner = np.full((L, max_slots), -1, dtype=np.int32)
        self.last = np.full((L, max_slots), -1, dtype=np.int32)
        self.stamp = np.zeros((L, max_slots), dtype=np.int64)
        self.filled = np.zeros((L, max(lane.geometry.sets for lane in lanes)), dtype=np.int32)
        self.count = np.zeros((L, max_counts), dtype=np.int64)
        self.targets = np.zeros((L, n), dtype=np.int64)
        self.miss = np.zeros((L, n), dtype=np.int64)
        self.evict = np.zeros((L, n), dtype=np.int64)
        self.ith = np.zeros((L, n), dtype=np.int64)
        self.ite = np.zeros((L, n), dtype=np.int64)
        self.inh = np.zeros((L, n), dtype=np.int64)
        self.clock = np.zeros((L, n), dtype=np.float64)
        self.stall = np.zeros((L, n), dtype=np.float64)
        self.instr = np.zeros((L, n), dtype=np.int64)
        self.cursor = np.zeros((L, n), dtype=np.int64)
        self.done = np.zeros((L, n), dtype=np.int32)
        self.arrivals = np.zeros((L, n_sections * n), dtype=np.float64)
        self.ctrl = np.zeros((L, 5), dtype=np.int64)


def _ptr(row: np.ndarray, ctype):
    return row.ctypes.data_as(ctype)


def _replay_lane_compiled(
    kernel,
    shared: _SharedStreams,
    state: _BatchState,
    li: int,
    lane: BatchLane,
    compiled: CompiledProgram,
    timing,
    interval_instructions: int,
) -> RunResult:
    n = shared.n_threads
    n_sections = shared.n_sections
    geo = lane.geometry
    sets, ways = geo.sets, geo.ways
    if lane.enforce_partition and ways < n:
        raise ValueError(
            f"cannot partition {ways} ways among {n} threads with at least one way each"
        )
    targets = _validate_targets(
        lane.targets if lane.targets is not None else _equal_targets(n, ways), n, ways
    )

    tick_len = interval_instructions * n
    ctrl = state.ctrl[li]
    ctrl[_C_NEXT_TICK] = tick_len
    ctrl[_C_ACTIVE] = n
    state.targets[li, :] = targets

    clock = state.clock[li]
    stall = state.stall[li]
    instr = state.instr[li]
    done = state.done[li]
    miss, evict = state.miss[li], state.evict[li]
    ith, ite, inh = state.ith[li], state.ite[li], state.inh[li]

    stats = CacheStats(n)
    intervals: list[IntervalRecord] = []
    barriers = BarrierLog(n)
    tick_instr = [0] * n
    tick_busy = [0.0] * n
    interval_index = 0
    tracer = lane.tracer
    trace_on = tracer.enabled
    runtime = lane.runtime
    policy_name = getattr(runtime, "name", "none")
    overhead = timing.partition_overhead_cycles

    args = (
        _ptr(shared.line, _P_I64), _ptr(shared.dch, _P_F64),
        _ptr(shared.dcm, _P_F64), _ptr(shared.dil, _P_I64),
        _ptr(shared.stream_base, _P_I64), _ptr(shared.ends, _P_I64),
        _ptr(shared.tail_c, _P_F64), _ptr(shared.tail_i, _P_I64),
        _ptr(state.tags[li], _P_I64), _ptr(state.owner[li], _P_I32),
        _ptr(state.last[li], _P_I32), _ptr(state.stamp[li], _P_I64),
        _ptr(state.filled[li], _P_I32), _ptr(state.count[li], _P_I64),
        _ptr(state.targets[li], _P_I64),
        _ptr(miss, _P_I64), _ptr(evict, _P_I64),
        _ptr(ith, _P_I64), _ptr(ite, _P_I64), _ptr(inh, _P_I64),
        _ptr(clock, _P_F64), _ptr(stall, _P_F64), _ptr(instr, _P_I64),
        _ptr(state.cursor[li], _P_I64), _ptr(done, _P_I32),
        _ptr(state.arrivals[li], _P_F64), _ptr(ctrl, _P_I64),
        n, n_sections, ways, sets - 1, int(lane.enforce_partition),
    )

    def sync_stats() -> None:
        for t in range(n):
            h = int(ith[t]) + int(inh[t])
            stats.hits[t] = h
            stats.misses[t] = int(miss[t])
            stats.accesses[t] = h + stats.misses[t]
            stats.evictions[t] = int(evict[t])
            stats.inter_thread_hits[t] = int(ith[t])
            stats.inter_thread_evictions[t] = int(ite[t])
            stats.intra_thread_hits[t] = int(inh[t])

    tick_snapshot = stats.snapshot()

    def fire(running: tuple[bool, ...]) -> None:
        """Interval tick, mirroring the reference ``fire_tick`` exactly."""
        nonlocal interval_index, tick_snapshot
        sync_stats()
        snap = stats.snapshot()
        busy_now = [float(clock[t]) - float(stall[t]) for t in range(n)]
        d_instr = tuple(int(instr[t]) - tick_instr[t] for t in range(n))
        d_busy = tuple(busy_now[t] - tick_busy[t] for t in range(n))
        cpi = tuple(d_busy[t] / d_instr[t] if d_instr[t] > 0 else 0.0 for t in range(n))
        obs = IntervalObservation(
            index=interval_index,
            cpi=cpi,
            instructions=d_instr,
            busy_cycles=d_busy,
            targets=tuple(targets),
            l2=snap.minus(tick_snapshot),
        )
        if trace_on and lane.enforce_partition:
            counts = state.count[li, : sets * n].tolist()
            tracer.emit(
                ConvergenceEvent(
                    app=compiled.name,
                    policy=policy_name,
                    index=interval_index,
                    **_partition_distance(counts, targets, sets, n),
                )
            )
        new_targets = None
        if runtime is not None:
            new_targets = runtime.on_interval(obs)
            if new_targets is not None:
                targets[:] = _validate_targets(list(new_targets), n, ways)
                state.targets[li, :] = targets
                for t in range(n):
                    if running[t]:
                        clock[t] = float(clock[t]) + overhead
        intervals.append(
            IntervalRecord(
                observation=obs,
                new_targets=tuple(new_targets) if new_targets is not None else None,
            )
        )
        for t in range(n):
            tick_instr[t] = int(instr[t])
            tick_busy[t] = float(clock[t]) - float(stall[t])
        tick_snapshot = snap
        interval_index += 1
        ctrl[_C_NEXT_TICK] += tick_len

    while kernel(*args) == RC_TICK:
        fire(tuple(not bool(done[t]) for t in range(n)))

    # Flush a final partial interval so short runs still report stats.
    # The run is over: no overhead is charged (running all-False).
    tot = int(ctrl[_C_TOT])
    if tot > interval_index * tick_len and any(
        int(instr[t]) - tick_instr[t] > 0 for t in range(n)
    ):
        fire((False,) * n)
    sync_stats()

    arrivals = state.arrivals[li]
    for si in range(n_sections):
        barriers.record(si, [float(arrivals[si * n + t]) for t in range(n)])

    return RunResult(
        app=compiled.name,
        policy=policy_name,
        n_threads=n,
        total_cycles=max(float(clock[t]) for t in range(n)) if n else 0.0,
        thread_instructions=tuple(int(instr[t]) for t in range(n)),
        thread_busy_cycles=tuple(float(clock[t]) - float(stall[t]) for t in range(n)),
        thread_stall_cycles=tuple(float(stall[t]) for t in range(n)),
        l2_totals=stats.snapshot(),
        thread_l1_accesses=tuple(shared.l1_acc),
        thread_l1_hits=tuple(shared.l1_hit),
        intervals=intervals,
        barriers=barriers,
    )


def _replay_lane_fallback(
    compiled: CompiledProgram, lane: BatchLane, timing, interval_instructions: int
) -> RunResult:
    """Pure-Python lane replay (no C compiler): the fastpath kernel."""
    from repro.cache.fastpath import FastPartitionedSharedCache
    from repro.cpu.engine import CMPEngine

    l2 = FastPartitionedSharedCache(
        lane.geometry,
        # The compiled program fixes the thread count for every lane.
        compiled.n_threads,
        enforce_partition=lane.enforce_partition,
        targets=lane.targets,
    )
    engine = CMPEngine(
        compiled,
        l2,
        timing,
        lane.runtime,
        interval_instructions=interval_instructions,
        tracer=lane.tracer,
    )
    return engine.run()


def replay_batch(
    compiled: CompiledProgram,
    lanes: list[BatchLane],
    timing,
    *,
    interval_instructions: int,
) -> list[RunResult]:
    """Replay ``compiled`` under every lane; one RunResult per lane, in
    lane order, each byte-identical to a solo run of that cell.

    All lanes must share the program's line size (their L2 geometries
    may differ in sets/ways).  ``interval_instructions`` is shared: it
    shapes the program itself, so cells differing there can never share
    a prepared program in the first place.
    """
    if not lanes:
        return []
    off = lanes[0].geometry.offset_bits
    for lane in lanes:
        if lane.geometry.offset_bits != off:
            raise ValueError(
                "batch lanes must share one cache line size; "
                f"got offset bits {off} and {lane.geometry.offset_bits}"
            )
    METRICS.counter("batch.batches").inc()
    METRICS.counter("batch.lanes").inc(len(lanes))
    kernel = load_kernel()
    if kernel is None:
        METRICS.counter("batch.fallback_pure").inc(len(lanes))
        return [
            _replay_lane_fallback(compiled, lane, timing, interval_instructions)
            for lane in lanes
        ]
    shared = _SharedStreams(compiled, off, timing.l2_hit_cycles)
    state = _BatchState(lanes, shared.n_threads, shared.n_sections)
    return [
        _replay_lane_compiled(
            kernel, shared, state, li, lane, compiled, timing, interval_instructions
        )
        for li, lane in enumerate(lanes)
    ]
