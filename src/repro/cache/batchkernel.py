"""Runtime-compiled C lane kernel for :mod:`repro.cache.batch`.

The batched backend replays one prepared program under many policy/L2
lanes.  Lane state is NumPy struct-of-arrays, but the per-access control
flow — min-clock dispatch, set probe, Section V victim selection — is
inherently sequential *within* a lane, and a NumPy formulation of the
lane-parallel step was measured at 2.5 µs of per-operator dispatch x ~20
operators per step on this class of host: it cannot break even against
the fused Python fastpath below ~48 lanes (see BENCH.md v1.9.0).  So the
inner loop is a small C routine instead — ROADMAP item 2's "compiled
kernel with pure-Python fallback" option — compiled once per host with
the system C compiler and loaded through :mod:`ctypes`.

``replay_lane`` is a line-for-line transcription of
``CMPEngine._run_reference`` plus the reference cache's ``access``/
``_fill``/``_choose_victim``:

* dispatch scans threads in index order keeping a strictly smaller
  clock, so the lowest-index minimum-clock thread wins ties;
* the hit probe and every victim rule are way-order scans with
  first-strictly-minimal LRU stamps, exactly the reference's scans
  (stamps are globally unique, so no tie-break cases exist);
* all cycle quantities are IEEE-754 doubles accumulated in the
  reference's order (no ``-ffast-math``), instruction counts are
  ``int64`` — byte-identity is the contract, enforced by
  ``tests/test_cache_differential.py``.

The routine runs one lane until the aggregate instruction count crosses
the next interval tick (returns ``1``) or the program completes
(returns ``0``); Python fires the tick — statistics snapshot, runtime
policy consultation, target installation, reconfiguration overhead —
and re-enters.  Barriers and thread completion are handled in C.

Compiled objects are cached on disk keyed by the SHA-256 of the source,
so sibling worker processes share one build.  When no compiler is
available (or the build fails) :func:`load_kernel` returns ``None`` and
the batch backend falls back to the pure-Python fastpath per lane.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["KERNEL_SOURCE", "kernel_available", "load_kernel"]

KERNEL_SOURCE = r"""
#include <stdint.h>

#define TICK 1
#define DONE 0

/* ctrl slots: persistent scalar lane state across tick pauses. */
#define C_CLK       0   /* cache LRU clock (one tick per access)      */
#define C_TOT       1   /* aggregate instructions retired             */
#define C_NEXT_TICK 2   /* next interval boundary (aggregate instrs)  */
#define C_SEC       3   /* current section index                      */
#define C_ACTIVE    4   /* threads still running this section         */

static int64_t choose_victim(
    int64_t t, int64_t base, int64_t cb, int64_t ways, int64_t n,
    const int64_t *tags, const int32_t *owner, const int64_t *stamp,
    const int64_t *count, const int64_t *targets, int64_t enforce)
{
    int64_t w, best, best_stamp;
    (void)tags; (void)n;
    if (!enforce) {
        /* Plain global LRU: first strictly-minimal stamp in way order. */
        best = base; best_stamp = stamp[base];
        for (w = 1; w < ways; w++) {
            if (stamp[base + w] < best_stamp) {
                best = base + w; best_stamp = stamp[base + w];
            }
        }
        return best;
    }
    if (count[cb + t] < targets[t]) {
        /* Under target: evict the LRU line of an over-target thread. */
        best = -1; best_stamp = 0;
        for (w = 0; w < ways; w++) {
            int64_t o = owner[base + w];
            if (count[cb + o] > targets[o]) {
                int64_t st = stamp[base + w];
                if (best < 0 || st < best_stamp) { best = base + w; best_stamp = st; }
            }
        }
        if (best >= 0) return best;
        /* Unreachable on a full set (counts and targets both sum to
         * `ways`), but fall through to own-LRU defensively. */
    }
    /* At or over target (or no over-target victim): own LRU line. */
    best = -1; best_stamp = 0;
    for (w = 0; w < ways; w++) {
        if (owner[base + w] == t) {
            int64_t st = stamp[base + w];
            if (best < 0 || st < best_stamp) { best = base + w; best_stamp = st; }
        }
    }
    if (best >= 0) return best;
    /* Thread owns nothing here (possible when its target is 0).
     * Eviction control still applies: prefer the LRU line of an
     * over-target thread so under-target threads keep their lines. */
    best = -1; best_stamp = 0;
    for (w = 0; w < ways; w++) {
        int64_t o = owner[base + w];
        if (count[cb + o] > targets[o]) {
            int64_t st = stamp[base + w];
            if (best < 0 || st < best_stamp) { best = base + w; best_stamp = st; }
        }
    }
    if (best >= 0) return best;
    /* Nobody over target either: global LRU. */
    best = base; best_stamp = stamp[base];
    for (w = 1; w < ways; w++) {
        if (stamp[base + w] < best_stamp) {
            best = base + w; best_stamp = stamp[base + w];
        }
    }
    return best;
}

int64_t replay_lane(
    /* shared prepared streams (identical for every lane of the batch) */
    const int64_t *line,         /* per-thread concatenated line indices   */
    const double  *dch,          /* d_cycles + l2_hit_cycles               */
    const double  *dcm,          /* d_cycles + miss_cycles                 */
    const int64_t *dil,          /* d_instructions                         */
    const int64_t *stream_base,  /* [n] thread offsets into the above      */
    const int64_t *ends,         /* [n_sections*n] cursor end per (sec,t)  */
    const double  *tail_c,       /* [n_sections*n] section tail cycles     */
    const int64_t *tail_i,       /* [n_sections*n] section tail instrs     */
    /* per-lane cache state */
    int64_t *tags, int32_t *owner, int32_t *last, int64_t *stamp,
    int32_t *filled, int64_t *count, const int64_t *targets,
    /* per-lane statistics counters */
    int64_t *miss, int64_t *evict, int64_t *ith, int64_t *ite, int64_t *inh,
    /* per-lane CPU state */
    double *clock, double *stall, int64_t *instr,
    int64_t *cursor, int32_t *done, double *arrivals,
    int64_t *ctrl,
    /* parameters */
    int64_t n, int64_t n_sections, int64_t ways,
    int64_t set_mask, int64_t enforce)
{
    int64_t clk       = ctrl[C_CLK];
    int64_t tot       = ctrl[C_TOT];
    int64_t next_tick = ctrl[C_NEXT_TICK];
    int64_t sec       = ctrl[C_SEC];
    int64_t active    = ctrl[C_ACTIVE];
    int64_t t, k, w;

    for (; sec < n_sections; ) {
        const int64_t *sec_end = ends + sec * n;
        double *arr = arrivals + sec * n;
        while (active > 0) {
            /* Lowest-index minimum-clock runnable thread (strict <). */
            double best = 0.0;
            t = -1;
            for (k = 0; k < n; k++) {
                if (!done[k]) {
                    double c = clock[k];
                    if (t < 0 || c < best) { best = c; t = k; }
                }
            }
            {
                int64_t i = cursor[t];
                if (i >= sec_end[t]) {
                    /* Stream exhausted: charge the section tail, arrive. */
                    clock[t] += tail_c[sec * n + t];
                    instr[t] += tail_i[sec * n + t];
                    tot      += tail_i[sec * n + t];
                    arr[t] = clock[t];
                    done[t] = 1;
                    active--;
                    if (tot >= next_tick) goto pause;
                    continue;
                }
                {
                    int64_t sb = stream_base[t];
                    int64_t lv = line[sb + i];
                    int64_t s = lv & set_mask;
                    int64_t base = s * ways;
                    int64_t cb = s * n;
                    int64_t j = -1;
                    clk += 1;
                    for (w = 0; w < ways; w++) {
                        if (tags[base + w] == lv) { j = base + w; break; }
                    }
                    if (j >= 0) {
                        if (last[j] != (int32_t)t) { ith[t] += 1; last[j] = (int32_t)t; }
                        else                       { inh[t] += 1; }
                        stamp[j] = clk;
                        clock[t] += dch[sb + i];
                    } else {
                        miss[t] += 1;
                        if (filled[s] < ways) {
                            /* Cold fill: first invalid way, no eviction. */
                            for (w = 0; w < ways; w++) {
                                if (tags[base + w] == -1) { j = base + w; break; }
                            }
                            filled[s] += 1;
                        } else {
                            j = choose_victim(t, base, cb, ways, n, tags, owner,
                                              stamp, count, targets, enforce);
                            evict[t] += 1;
                            if (last[j] != (int32_t)t) ite[t] += 1;
                            count[cb + owner[j]] -= 1;
                        }
                        tags[j] = lv;
                        owner[j] = (int32_t)t;
                        last[j] = (int32_t)t;
                        stamp[j] = clk;
                        count[cb + t] += 1;
                        clock[t] += dcm[sb + i];
                    }
                    instr[t] += dil[sb + i];
                    tot      += dil[sb + i];
                    cursor[t] = i + 1;
                    if (tot >= next_tick) goto pause;
                }
            }
        }
        /* Barrier: everyone resumes at the latest arrival; early
         * threads book the difference as stall (slack). */
        {
            double release = arr[0];
            for (k = 1; k < n; k++) if (arr[k] > release) release = arr[k];
            for (k = 0; k < n; k++) {
                stall[k] += release - arr[k];
                clock[k] = release;
            }
        }
        for (k = 0; k < n; k++) done[k] = 0;
        active = n;
        sec++;
    }
    ctrl[C_CLK] = clk; ctrl[C_TOT] = tot; ctrl[C_NEXT_TICK] = next_tick;
    ctrl[C_SEC] = sec; ctrl[C_ACTIVE] = active;
    return DONE;

pause:
    ctrl[C_CLK] = clk; ctrl[C_TOT] = tot; ctrl[C_NEXT_TICK] = next_tick;
    ctrl[C_SEC] = sec; ctrl[C_ACTIVE] = active;
    return TICK;
}
"""

#: Result codes of ``replay_lane``.
RC_DONE = 0
RC_TICK = 1

_LOADED: list = [False, None]  # [attempted, ctypes fn | None]


def _source_digest() -> str:
    return hashlib.sha256(KERNEL_SOURCE.encode("utf-8")).hexdigest()[:16]


def _cache_dir() -> Path:
    root = os.environ.get("REPRO_KERNEL_CACHE")
    if root:
        return Path(root)
    return Path(tempfile.gettempdir()) / f"repro-batchkernel-{os.getuid()}"


def _compile(out_path: Path) -> bool:
    """Build the shared object next to ``out_path`` and rename into place.

    The rename is atomic on POSIX, so concurrent workers racing to build
    the same digest all end up loading one complete object.
    """
    cc = shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        return False
    out_path.parent.mkdir(parents=True, exist_ok=True)
    src = out_path.with_suffix(f".{os.getpid()}.c")
    tmp = out_path.with_suffix(f".{os.getpid()}.so")
    try:
        src.write_text(KERNEL_SOURCE)
        proc = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-o", str(tmp), str(src)],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp, out_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in (src, tmp):
            try:
                leftover.unlink()
            except OSError:
                pass


def _bind(path: Path):
    lib = ctypes.CDLL(str(path))
    fn = lib.replay_lane
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    p_i32 = ctypes.POINTER(ctypes.c_int32)
    p_f64 = ctypes.POINTER(ctypes.c_double)
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        p_i64, p_f64, p_f64, p_i64, p_i64, p_i64, p_f64, p_i64,  # streams
        p_i64, p_i32, p_i32, p_i64, p_i32, p_i64, p_i64,  # cache state
        p_i64, p_i64, p_i64, p_i64, p_i64,  # counters
        p_f64, p_f64, p_i64, p_i64, p_i32, p_f64, p_i64,  # cpu state
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # n, n_sections, ways
        ctypes.c_int64, ctypes.c_int64,  # set_mask, enforce
    ]
    return fn


def load_kernel():
    """The bound ``replay_lane`` routine, or ``None`` when unavailable.

    One build/load attempt per process; the outcome (including failure)
    is memoised so a compiler-less host pays the probe exactly once.
    """
    if _LOADED[0]:
        return _LOADED[1]
    _LOADED[0] = True
    so_path = _cache_dir() / f"batchkernel-{_source_digest()}.so"
    try:
        if not so_path.exists() and not _compile(so_path):
            return None
        _LOADED[1] = _bind(so_path)
    except OSError:
        _LOADED[1] = None
    return _LOADED[1]


def kernel_available() -> bool:
    """True when the compiled lane kernel can be (or has been) loaded."""
    return load_kernel() is not None
