"""Per-thread cache statistics, including inter-thread interaction tracking.

The runtime system (paper Fig. 17, "Cache/CPI monitor") reads hardware
counters at each interval boundary.  :class:`CacheStats` plays the role of
those counters, and additionally classifies *inter-thread interactions* the
way Section IV-A2 of the paper defines them:

* an access is an **inter-thread interaction** when the previous access to
  the same cache line came from a different thread;
* a **constructive** interaction is an inter-thread interaction that hits
  (data brought in by one thread is reused by another before eviction);
* a **destructive** interaction is an inter-thread *eviction* — a thread
  evicts a line whose most recent accessor was a different thread.

Interactions are counted over *all* accesses, not just misses, matching the
paper's Figure 8 definition.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of the counters, for interval-delta arithmetic."""

    accesses: tuple[int, ...]
    hits: tuple[int, ...]
    misses: tuple[int, ...]
    evictions: tuple[int, ...]
    inter_thread_hits: tuple[int, ...]
    inter_thread_evictions: tuple[int, ...]
    intra_thread_hits: tuple[int, ...]

    def minus(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Counter delta ``self - earlier`` (both from the same cache)."""

        def sub(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
            return tuple(x - y for x, y in zip(a, b, strict=True))

        return StatsSnapshot(
            accesses=sub(self.accesses, earlier.accesses),
            hits=sub(self.hits, earlier.hits),
            misses=sub(self.misses, earlier.misses),
            evictions=sub(self.evictions, earlier.evictions),
            inter_thread_hits=sub(self.inter_thread_hits, earlier.inter_thread_hits),
            inter_thread_evictions=sub(self.inter_thread_evictions, earlier.inter_thread_evictions),
            intra_thread_hits=sub(self.intra_thread_hits, earlier.intra_thread_hits),
        )

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses)

    @property
    def total_misses(self) -> int:
        return sum(self.misses)

    def miss_rate(self, thread: int | None = None) -> float:
        """Miss rate for one thread, or globally when ``thread`` is None."""
        if thread is None:
            acc, mis = self.total_accesses, self.total_misses
        else:
            acc, mis = self.accesses[thread], self.misses[thread]
        return mis / acc if acc else 0.0

    def inter_thread_fraction(self) -> float:
        """Fraction of all accesses that are inter-thread interactions
        (constructive hits plus destructive evictions), per Figure 8."""
        total = self.total_accesses
        if total == 0:
            return 0.0
        inter = sum(self.inter_thread_hits) + sum(self.inter_thread_evictions)
        return inter / total

    def constructive_fraction(self) -> float:
        """Constructive share of inter-thread interactions, per Figure 9."""
        cons = sum(self.inter_thread_hits)
        dest = sum(self.inter_thread_evictions)
        if cons + dest == 0:
            return 0.0
        return cons / (cons + dest)

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "accesses": list(self.accesses),
            "hits": list(self.hits),
            "misses": list(self.misses),
            "evictions": list(self.evictions),
            "inter_thread_hits": list(self.inter_thread_hits),
            "inter_thread_evictions": list(self.inter_thread_evictions),
            "intra_thread_hits": list(self.intra_thread_hits),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatsSnapshot":
        return cls(
            accesses=tuple(data["accesses"]),
            hits=tuple(data["hits"]),
            misses=tuple(data["misses"]),
            evictions=tuple(data["evictions"]),
            inter_thread_hits=tuple(data["inter_thread_hits"]),
            inter_thread_evictions=tuple(data["inter_thread_evictions"]),
            intra_thread_hits=tuple(data["intra_thread_hits"]),
        )


class CacheStats:
    """Mutable per-thread counters updated on the cache's hot path.

    Plain Python ``int`` lists are deliberate: single-element updates to
    NumPy arrays are several times slower than list indexing, and this code
    runs once per cache access.
    """

    __slots__ = (
        "n_threads",
        "accesses",
        "hits",
        "misses",
        "evictions",
        "inter_thread_hits",
        "inter_thread_evictions",
        "intra_thread_hits",
    )

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self.accesses = [0] * n_threads
        self.hits = [0] * n_threads
        self.misses = [0] * n_threads
        self.evictions = [0] * n_threads
        self.inter_thread_hits = [0] * n_threads
        self.inter_thread_evictions = [0] * n_threads
        self.intra_thread_hits = [0] * n_threads

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            accesses=tuple(self.accesses),
            hits=tuple(self.hits),
            misses=tuple(self.misses),
            evictions=tuple(self.evictions),
            inter_thread_hits=tuple(self.inter_thread_hits),
            inter_thread_evictions=tuple(self.inter_thread_evictions),
            intra_thread_hits=tuple(self.intra_thread_hits),
        )

    def reset(self) -> None:
        for name in (
            "accesses",
            "hits",
            "misses",
            "evictions",
            "inter_thread_hits",
            "inter_thread_evictions",
            "intra_thread_hits",
        ):
            setattr(self, name, [0] * self.n_threads)
