"""Cache substrate: geometries, private L1s, and the partitionable shared L2.

The shared cache implements the paper's Section V mechanism — way
partitioning by replacement control with per-set current/target counters —
while the L1 module also exposes a batch trace filter that lets the
simulator evaluate several partitioning policies against identical L2
access streams.
"""

from repro.cache.fastpath import (
    CACHE_BACKENDS,
    FastPartitionedSharedCache,
    make_shared_cache,
)
from repro.cache.geometry import CacheGeometry
from repro.cache.l1 import PrivateCache, simulate_l1_filter
from repro.cache.shared import PartitionedSharedCache
from repro.cache.stats import CacheStats, StatsSnapshot

__all__ = [
    "CACHE_BACKENDS",
    "CacheGeometry",
    "CacheStats",
    "FastPartitionedSharedCache",
    "PartitionedSharedCache",
    "PrivateCache",
    "StatsSnapshot",
    "make_shared_cache",
    "simulate_l1_filter",
]
