"""The shared L2 cache with way partitioning via replacement control.

This implements the hardware mechanism of the paper's Section V: the cache
is *implicitly* partitioned by modifying the replacement decision, never by
reconfiguring the arrays.  Each set keeps, per thread,

* a **current-assignment counter** — how many ways of this set currently
  hold lines inserted by that thread, and
* a **target-assignment** — how many ways the thread is entitled to
  (identical for every set; the partition engine updates it).

On a miss by thread *t*:

* if *t*'s current count in the set is **below** its target, the victim is
  the LRU line among threads that are **over** their targets (some such
  thread must exist once the set is full, because counts and targets both
  sum to the way count);
* otherwise *t* replaces the LRU line among **its own** lines.

Replacement is therefore thread-wise LRU, the partition is approached
*gradually* (no flash reconfiguration, no data loss), and — crucially for
intra-application workloads — any thread may still **hit** on any line, so
constructive data sharing across partitions is preserved while destructive
inter-thread evictions are suppressed.

With ``enforce_partition=False`` the same object behaves as a plain
unpartitioned shared cache under global LRU (the paper's "shared" baseline).
"""

from __future__ import annotations

from repro.cache.geometry import CacheGeometry
from repro.cache.stats import CacheStats

__all__ = ["PartitionedSharedCache"]

_INVALID = -1


class PartitionedSharedCache:
    """Set-associative shared cache with optional way-partition enforcement.

    Parameters
    ----------
    geometry:
        Cache shape.  ``geometry.ways`` is the total way budget that
        partitions must sum to.
    n_threads:
        Number of sharer threads (one per core in our model).
    enforce_partition:
        When False, replacement is global LRU and targets are ignored.
    targets:
        Initial per-thread way targets.  Defaults to an equal split, which
        is also how the paper's runtime starts out (first interval).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        n_threads: int,
        *,
        enforce_partition: bool = True,
        targets: list[int] | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if enforce_partition and geometry.ways < n_threads:
            raise ValueError(
                f"cannot partition {geometry.ways} ways among {n_threads} threads "
                "with at least one way each"
            )
        self.geometry = geometry
        self.n_threads = n_threads
        self.enforce_partition = enforce_partition
        self.stats = CacheStats(n_threads)

        sets, ways = geometry.sets, geometry.ways
        self._map: list[dict[int, int]] = [dict() for _ in range(sets)]
        self._tags: list[list[int]] = [[_INVALID] * ways for _ in range(sets)]
        self._owner: list[list[int]] = [[_INVALID] * ways for _ in range(sets)]
        self._last: list[list[int]] = [[_INVALID] * ways for _ in range(sets)]
        self._stamp: list[list[int]] = [[0] * ways for _ in range(sets)]
        self._count: list[list[int]] = [[0] * n_threads for _ in range(sets)]
        self._filled: list[int] = [0] * sets
        self._clock = 0

        if targets is None:
            targets = self._equal_targets()
        self.set_targets(targets)

    # ------------------------------------------------------------------
    # Partition control (the "Configuration Unit" applies through here).
    # ------------------------------------------------------------------
    def _equal_targets(self) -> list[int]:
        base, extra = divmod(self.geometry.ways, self.n_threads)
        return [base + (1 if t < extra else 0) for t in range(self.n_threads)]

    def set_targets(self, targets: list[int]) -> None:
        """Install new target way assignments (takes effect gradually)."""
        targets = [int(v) for v in targets]
        if len(targets) != self.n_threads:
            raise ValueError(f"need {self.n_threads} targets, got {len(targets)}")
        if any(v < 0 for v in targets):
            raise ValueError(f"targets must be non-negative, got {targets}")
        if sum(targets) != self.geometry.ways:
            raise ValueError(
                f"targets must sum to {self.geometry.ways} ways, got {targets} (sum {sum(targets)})"
            )
        self.targets = targets

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def access(self, thread: int, addr: int) -> bool:
        """Access one byte address on behalf of ``thread``.

        Returns True on hit.  All statistics (including the inter-thread
        interaction classification) are updated as a side effect.
        """
        geo = self.geometry
        s = (addr >> geo.offset_bits) & (geo.sets - 1)
        tag = addr >> (geo.offset_bits + geo.index_bits)

        stats = self.stats
        stats.accesses[thread] += 1
        self._clock += 1
        smap = self._map[s]
        way = smap.get(tag)
        if way is not None:
            stats.hits[thread] += 1
            last_row = self._last[s]
            if last_row[way] != thread:
                stats.inter_thread_hits[thread] += 1
            else:
                stats.intra_thread_hits[thread] += 1
            last_row[way] = thread
            self._stamp[s][way] = self._clock
            return True

        stats.misses[thread] += 1
        self._fill(thread, s, tag)
        return False

    def _fill(self, thread: int, s: int, tag: int) -> None:
        ways = self.geometry.ways
        tags_row = self._tags[s]
        owner_row = self._owner[s]
        counts = self._count[s]

        if self._filled[s] < ways:
            # Cold fill: take the first invalid way, no eviction.
            way = tags_row.index(_INVALID)
            self._filled[s] += 1
        else:
            way = self._choose_victim(thread, s)
            victim_owner = owner_row[way]
            self.stats.evictions[thread] += 1
            if self._last[s][way] != thread:
                self.stats.inter_thread_evictions[thread] += 1
            counts[victim_owner] -= 1
            del self._map[s][tags_row[way]]

        tags_row[way] = tag
        owner_row[way] = thread
        self._last[s][way] = thread
        self._stamp[s][way] = self._clock
        counts[thread] += 1
        self._map[s][tag] = way

    def _choose_victim(self, thread: int, s: int) -> int:
        stamp_row = self._stamp[s]
        owner_row = self._owner[s]
        ways = self.geometry.ways

        if not self.enforce_partition:
            # Plain global LRU.
            best, best_stamp = 0, stamp_row[0]
            for w in range(1, ways):
                st = stamp_row[w]
                if st < best_stamp:
                    best, best_stamp = w, st
            return best

        counts = self._count[s]
        targets = self.targets
        if counts[thread] < targets[thread]:
            # Under target: evict the LRU line of an over-target thread.
            best, best_stamp = -1, None
            for w in range(ways):
                o = owner_row[w]
                if counts[o] > targets[o]:
                    st = stamp_row[w]
                    if best_stamp is None or st < best_stamp:
                        best, best_stamp = w, st
            if best >= 0:
                return best
            # Unreachable when counts and targets both sum to `ways` on a
            # full set, but fall through to own-LRU defensively.
        # At or over target (or no over-target victim): evict own LRU line.
        best, best_stamp = -1, None
        for w in range(ways):
            if owner_row[w] == thread:
                st = stamp_row[w]
                if best_stamp is None or st < best_stamp:
                    best, best_stamp = w, st
        if best >= 0:
            return best
        # Thread owns nothing here (possible when its target is 0).
        # Eviction control still applies: prefer the LRU line of an
        # over-target thread so under-target threads keep their lines.
        best, best_stamp = -1, None
        for w in range(ways):
            o = owner_row[w]
            if counts[o] > targets[o]:
                st = stamp_row[w]
                if best_stamp is None or st < best_stamp:
                    best, best_stamp = w, st
        if best >= 0:
            return best
        # Nobody over target either: global LRU.
        best, best_stamp = 0, stamp_row[0]
        for w in range(1, ways):
            st = stamp_row[w]
            if st < best_stamp:
                best, best_stamp = w, st
        return best

    # ------------------------------------------------------------------
    # Introspection (tests, experiments)
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        geo = self.geometry
        s = (addr >> geo.offset_bits) & (geo.sets - 1)
        tag = addr >> (geo.offset_bits + geo.index_bits)
        return tag in self._map[s]

    def owner_of(self, addr: int) -> int | None:
        """Thread that inserted the line holding ``addr``, or None."""
        geo = self.geometry
        s = (addr >> geo.offset_bits) & (geo.sets - 1)
        tag = addr >> (geo.offset_bits + geo.index_bits)
        way = self._map[s].get(tag)
        return None if way is None else self._owner[s][way]

    def occupancy(self) -> list[int]:
        """Total lines currently held per thread, across all sets."""
        totals = [0] * self.n_threads
        for counts in self._count:
            for t in range(self.n_threads):
                totals[t] += counts[t]
        return totals

    def set_occupancy(self, s: int) -> list[int]:
        """Per-thread way counts of one set (the Section V counters)."""
        return list(self._count[s])

    def partition_distance(self) -> dict:
        """How far eviction control still is from the target partition.

        Per set, the distance is the number of *misplaced* ways — ways
        held beyond their owner's target, ``sum_t max(0, count_t -
        target_t)`` — which is the number of future evictions needed to
        reach the targets exactly.  Partially filled sets only count ways
        actually over target (unfilled ways are free to place correctly).

        Returns a dict feeding the ``convergence`` telemetry event:
        ``mean_distance`` (misplaced ways per set), ``max_distance``
        (worst set), ``converged_sets`` (sets at distance zero) and
        ``total_sets``.
        """
        targets = self.targets
        n = self.n_threads
        total = 0
        worst = 0
        converged = 0
        for counts in self._count:
            d = 0
            for t in range(n):
                over = counts[t] - targets[t]
                if over > 0:
                    d += over
            total += d
            if d > worst:
                worst = d
            if d == 0:
                converged += 1
        sets = self.geometry.sets
        return {
            "mean_distance": total / sets,
            "max_distance": worst,
            "converged_sets": converged,
            "total_sets": sets,
        }

    def check_invariants(self) -> None:
        """Assert internal consistency; used by property-based tests.

        Verified per set: the tag->way map mirrors the tag array exactly;
        per-thread way counters match the owner array; the filled counter
        matches the number of valid ways; counters sum to the filled count.
        """
        for s in range(self.geometry.sets):
            tags_row = self._tags[s]
            owner_row = self._owner[s]
            counts = self._count[s]
            valid = [w for w, t in enumerate(tags_row) if t != _INVALID]
            assert len(valid) == self._filled[s], f"set {s}: filled counter mismatch"
            assert len(self._map[s]) == len(valid), f"set {s}: map size mismatch"
            for w in valid:
                assert self._map[s].get(tags_row[w]) == w, f"set {s} way {w}: map mismatch"
                assert 0 <= owner_row[w] < self.n_threads, f"set {s} way {w}: bad owner"
            recount = [0] * self.n_threads
            for w in valid:
                recount[owner_row[w]] += 1
            assert recount == counts, f"set {s}: owner counters {counts} != recount {recount}"
            assert sum(counts) == self._filled[s], f"set {s}: counts don't sum to filled"

    def flush(self) -> None:
        """Invalidate all lines (used between independent experiments)."""
        for s in range(self.geometry.sets):
            self._map[s].clear()
            ways = self.geometry.ways
            self._tags[s] = [_INVALID] * ways
            self._owner[s] = [_INVALID] * ways
            self._last[s] = [_INVALID] * ways
            self._stamp[s] = [0] * ways
            self._count[s] = [0] * self.n_threads
            self._filled[s] = 0
