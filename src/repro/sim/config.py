"""System configuration (the paper's Figure 2, at reproduction scale).

The paper simulates a 4-core UltraSPARC-3 CMP with 8 KB private L1s and a
1 MB, 64-way shared L2, running 15 M-instruction intervals for 50
intervals.  A pure-Python trace-driven simulator cannot execute billions
of instructions, so the **default** configuration scales everything down
while preserving the ratios that drive the result (see DESIGN.md §2):

=====================  =======================  =====================
quantity               paper                    this reproduction
=====================  =======================  =====================
cores / threads        4 (8 in Fig. 22)         4 (8 supported)
L1 (private)           8 KB, 4-way              8 KB, 4-way (32 sets)
L2 (shared)            1 MB, 64-way             64 KB, 32-way (32 sets)
line size              64 B                     64 B
interval               15 M instructions        20 K instructions/thread
run length             50 intervals             50 intervals
=====================  =======================  =====================

Everything is a parameter; ``SystemConfig.quick()`` gives a much smaller
setup for unit tests and benchmark harness smoke runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.geometry import CacheGeometry
from repro.cpu.timing import TimingModel

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    n_threads: int = 4
    l1_geometry: CacheGeometry = field(default_factory=lambda: CacheGeometry(sets=32, ways=4))
    l2_geometry: CacheGeometry = field(default_factory=lambda: CacheGeometry(sets=32, ways=32))
    timing: TimingModel = field(default_factory=TimingModel)
    interval_instructions: int = 20_000
    n_intervals: int = 50
    sections_per_interval: int = 2
    min_ways: int = 1
    seed: int = 1
    # Shared-L2 implementation: "fast" (struct-of-arrays + fused replay
    # kernel) or "reference" (the readable per-set implementation).  Both
    # are byte-identical in output (tests/test_cache_differential.py), so
    # this selects speed, never semantics.
    cache_backend: str = "fast"

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.l2_geometry.ways < self.n_threads * max(self.min_ways, 1):
            raise ValueError(
                f"L2 has {self.l2_geometry.ways} ways; too few for {self.n_threads} threads"
            )
        if self.l1_geometry.line_bytes != self.l2_geometry.line_bytes:
            raise ValueError("L1 and L2 must use the same line size")
        if self.interval_instructions < 1 or self.n_intervals < 1:
            raise ValueError("interval_instructions and n_intervals must be >= 1")
        if self.sections_per_interval < 1:
            raise ValueError("sections_per_interval must be >= 1")
        if self.min_ways < 0:
            raise ValueError("min_ways must be >= 0")
        if self.cache_backend not in ("reference", "fast", "batch"):
            raise ValueError(
                "cache_backend must be 'reference', 'fast' or 'batch', "
                f"got {self.cache_backend!r}"
            )

    @property
    def line_bytes(self) -> int:
        return self.l2_geometry.line_bytes

    @property
    def total_ways(self) -> int:
        return self.l2_geometry.ways

    @classmethod
    def default(cls) -> "SystemConfig":
        """The standard 4-core evaluation configuration."""
        return cls()

    @classmethod
    def eight_core(cls) -> "SystemConfig":
        """The 8-core sensitivity configuration (paper Fig. 22: same total
        cache, more threads)."""
        return cls(n_threads=8)

    @classmethod
    def quick(cls, *, n_threads: int = 4) -> "SystemConfig":
        """Small configuration for tests and fast benchmark smoke runs."""
        return cls(
            n_threads=n_threads,
            l2_geometry=CacheGeometry(sets=32, ways=16),
            interval_instructions=3_000,
            n_intervals=10,
            sections_per_interval=2,
        )

    def with_(self, **kwargs) -> "SystemConfig":
        """Functional update (``dataclasses.replace`` spelled fluently)."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Canonical JSON-serialisable form.

        This is the configuration half of :class:`repro.exec.JobSpec`'s
        content address, so it must enumerate **every** field that affects
        a simulation — a field added to :class:`SystemConfig` without being
        reflected here would alias distinct configurations in the result
        store.  :meth:`from_dict` round-trips it.
        """
        return {
            "n_threads": self.n_threads,
            "l1_geometry": self.l1_geometry.to_dict(),
            "l2_geometry": self.l2_geometry.to_dict(),
            "timing": self.timing.to_dict(),
            "interval_instructions": self.interval_instructions,
            "n_intervals": self.n_intervals,
            "sections_per_interval": self.sections_per_interval,
            "min_ways": self.min_ways,
            "seed": self.seed,
            "cache_backend": self.cache_backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SystemConfig":
        return cls(
            n_threads=data["n_threads"],
            l1_geometry=CacheGeometry.from_dict(data["l1_geometry"]),
            l2_geometry=CacheGeometry.from_dict(data["l2_geometry"]),
            timing=TimingModel.from_dict(data["timing"]),
            interval_instructions=data["interval_instructions"],
            n_intervals=data["n_intervals"],
            sections_per_interval=data["sections_per_interval"],
            min_ways=data["min_ways"],
            seed=data["seed"],
            # Absent in pre-1.3 serialisations, which were always reference.
            cache_backend=data.get("cache_backend", "reference"),
        )

    def describe(self) -> dict[str, str]:
        """Human-readable configuration table (the paper's Figure 2)."""
        return {
            "Number of cores": str(self.n_threads),
            "Number of threads": str(self.n_threads),
            "L1 cache size": f"{self.l1_geometry.size_bytes // 1024} KB",
            "L1 cache associativity": str(self.l1_geometry.ways),
            "L2 cache type": "Shared",
            "L2 cache size": f"{self.l2_geometry.size_bytes // 1024} KB",
            "L2 cache associativity": str(self.l2_geometry.ways),
            "Cache line size": f"{self.line_bytes} B",
            "Execution interval": f"{self.interval_instructions} instructions/thread",
            "Intervals per run": str(self.n_intervals),
        }
