"""Top-level simulation driver.

Ties together the substrates: builds (and memoises) the synthetic program
for an application, compiles it through the private L1s once, then replays
it under any number of partitioning policies.  Because the program and the
L1-filtered L2 streams are identical across policies, policy comparisons
(the paper's Figs. 19-22) are exact A/B comparisons on the same trace.
"""

from __future__ import annotations

from repro.cache.shared import PartitionedSharedCache
from repro.core.records import RunResult
from repro.core.runtime import RuntimeSystem
from repro.cpu.engine import CMPEngine
from repro.cpu.streams import CompiledProgram, compile_program
from repro.partition import POLICY_REGISTRY
from repro.partition.base import PartitioningPolicy
from repro.sim.config import SystemConfig
from repro.trace.builder import build_program
from repro.trace.workloads import WorkloadProfile, get_workload

__all__ = ["clear_program_cache", "make_policy", "prepare_program", "run_application"]

_PROGRAM_CACHE: dict[tuple, CompiledProgram] = {}


def _cache_key(profile: WorkloadProfile, config: SystemConfig) -> tuple:
    # Key on the frozen config itself rather than a hand-picked tuple of
    # fields: a tuple silently drifts (stale hits) whenever SystemConfig
    # grows a field.  The L2 geometry and min_ways do not affect the
    # compiled program, so configs differing only there recompile — a small
    # cost next to the correctness risk of under-keying.
    return (profile.name, config)


def prepare_program(app: str | WorkloadProfile, config: SystemConfig) -> CompiledProgram:
    """Build + L1-compile the program for ``app``, memoised per config.

    The memo is what makes multi-policy comparisons cheap: trace
    generation and L1 filtering dominate setup cost and depend only on the
    workload and machine front-end, never on the L2 policy.
    """
    profile = get_workload(app) if isinstance(app, str) else app
    key = _cache_key(profile, config)
    compiled = _PROGRAM_CACHE.get(key)
    if compiled is None:
        program = build_program(
            profile,
            n_threads=config.n_threads,
            n_intervals=config.n_intervals,
            interval_instructions=config.interval_instructions,
            sections_per_interval=config.sections_per_interval,
            seed=config.seed,
            line_bytes=config.line_bytes,
        )
        compiled = compile_program(program, config.l1_geometry, config.timing)
        _PROGRAM_CACHE[key] = compiled
    return compiled


def clear_program_cache() -> None:
    """Drop all memoised compiled programs (tests use this to bound memory)."""
    _PROGRAM_CACHE.clear()


def make_policy(policy: str | PartitioningPolicy, config: SystemConfig) -> PartitioningPolicy:
    """Resolve a policy name (see ``repro.partition.POLICY_REGISTRY``) or
    pass an already-constructed policy through."""
    if isinstance(policy, PartitioningPolicy):
        return policy
    try:
        cls = POLICY_REGISTRY[policy]
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; known: {', '.join(sorted(POLICY_REGISTRY))}"
        ) from None
    return cls(config.n_threads, config.total_ways, min_ways=config.min_ways)


def run_application(
    app: str | WorkloadProfile,
    policy: str | PartitioningPolicy,
    config: SystemConfig | None = None,
) -> RunResult:
    """Simulate one application under one partitioning policy.

    This is the main public entry point::

        result = run_application("swim", "model-based")
        baseline = run_application("swim", "shared")
        print(result.speedup_over(baseline))
    """
    config = config or SystemConfig.default()
    compiled = prepare_program(app, config)
    policy_obj = make_policy(policy, config)
    policy_obj.reset()
    runtime = RuntimeSystem(policy_obj)
    l2 = PartitionedSharedCache(
        config.l2_geometry,
        config.n_threads,
        enforce_partition=policy_obj.enforce_partition,
        targets=runtime.initial_targets(),
    )
    engine = CMPEngine(
        compiled,
        l2,
        config.timing,
        runtime,
        interval_instructions=config.interval_instructions,
    )
    return engine.run()
