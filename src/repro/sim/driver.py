"""Top-level simulation driver.

Ties together the substrates: builds (and memoises) the synthetic program
for an application, compiles it through the private L1s once, then replays
it under any number of partitioning policies.  Because the program and the
L1-filtered L2 streams are identical across policies, policy comparisons
(the paper's Figs. 19-22) are exact A/B comparisons on the same trace.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.fastpath import make_shared_cache
from repro.core.records import RunResult
from repro.core.runtime import RuntimeSystem
from repro.cpu.engine import CMPEngine
from repro.cpu.streams import CompiledProgram, compile_program
from repro.obs.metrics import METRICS
from repro.obs.tracer import Tracer, get_tracer
from repro.partition import POLICY_REGISTRY
from repro.partition.base import PartitioningPolicy
from repro.sim.config import SystemConfig
from repro.trace.builder import build_program
from repro.trace.workloads import WorkloadProfile, get_workload

__all__ = [
    "clear_program_cache",
    "make_policy",
    "prepare_program",
    "run_application",
    "run_batch",
    "set_program_cache_limit",
]

# Compiled programs are large (every per-thread L2 stream of every section);
# an unbounded memo turns a long sweep into a slow leak.  LRU with a
# configurable cap: a policy comparison re-reads the same entry for every
# policy, so even a small cap keeps the hit rate of the old unbounded dict.
DEFAULT_PROGRAM_CACHE_LIMIT = 32

_PROGRAM_CACHE: OrderedDict[tuple, CompiledProgram] = OrderedDict()
_PROGRAM_CACHE_LIMIT = DEFAULT_PROGRAM_CACHE_LIMIT


def _cache_key(profile: WorkloadProfile, config: SystemConfig) -> tuple:
    # Key on the frozen config itself rather than a hand-picked tuple of
    # fields: a tuple silently drifts (stale hits) whenever SystemConfig
    # grows a field.  The L2 geometry and min_ways do not affect the
    # compiled program, so configs differing only there recompile — a small
    # cost next to the correctness risk of under-keying.
    return (profile.name, config)


def prepare_program(app: str | WorkloadProfile, config: SystemConfig) -> CompiledProgram:
    """Build + L1-compile the program for ``app``, memoised per config.

    The memo is what makes multi-policy comparisons cheap: trace
    generation and L1 filtering dominate setup cost and depend only on the
    workload and machine front-end, never on the L2 policy.  When a
    :mod:`repro.prep` store is configured, a memo miss consults it for a
    compiled *stream bundle* first — a hit rebuilds the program from
    mmapped arrays (shared page-cache pages across worker processes) and
    skips generation and L1 filtering entirely; a miss compiles as usual
    and publishes the bundle for every later process.
    """
    profile = get_workload(app) if isinstance(app, str) else app
    key = _cache_key(profile, config)
    compiled = _PROGRAM_CACHE.get(key)
    if compiled is not None:
        METRICS.counter("sim.program_cache.hits").inc()
        _PROGRAM_CACHE.move_to_end(key)
        return compiled
    METRICS.counter("sim.program_cache.misses").inc()
    compiled = _prepare_uncached(profile, config)
    _PROGRAM_CACHE[key] = compiled
    while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_LIMIT:
        _PROGRAM_CACHE.popitem(last=False)
        METRICS.counter("sim.program_cache.evictions").inc()
    METRICS.gauge("sim.program_cache.size").set(len(_PROGRAM_CACHE))
    return compiled


def _prepare_uncached(profile: WorkloadProfile, config: SystemConfig) -> CompiledProgram:
    """Resolve a program-memo miss: prep store first, then full compile."""
    from repro.prep import compiled_from_bundle, get_prep_store, stream_bundle, stream_key

    store = get_prep_store()
    key = stream_key(profile, config) if store is not None else None
    if store is not None:
        bundle = store.get(key)
        if bundle is not None:
            return compiled_from_bundle(bundle)
    program = build_program(
        profile,
        n_threads=config.n_threads,
        n_intervals=config.n_intervals,
        interval_instructions=config.interval_instructions,
        sections_per_interval=config.sections_per_interval,
        seed=config.seed,
        line_bytes=config.line_bytes,
    )
    compiled = compile_program(program, config.l1_geometry, config.timing)
    if store is not None:
        arrays, meta = stream_bundle(
            compiled, config.timing, config.l2_geometry.offset_bits
        )
        store.put(key, arrays, meta)
    return compiled


def set_program_cache_limit(limit: int) -> None:
    """Cap the compiled-program memo at ``limit`` entries (LRU beyond it)."""
    global _PROGRAM_CACHE_LIMIT
    if limit < 1:
        raise ValueError("program cache limit must be >= 1")
    _PROGRAM_CACHE_LIMIT = limit
    while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_LIMIT:
        _PROGRAM_CACHE.popitem(last=False)
        METRICS.counter("sim.program_cache.evictions").inc()
    METRICS.gauge("sim.program_cache.size").set(len(_PROGRAM_CACHE))


def clear_program_cache() -> None:
    """Drop all memoised compiled programs (tests use this to bound memory)."""
    _PROGRAM_CACHE.clear()
    METRICS.gauge("sim.program_cache.size").set(0)


def make_policy(policy: str | PartitioningPolicy, config: SystemConfig) -> PartitioningPolicy:
    """Resolve a policy name (see ``repro.partition.POLICY_REGISTRY``) or
    pass an already-constructed policy through."""
    if isinstance(policy, PartitioningPolicy):
        return policy
    try:
        cls = POLICY_REGISTRY[policy]
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; known: {', '.join(sorted(POLICY_REGISTRY))}"
        ) from None
    return cls(config.n_threads, config.total_ways, min_ways=config.min_ways)


def run_application(
    app: str | WorkloadProfile,
    policy: str | PartitioningPolicy,
    config: SystemConfig | None = None,
    *,
    tracer: Tracer | None = None,
) -> RunResult:
    """Simulate one application under one partitioning policy.

    This is the main public entry point::

        result = run_application("swim", "model-based")
        baseline = run_application("swim", "shared")
        print(result.speedup_over(baseline))

    ``tracer`` receives the run's telemetry (``interval``, ``repartition``,
    ``convergence`` events plus prepare/simulate spans); it defaults to the
    process-wide tracer from :func:`repro.obs.get_tracer`, which is the
    no-op :data:`~repro.obs.NULL_TRACER` unless the CLI (``--trace``) or a
    caller installed one.
    """
    config = config or SystemConfig.default()
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("prepare"):
        compiled = prepare_program(app, config)
        policy_obj = make_policy(policy, config)
        policy_obj.reset()
    runtime = RuntimeSystem(policy_obj, tracer=tracer, app=compiled.name)
    l2 = make_shared_cache(
        config.l2_geometry,
        config.n_threads,
        backend=config.cache_backend,
        enforce_partition=policy_obj.enforce_partition,
        targets=runtime.initial_targets(),
    )
    engine = CMPEngine(
        compiled,
        l2,
        config.timing,
        runtime,
        interval_instructions=config.interval_instructions,
        tracer=tracer,
    )
    with tracer.span("simulate"):
        return engine.run()


def run_batch(
    app: str | WorkloadProfile,
    cells: list[tuple[str | PartitioningPolicy, SystemConfig]],
    *,
    tracer: Tracer | None = None,
) -> list[RunResult]:
    """Simulate one application under several (policy, config) cells that
    share a prepared program, in a single batched replay.

    Every cell must agree on everything that shapes the program — seed,
    thread count, interval structure, L1 geometry, timing — while the L2
    geometry, ``min_ways``, and of course the policy are free to vary
    per lane.  Returns one :class:`RunResult` per cell, in cell order,
    each byte-identical to :func:`run_application` on that cell alone.
    """
    from dataclasses import replace

    from repro.cache.batch import BatchLane, replay_batch

    if not cells:
        return []
    base = cells[0][1]
    for i, (_, cfg) in enumerate(cells):
        if (
            replace(cfg, l2_geometry=base.l2_geometry, min_ways=base.min_ways)
            != base
        ):
            raise ValueError(
                f"batch cell {i} does not share cell 0's prepared program "
                "(cells may differ only in policy, L2 geometry, and min_ways)"
            )
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("prepare"):
        compiled = prepare_program(app, base)
        lanes = []
        for policy, cfg in cells:
            policy_obj = make_policy(policy, cfg)
            policy_obj.reset()
            runtime = RuntimeSystem(policy_obj, tracer=tracer, app=compiled.name)
            lanes.append(
                BatchLane(
                    geometry=cfg.l2_geometry,
                    enforce_partition=policy_obj.enforce_partition,
                    targets=runtime.initial_targets(),
                    runtime=runtime,
                    tracer=tracer,
                )
            )
    with tracer.span("simulate"):
        return replay_batch(
            compiled,
            lanes,
            base.timing,
            interval_instructions=base.interval_instructions,
        )
