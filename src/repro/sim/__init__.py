"""Simulation driver: configuration and end-to-end application runs."""

from repro.sim.config import SystemConfig
from repro.sim.driver import (
    clear_program_cache,
    make_policy,
    prepare_program,
    run_application,
)

__all__ = [
    "SystemConfig",
    "clear_program_cache",
    "make_policy",
    "prepare_program",
    "run_application",
]
