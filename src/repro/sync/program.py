"""Parallel-program structure: sections bound by barriers.

The paper's Section III-B describes the target program shape (Fig. 1):
parallel sections separated by barriers, where a section completes only
when its slowest thread — the *critical-path thread* — reaches the
barrier, and faster threads stall.  We model a program as an ordered list
of :class:`Section` objects, each holding one :class:`ThreadWork` per
thread; the execution engine enforces the barrier at each section
boundary and accounts stall (slack) time explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Section", "SyntheticProgram", "ThreadWork"]


@dataclass(frozen=True)
class ThreadWork:
    """The memory-access trace of one thread within one parallel section.

    ``addrs[i]`` is the byte address of the i-th memory operation and
    ``gaps[i]`` the number of non-memory instructions retired right before
    it.  Total instructions = ``gaps.sum() + len(addrs)``.
    """

    addrs: np.ndarray
    gaps: np.ndarray

    def __post_init__(self) -> None:
        if self.addrs.ndim != 1 or self.gaps.ndim != 1:
            raise ValueError("addrs and gaps must be 1-D")
        if self.addrs.shape != self.gaps.shape:
            raise ValueError(
                f"addrs and gaps must be equal length, got {self.addrs.size} vs {self.gaps.size}"
            )

    @property
    def n_mem_ops(self) -> int:
        return int(self.addrs.size)

    @property
    def instructions(self) -> int:
        return int(self.gaps.sum()) + self.n_mem_ops


@dataclass(frozen=True)
class Section:
    """One parallel section: per-thread work, ending in a barrier."""

    works: tuple[ThreadWork, ...]

    def __post_init__(self) -> None:
        if not self.works:
            raise ValueError("a section needs at least one thread's work")

    @property
    def n_threads(self) -> int:
        return len(self.works)

    @property
    def instructions(self) -> int:
        return sum(w.instructions for w in self.works)


@dataclass(frozen=True)
class SyntheticProgram:
    """An ordered list of barrier-bound parallel sections plus metadata."""

    name: str
    sections: tuple[Section, ...]
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sections:
            raise ValueError("a program needs at least one section")
        n = self.sections[0].n_threads
        for i, sec in enumerate(self.sections):
            if sec.n_threads != n:
                raise ValueError(f"section {i} has {sec.n_threads} threads, expected {n}")

    @property
    def n_threads(self) -> int:
        return self.sections[0].n_threads

    @property
    def instructions(self) -> int:
        return sum(sec.instructions for sec in self.sections)

    def thread_instructions(self, thread: int) -> int:
        return sum(sec.works[thread].instructions for sec in self.sections)
