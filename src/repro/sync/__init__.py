"""Parallel-program structure and barrier accounting (paper §III-B)."""

from repro.sync.barrier import BarrierEvent, BarrierLog
from repro.sync.program import Section, SyntheticProgram, ThreadWork

__all__ = [
    "BarrierEvent",
    "BarrierLog",
    "Section",
    "SyntheticProgram",
    "ThreadWork",
]
