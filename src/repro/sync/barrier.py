"""Barrier accounting: arrival times, critical-path thread, slack.

The simulator resolves barriers analytically (all threads resume at the
latest arrival cycle), so the "barrier" here is a bookkeeping object: it
records per-section arrival cycles and derives the quantities the paper
reasons about — which thread was on the critical path, and how much slack
(stall time) the other threads accumulated waiting for it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BarrierEvent", "BarrierLog"]


@dataclass(frozen=True)
class BarrierEvent:
    """Outcome of one barrier: per-thread arrival cycles."""

    section_index: int
    arrivals: tuple[float, ...]

    @property
    def release_cycle(self) -> float:
        """Cycle at which all threads resume (the latest arrival)."""
        return max(self.arrivals)

    @property
    def critical_thread(self) -> int:
        """Thread that arrived last — the critical-path thread."""
        arr = self.arrivals
        release = max(arr)
        return arr.index(release)

    def slack(self, thread: int) -> float:
        """Cycles ``thread`` spent stalled at this barrier."""
        return self.release_cycle - self.arrivals[thread]

    @property
    def total_slack(self) -> float:
        release = self.release_cycle
        return sum(release - a for a in self.arrivals)


class BarrierLog:
    """Accumulates barrier events over a run."""

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self.events: list[BarrierEvent] = []

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BarrierLog):
            return NotImplemented
        return self.n_threads == other.n_threads and self.events == other.events

    def __repr__(self) -> str:
        return f"BarrierLog(n_threads={self.n_threads}, events={len(self.events)})"

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "n_threads": self.n_threads,
            "events": [
                {"section_index": ev.section_index, "arrivals": list(ev.arrivals)}
                for ev in self.events
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BarrierLog":
        log = cls(data["n_threads"])
        for ev in data["events"]:
            log.events.append(
                BarrierEvent(
                    section_index=ev["section_index"], arrivals=tuple(ev["arrivals"])
                )
            )
        return log

    def record(self, section_index: int, arrivals: list[float]) -> BarrierEvent:
        if len(arrivals) != self.n_threads:
            raise ValueError(f"expected {self.n_threads} arrivals, got {len(arrivals)}")
        event = BarrierEvent(section_index=section_index, arrivals=tuple(arrivals))
        self.events.append(event)
        return event

    def critical_thread_histogram(self) -> list[int]:
        """How many sections each thread was critical for."""
        counts = [0] * self.n_threads
        for ev in self.events:
            counts[ev.critical_thread] += 1
        return counts

    def total_slack_per_thread(self) -> list[float]:
        totals = [0.0] * self.n_threads
        for ev in self.events:
            release = ev.release_cycle
            for t, a in enumerate(ev.arrivals):
                totals[t] += release - a
        return totals
