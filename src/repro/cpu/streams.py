"""Compilation of raw traces into L2 access streams.

The private L1s are independent of anything the shared-L2 partitioning
policy does, so every thread's trace is filtered through its L1 exactly
once (:func:`repro.cache.simulate_l1_filter`) and *compiled* into a compact
L2 stream: the addresses that miss in the L1, each annotated with the
instructions and cycles the thread retires between consecutive L2
accesses.  Policies under comparison then replay identical L2 streams,
which removes both a 4-5x simulation cost and a source of noise from
policy comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.l1 import simulate_l1_filter
from repro.cpu.timing import TimingModel
from repro.sync.program import SyntheticProgram, ThreadWork
from repro.trace.layout import STREAM_BASE_ADDRESS

__all__ = ["CompiledProgram", "L2Stream", "compile_program", "compile_thread_work"]


@dataclass(frozen=True)
class L2Stream:
    """One thread's L2 accesses within one section.

    ``d_instructions[i]`` / ``d_cycles[i]`` are the instructions retired
    and cycles spent (base work + L1 activity) from just after the previous
    L2 access up to and including the memory operation that produced L2
    access ``i`` — the engine adds the L2-hit latency or ``miss_cycles[i]``
    on top.  ``miss_cycles`` is the per-access L2-miss penalty: the
    prefetch-covered ``stream_miss_cycles`` for streaming-region addresses,
    the full ``mem_cycles`` otherwise.  ``tail_*`` cover the work after the
    final L2 access to the end of the section.
    """

    addresses: np.ndarray
    d_instructions: np.ndarray
    d_cycles: np.ndarray
    miss_cycles: np.ndarray
    tail_instructions: int
    tail_cycles: float
    total_instructions: int
    l1_accesses: int
    l1_hits: int

    def __post_init__(self) -> None:
        n = self.addresses.size
        if (
            self.d_instructions.size != n
            or self.d_cycles.size != n
            or self.miss_cycles.size != n
        ):
            raise ValueError("stream arrays must be equal length")

    @property
    def n_l2_accesses(self) -> int:
        return int(self.addresses.size)

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0


@dataclass(frozen=True)
class CompiledProgram:
    """All sections of a program, compiled to per-thread L2 streams.

    ``fold_source`` is an optional provider of precomputed replay-prep
    products (a :class:`repro.prep.artifacts.StreamFold` when the program
    was materialised from a stream bundle); the fastpath duck-types it
    and it never participates in identity or equality.
    """

    name: str
    n_threads: int
    sections: tuple[tuple[L2Stream, ...], ...]
    meta: dict
    fold_source: object | None = field(default=None, compare=False, repr=False)

    @property
    def total_instructions(self) -> int:
        return sum(s.total_instructions for sec in self.sections for s in sec)

    @property
    def total_l2_accesses(self) -> int:
        return sum(s.n_l2_accesses for sec in self.sections for s in sec)


def compile_thread_work(
    work: ThreadWork, l1_geometry: CacheGeometry, timing: TimingModel
) -> L2Stream:
    """Filter one thread-section trace through the L1 and compress it."""
    addrs = work.addrs
    gaps = work.gaps.astype(np.int64)
    hits = simulate_l1_filter(addrs, l1_geometry)

    instr_per_op = gaps + 1
    cyc_per_op = gaps * timing.base_cpi + timing.l1_hit_cycles
    cum_instr = np.cumsum(instr_per_op)
    cum_cycles = np.cumsum(cyc_per_op)
    total_instr = int(cum_instr[-1]) if instr_per_op.size else 0
    total_cycles = float(cum_cycles[-1]) if cyc_per_op.size else 0.0

    miss_idx = np.flatnonzero(~hits)
    if miss_idx.size == 0:
        return L2Stream(
            addresses=np.empty(0, dtype=np.int64),
            d_instructions=np.empty(0, dtype=np.int64),
            d_cycles=np.empty(0, dtype=np.float64),
            miss_cycles=np.empty(0, dtype=np.float64),
            tail_instructions=total_instr,
            tail_cycles=total_cycles,
            total_instructions=total_instr,
            l1_accesses=int(addrs.size),
            l1_hits=int(hits.sum()),
        )

    instr_at_miss = cum_instr[miss_idx]
    cycles_at_miss = cum_cycles[miss_idx]
    d_instr = np.diff(instr_at_miss, prepend=0)
    d_cycles = np.diff(cycles_at_miss, prepend=0.0)

    l2_addrs = addrs[miss_idx].astype(np.int64)
    miss_cycles = np.where(
        l2_addrs >= STREAM_BASE_ADDRESS, timing.stream_miss_cycles, timing.mem_cycles
    ).astype(np.float64)

    return L2Stream(
        addresses=l2_addrs,
        d_instructions=d_instr.astype(np.int64),
        d_cycles=d_cycles.astype(np.float64),
        miss_cycles=miss_cycles,
        tail_instructions=total_instr - int(instr_at_miss[-1]),
        tail_cycles=total_cycles - float(cycles_at_miss[-1]),
        total_instructions=total_instr,
        l1_accesses=int(addrs.size),
        l1_hits=int(hits.sum()),
    )


def compile_program(
    program: SyntheticProgram, l1_geometry: CacheGeometry, timing: TimingModel
) -> CompiledProgram:
    """Compile every thread of every section; see module docstring."""
    sections = tuple(
        tuple(compile_thread_work(work, l1_geometry, timing) for work in sec.works)
        for sec in program.sections
    )
    return CompiledProgram(
        name=program.name,
        n_threads=program.n_threads,
        sections=sections,
        meta=dict(program.meta),
    )
