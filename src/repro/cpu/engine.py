"""Event-driven CMP execution engine.

The engine replays compiled per-thread L2 streams against the shared L2,
interleaving threads by their simulated cycle clocks: at every step the
thread with the smallest clock issues its next L2 access, pays the L2-hit
or memory latency, and advances.  This gives timing *feedback* — a thread
slowed down by misses issues its subsequent accesses later, exactly the
coupling that makes inter-thread cache contention interesting.

Two pieces of program structure are enforced here:

* **Barriers** (paper §III-B): at the end of every parallel section all
  threads synchronise to the latest arrival; the waiting time of early
  threads is accounted as stall (slack) and excluded from busy CPI.

* **Execution intervals** (paper §VI): after every
  ``interval_instructions × n_threads`` aggregate instructions, the engine
  hands an :class:`IntervalObservation` to the runtime system, which may
  return new way targets; the engine applies them to the cache and charges
  the configured runtime overhead to every core.
"""

from __future__ import annotations

from repro.cache.fastpath import replay as _fastpath_replay
from repro.cache.shared import PartitionedSharedCache
from repro.core.records import IntervalObservation, IntervalRecord, RunResult
from repro.cpu.streams import CompiledProgram
from repro.cpu.timing import TimingModel
from repro.obs.events import ConvergenceEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sync.barrier import BarrierLog

__all__ = ["CMPEngine"]


class CMPEngine:
    """Replays one compiled program under one partitioning runtime.

    Parameters
    ----------
    compiled:
        The program, pre-filtered through the private L1s.
    l2:
        The shared cache (partition enforcement configured by the policy).
    timing:
        Latency model; the runtime overhead per reconfiguration comes from
        here as well.
    runtime:
        Object with ``on_interval(observation) -> list[int] | None``; a
        returned list becomes the new way targets.  ``None`` disables the
        runtime entirely (static policies still get interval records).
    interval_instructions:
        Interval length in instructions *per thread* (the aggregate tick is
        this value times the thread count), mirroring the paper's
        15 M-instruction intervals at our scale.
    tracer:
        Telemetry sink for per-interval ``convergence`` events (the
        runtime emits ``interval``/``repartition`` itself).  Defaults to
        the runtime's tracer, so wiring one through
        :func:`repro.sim.run_application` covers both.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        l2: PartitionedSharedCache,
        timing: TimingModel,
        runtime=None,
        *,
        interval_instructions: int = 12_000,
        tracer: Tracer | None = None,
    ) -> None:
        if l2.n_threads != compiled.n_threads:
            raise ValueError(
                f"cache is shared by {l2.n_threads} threads but program has {compiled.n_threads}"
            )
        if interval_instructions < 1:
            raise ValueError("interval_instructions must be >= 1")
        self.compiled = compiled
        self.l2 = l2
        self.timing = timing
        self.runtime = runtime
        self.interval_instructions = interval_instructions
        if tracer is None:
            tracer = getattr(runtime, "tracer", None)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(self) -> RunResult:
        """Replay the program; dispatches on the cache backend.

        A cache advertising ``supports_replay_kernel`` (the ``"fast"``
        backend) is driven by the fused struct-of-arrays kernel in
        :mod:`repro.cache.fastpath`; anything else gets the readable
        reference loop below.  Both produce byte-identical results —
        enforced by ``tests/test_cache_differential.py``.
        """
        if getattr(self.l2, "supports_replay_kernel", False):
            return _fastpath_replay(self)
        return self._run_reference()

    def _run_reference(self) -> RunResult:
        n = self.compiled.n_threads
        timing = self.timing
        l2 = self.l2
        l2_hit_cycles = timing.l2_hit_cycles
        access = l2.access

        clock = [0.0] * n
        busy = [0.0] * n
        instr = [0] * n
        stall = [0.0] * n
        barriers = BarrierLog(n)
        intervals: list[IntervalRecord] = []

        tick_len = self.interval_instructions * n
        next_tick = tick_len
        total_instr = 0
        interval_index = 0
        tick_instr = [0] * n
        tick_busy = [0.0] * n
        tick_snapshot = l2.stats.snapshot()
        tracer = self.tracer
        trace_on = tracer.enabled
        policy_name = getattr(self.runtime, "name", "none")

        def fire_tick(running: list[bool] | None = None) -> None:
            nonlocal next_tick, interval_index, tick_snapshot
            snap = l2.stats.snapshot()
            d_instr = tuple(instr[t] - tick_instr[t] for t in range(n))
            d_busy = tuple(busy[t] - tick_busy[t] for t in range(n))
            cpi = tuple(
                d_busy[t] / d_instr[t] if d_instr[t] > 0 else 0.0 for t in range(n)
            )
            obs = IntervalObservation(
                index=interval_index,
                cpi=cpi,
                instructions=d_instr,
                busy_cycles=d_busy,
                targets=tuple(l2.targets),
                l2=snap.minus(tick_snapshot),
            )
            if trace_on and l2.enforce_partition:
                # Distance is measured against the targets in effect during
                # the interval just closed, *before* the runtime may install
                # new ones — i.e. how far eviction control actually got.
                tracer.emit(
                    ConvergenceEvent(
                        app=self.compiled.name,
                        policy=policy_name,
                        index=interval_index,
                        **l2.partition_distance(),
                    )
                )
            new_targets = None
            if self.runtime is not None:
                new_targets = self.runtime.on_interval(obs)
                if new_targets is not None:
                    l2.set_targets(list(new_targets))
                    # The partitioning computation runs on the cores; charge
                    # its cost to every *running* thread (paper: overheads
                    # < 1.5 %, included in all reported results).  Threads
                    # already waiting at the barrier absorb it in their
                    # slack: their arrival is fixed and the work happens
                    # while they would be stalled anyway.
                    oh = timing.partition_overhead_cycles
                    for t in range(n):
                        if running is None or running[t]:
                            clock[t] += oh
                            busy[t] += oh
            intervals.append(
                IntervalRecord(
                    observation=obs,
                    new_targets=tuple(new_targets) if new_targets is not None else None,
                )
            )
            for t in range(n):
                tick_instr[t] = instr[t]
                tick_busy[t] = busy[t]
            tick_snapshot = snap
            interval_index += 1
            next_tick += tick_len

        for section_index, section in enumerate(self.compiled.sections):
            addr_lists = [s.addresses.tolist() for s in section]
            di_lists = [s.d_instructions.tolist() for s in section]
            dc_lists = [s.d_cycles.tolist() for s in section]
            mc_lists = [s.miss_cycles.tolist() for s in section]
            lengths = [len(a) for a in addr_lists]
            cursors = [0] * n
            done = [False] * n
            arrivals = [0.0] * n
            active = n

            while active:
                # Pick the runnable thread with the smallest clock.
                t = -1
                best = None
                for k in range(n):
                    if not done[k]:
                        c = clock[k]
                        if best is None or c < best:
                            best = c
                            t = k
                i = cursors[t]
                if i >= lengths[t]:
                    s = section[t]
                    clock[t] += s.tail_cycles
                    busy[t] += s.tail_cycles
                    instr[t] += s.tail_instructions
                    total_instr += s.tail_instructions
                    arrivals[t] = clock[t]
                    done[t] = True
                    active -= 1
                    if total_instr >= next_tick:
                        fire_tick([not d for d in done])
                    continue
                lat = l2_hit_cycles if access(t, addr_lists[t][i]) else mc_lists[t][i]
                cost = dc_lists[t][i] + lat
                clock[t] += cost
                busy[t] += cost
                di = di_lists[t][i]
                instr[t] += di
                total_instr += di
                cursors[t] = i + 1
                if total_instr >= next_tick:
                    fire_tick([not d for d in done])

            # Barrier: everyone resumes at the latest arrival.
            barriers.record(section_index, arrivals)
            release = max(arrivals)
            for t in range(n):
                stall[t] += release - arrivals[t]
                clock[t] = release

        # Flush a final partial interval so short runs still report stats.
        if total_instr > (interval_index * tick_len) and any(
            instr[t] - tick_instr[t] > 0 for t in range(n)
        ):
            # The run is over; record the partial interval but charge no
            # overhead (there is no next interval to reconfigure for).
            fire_tick([False] * n)

        l1_acc = [0] * n
        l1_hit = [0] * n
        for section in self.compiled.sections:
            for t, s in enumerate(section):
                l1_acc[t] += s.l1_accesses
                l1_hit[t] += s.l1_hits

        return RunResult(
            app=self.compiled.name,
            policy=getattr(self.runtime, "name", "none"),
            n_threads=n,
            total_cycles=max(clock) if n else 0.0,
            thread_instructions=tuple(instr),
            thread_busy_cycles=tuple(busy),
            thread_stall_cycles=tuple(stall),
            l2_totals=l2.stats.snapshot(),
            thread_l1_accesses=tuple(l1_acc),
            thread_l1_hits=tuple(l1_hit),
            intervals=intervals,
            barriers=barriers,
        )
