"""CMP timing model and event-driven execution engine."""

from repro.cpu.engine import CMPEngine
from repro.cpu.streams import CompiledProgram, L2Stream, compile_program, compile_thread_work
from repro.cpu.timing import TimingModel

__all__ = [
    "CMPEngine",
    "CompiledProgram",
    "L2Stream",
    "TimingModel",
    "compile_program",
    "compile_thread_work",
]
