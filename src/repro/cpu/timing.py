"""Core timing model.

A deliberately simple in-order model, sufficient for the paper's
mechanism: what the partitioning runtime needs is a CPI signal that
responds to L2 hit rate, and that is exactly what this model produces.

Per instruction: ``base_cpi`` cycles.  Per memory operation, additionally:
``l1_hit_cycles`` for the L1 lookup; an L1 miss then pays ``l2_hit_cycles``
on an L2 hit or ``mem_cycles`` on an L2 miss — except misses to a
*streaming* region, which pay ``stream_miss_cycles``.  Sequential misses
are covered by hardware stream prefetchers and overlap with execution, so
their exposed latency is a fraction of an irregular miss's; this asymmetry
(cheap polluting misses vs expensive critical-thread misses) is what lets
a streaming thread degrade a shared LRU cache without being slow itself.
The runtime system costs ``partition_overhead_cycles`` per invocation on
every core (the paper reports its runtime overhead at under 1.5 % and
includes it in all results; we do the same).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["TimingModel"]


@dataclass(frozen=True)
class TimingModel:
    base_cpi: float = 1.0
    l1_hit_cycles: float = 1.0
    l2_hit_cycles: float = 10.0
    mem_cycles: float = 40.0
    stream_miss_cycles: float = 15.0
    partition_overhead_cycles: float = 150.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        for name in (
            "l1_hit_cycles",
            "l2_hit_cycles",
            "mem_cycles",
            "stream_miss_cycles",
            "partition_overhead_cycles",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not self.l1_hit_cycles <= self.l2_hit_cycles <= self.mem_cycles:
            raise ValueError("expected l1_hit_cycles <= l2_hit_cycles <= mem_cycles")
        if not self.l2_hit_cycles <= self.stream_miss_cycles <= self.mem_cycles:
            raise ValueError("expected l2_hit_cycles <= stream_miss_cycles <= mem_cycles")

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TimingModel":
        return cls(**data)
