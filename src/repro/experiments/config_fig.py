"""System configuration table: paper Figure 2 (§III-C).

Trivial but kept as a first-class experiment so every table and figure in
the paper has a runner and a benchmark target; it also records, side by
side, the paper's parameters and the scaled reproduction values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_table
from repro.sim.config import SystemConfig

__all__ = ["ConfigTableResult", "fig2_system_configuration"]

_PAPER_VALUES = {
    "Processor": "UltraSparc 3",
    "Number of cores": "4",
    "Number of threads": "4",
    "Core Frequency": "1 GHz",
    "Operating System": "Sun Solaris 9",
    "L1 cache associativity": "4",
    "L1 cache size": "8 KB",
    "L2 cache type": "Shared",
    "L2 cache associativity": "64",
    "L2 cache size": "1 MB",
    "Execution interval": "15 M instructions",
    "Intervals per run": "50",
}


@dataclass
class ConfigTableResult:
    figure: str
    rows: list[list[str]] = field(default_factory=list)

    def format(self) -> str:
        return format_table(["parameter", "paper", "reproduction"], self.rows, title=self.figure)

    def to_dict(self) -> dict:
        return {"figure": self.figure, "rows": self.rows}


def fig2_system_configuration(config: SystemConfig | None = None) -> ConfigTableResult:
    """Paper vs reproduction configuration, one row per parameter."""
    config = config or SystemConfig.default()
    ours = config.describe()
    ours.setdefault("Processor", "trace-driven in-order model")
    ours.setdefault("Core Frequency", "abstract cycles")
    ours.setdefault("Operating System", "runtime system only (paper §VI-C)")
    result = ConfigTableResult(figure="Figure 2: system configuration")
    keys = list(_PAPER_VALUES) + [k for k in ours if k not in _PAPER_VALUES]
    for key in keys:
        result.rows.append([key, _PAPER_VALUES.get(key, "-"), ours.get(key, "-")])
    return result
