"""ASCII reporting helpers for the experiment harness.

The paper's figures are bar charts and line plots; a terminal harness
reproduces them as tables and series printouts.  Everything here is pure
formatting — experiment runners return plain data and call these helpers
from their ``format()`` methods.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_bar_chart", "format_series", "pct"]


def pct(x: float, *, signed: bool = True) -> str:
    """Render a fraction as a percentage string (0.093 -> '+9.3%')."""
    sign = "+" if signed else ""
    return f"{x * 100:{sign}.1f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with column auto-sizing.

    Numeric cells are right-aligned, everything else left-aligned.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str], numeric: Sequence[bool]) -> str:
        parts = []
        for cell, w, right in zip(cells, widths, numeric, strict=True):
            parts.append(cell.rjust(w) if right else cell.ljust(w))
        return "  ".join(parts).rstrip()

    numeric_cols = [
        all(_is_numeric(row[i]) for row in str_rows) if str_rows else False
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers), [False] * len(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row, numeric_cols))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str | None = None,
    width: int = 40,
    value_format: str = "{:+.1%}",
) -> str:
    """Horizontal ASCII bar chart (one bar per label).

    Negative values render to the left of the axis so small regressions
    are visually distinct from gains.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must be equal length")
    lines = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    label_w = max(len(lb) for lb in labels)
    vmax = max(abs(v) for v in values) or 1.0
    for lb, v in zip(labels, values, strict=True):
        n = int(round(abs(v) / vmax * width))
        bar = ("#" * n) if v >= 0 else ("-" * n)
        lines.append(f"{lb.ljust(label_w)}  {value_format.format(v):>8}  {bar}")
    return "\n".join(lines)


def format_series(
    name: str,
    values: Sequence[float],
    *,
    per_line: int = 10,
    value_format: str = "{:7.2f}",
) -> str:
    """Print a per-interval series in compact rows of ``per_line``."""
    lines = [f"{name} ({len(values)} points):"]
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        prefix = f"  [{start:3d}] "
        lines.append(prefix + " ".join(value_format.format(v) for v in chunk))
    return "\n".join(lines)


def _cell(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}" if abs(v) < 1000 else f"{v:.1f}"
    return str(v)


def _is_numeric(s: str) -> bool:
    if not s:
        return False
    try:
        float(s.rstrip("%"))
        return True
    except ValueError:
        return False
