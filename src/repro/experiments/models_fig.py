"""Runtime CPI models and the optimised partition: paper Figure 15 (§VI-B).

The paper's Figure 15 shows, for a sample 4-thread execution, each
thread's fitted CPI-vs-ways curve and the partition the optimiser settles
on (the critical thread receiving the largest share).  We reproduce it by
running the model-based policy, then reading its model bank: the observed
knots, the spline's predictions over the full way range, and the final
partition alongside the equal-partition starting point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.shared import PartitionedSharedCache
from repro.core.runtime import RuntimeSystem
from repro.cpu.engine import CMPEngine
from repro.experiments.reporting import format_table
from repro.partition.base import equal_targets
from repro.partition.model_based import ModelBasedPolicy, optimize_max_cpi
from repro.sim.config import SystemConfig
from repro.sim.driver import prepare_program

__all__ = ["CPIModelsResult", "fig15_runtime_models"]


@dataclass
class CPIModelsResult:
    figure: str
    app: str
    way_grid: list[int]
    #: predicted CPI per thread over way_grid
    curves: dict[int, list[float]] = field(default_factory=dict)
    #: (ways, cpi) knots actually observed per thread
    knots: dict[int, list[tuple[int, float]]] = field(default_factory=dict)
    equal_partition: list[int] = field(default_factory=list)
    optimized_partition: list[int] = field(default_factory=list)
    predicted_cpi_equal: float = 0.0
    predicted_cpi_optimized: float = 0.0

    def format(self) -> str:
        rows = []
        for t in sorted(self.curves):
            rows.append(
                [f"thread {t}"]
                + [round(v, 2) for v in self.curves[t]]
                + [self.optimized_partition[t]]
            )
        table = format_table(
            ["thread"] + [f"{w}w" for w in self.way_grid] + ["chosen ways"],
            rows,
            title=self.figure,
        )
        return (
            f"{table}\n\n"
            f"equal partition {self.equal_partition}: predicted overall CPI "
            f"{self.predicted_cpi_equal:.2f}\n"
            f"optimized partition {self.optimized_partition}: predicted overall CPI "
            f"{self.predicted_cpi_optimized:.2f}"
        )

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "app": self.app,
            "way_grid": self.way_grid,
            "curves": {str(t): v for t, v in self.curves.items()},
            "knots": {str(t): v for t, v in self.knots.items()},
            "equal_partition": self.equal_partition,
            "optimized_partition": self.optimized_partition,
            "predicted_cpi_equal": self.predicted_cpi_equal,
            "predicted_cpi_optimized": self.predicted_cpi_optimized,
        }


def fig15_runtime_models(
    config: SystemConfig | None = None,
    app: str = "cg",
    way_grid: list[int] | None = None,
) -> CPIModelsResult:
    """Fit the runtime models by executing ``app`` under the model-based
    policy, then report the curves and the partition the Fig. 13 loop picks
    from an equal starting point."""
    config = config or SystemConfig.default()
    n = config.n_threads
    total = config.total_ways
    if way_grid is None:
        step = max(1, total // 8)
        way_grid = list(range(config.min_ways, total - (n - 1) * config.min_ways + 1, step))

    policy = ModelBasedPolicy(n, total, min_ways=config.min_ways)
    runtime = RuntimeSystem(policy)
    compiled = prepare_program(app, config)
    l2 = PartitionedSharedCache(
        config.l2_geometry, n, targets=runtime.initial_targets()
    )
    CMPEngine(
        compiled, l2, config.timing, runtime,
        interval_instructions=config.interval_instructions,
    ).run()

    bank = policy.bank
    result = CPIModelsResult(
        figure=f"Figure 15: runtime CPI-vs-ways models for {app}",
        app=app,
        way_grid=list(way_grid),
    )
    for t in range(n):
        model = bank.model(t)
        result.curves[t] = [float(model(float(w))) for w in way_grid]
        ws, vals = bank.points(t)
        result.knots[t] = [(int(w), float(v)) for w, v in zip(ws, vals, strict=True)]

    result.equal_partition = equal_targets(n, total)
    result.predicted_cpi_equal = float(np.max(bank.predict(result.equal_partition)))
    result.optimized_partition = optimize_max_cpi(
        bank, result.equal_partition, total, min_ways=config.min_ways
    )
    result.predicted_cpi_optimized = float(np.max(bank.predict(result.optimized_partition)))
    return result
