"""Partitioning snapshot: paper Figure 18 (§VII-A).

The paper shows four consecutive execution intervals of NAS CG: the way
allocation per thread and the resulting overall CPI, starting from the
equal partition and converging on a partition that feeds the slow thread
(thread 3 in the paper, CPI 6.35 vs ~3 for the others), reducing overall
CPI interval over interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_table
from repro.experiments.runner import get_result
from repro.sim.config import SystemConfig

__all__ = ["SnapshotResult", "fig18_partition_snapshot"]


@dataclass
class SnapshotResult:
    figure: str
    app: str
    #: one row per interval: (index, targets, per-thread CPI, overall CPI)
    rows: list[dict] = field(default_factory=list)

    def format(self) -> str:
        n = len(self.rows[0]["targets"]) if self.rows else 0
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [f"interval {row['index'] + 1}"]
                + list(row["targets"])
                + [round(row["overall_cpi"], 2)]
            )
        return format_table(
            ["interval"] + [f"thread {t} ways" for t in range(n)] + ["overall CPI"],
            table_rows,
            title=self.figure,
        )

    def to_dict(self) -> dict:
        return {"figure": self.figure, "app": self.app, "rows": self.rows}


def fig18_partition_snapshot(
    config: SystemConfig | None = None,
    app: str = "cg",
    n_intervals: int = 4,
    start: int = 0,
) -> SnapshotResult:
    """Way allocations and overall CPI across consecutive intervals of the
    model-based run (paper Fig. 18 shows four intervals of CG).

    Overall CPI follows the paper's objective: the maximum per-thread CPI
    of the interval (the critical thread's CPI determines progress).
    """
    config = config or SystemConfig.default()
    r = get_result(app, "model-based", config)
    if start < 0 or start + n_intervals > len(r.intervals):
        raise ValueError(
            f"requested intervals [{start}, {start + n_intervals}) out of range "
            f"(run has {len(r.intervals)})"
        )
    result = SnapshotResult(
        figure=f"Figure 18: dynamic partitioning snapshot of {app}",
        app=app,
    )
    for rec in r.intervals[start : start + n_intervals]:
        obs = rec.observation
        result.rows.append(
            {
                "index": obs.index,
                "targets": list(obs.targets),
                "cpi": [round(c, 3) for c in obs.cpi],
                "overall_cpi": obs.overall_cpi,
            }
        )
    return result
