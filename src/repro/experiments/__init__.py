"""Experiment harness: one runner per table and figure in the paper.

Every runner takes an optional :class:`~repro.sim.SystemConfig` and
returns a result object with ``format()`` (terminal rendering) and
``to_dict()`` (serialisation).  See ``EXPERIMENTS`` for the id -> runner
map and DESIGN.md §4 for the per-experiment index.
"""

from repro.experiments.ablation import (
    ablation_cpi_vs_model,
    ablation_fitting,
    ablation_interval_length,
    ablation_termination_rule,
)
from repro.experiments.comparison import (
    fig19_vs_private,
    fig20_vs_shared,
    fig21_vs_throughput,
    fig22_eight_core,
    speedup_table,
)
from repro.experiments.config_fig import fig2_system_configuration
from repro.experiments.interaction import (
    fig8_interaction_fraction,
    fig9_interaction_breakdown,
)
from repro.experiments.migration import migration_resilience
from repro.experiments.models_fig import fig15_runtime_models
from repro.experiments.motivation import (
    fig3_performance_variability,
    fig4_miss_variability,
    fig5_cpi_miss_correlation,
    fig6_swim_cpi_phases,
    fig7_swim_miss_phases,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.runner import (
    clear_result_cache,
    configure,
    execution_stats,
    get_result,
    get_results,
    reset_execution_stats,
)
from repro.experiments.sensitivity import cpi_vs_ways_curve, fig10_way_sensitivity
from repro.experiments.snapshot import fig18_partition_snapshot

__all__ = [
    "EXPERIMENTS",
    "ablation_cpi_vs_model",
    "ablation_fitting",
    "ablation_interval_length",
    "ablation_termination_rule",
    "clear_result_cache",
    "configure",
    "cpi_vs_ways_curve",
    "execution_stats",
    "get_results",
    "reset_execution_stats",
    "fig10_way_sensitivity",
    "fig15_runtime_models",
    "fig18_partition_snapshot",
    "fig19_vs_private",
    "fig20_vs_shared",
    "fig21_vs_throughput",
    "fig22_eight_core",
    "fig2_system_configuration",
    "fig3_performance_variability",
    "fig4_miss_variability",
    "fig5_cpi_miss_correlation",
    "fig6_swim_cpi_phases",
    "fig7_swim_miss_phases",
    "fig8_interaction_fraction",
    "fig9_interaction_breakdown",
    "get_experiment",
    "get_result",
    "list_experiments",
    "migration_resilience",
    "speedup_table",
]
