"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but experiments the reproduction needs to
justify its own engineering decisions:

* **interval length** — the paper states results vary little with the
  execution-interval length; we sweep it.
* **model fitting** — cubic spline vs pure linear interpolation for the
  runtime CPI models (the paper notes the fitter is swappable).
* **termination rule** — the literal Fig. 13 rule (exit when the critical
  thread's identity changes) vs our improvement-based refinement; the
  literal rule deadlocks when the runner-up thread sits just below the
  critical thread (see `repro.partition.model_based`).
* **scheme** — the simple CPI-proportional scheme vs the model-based
  scheme; the paper reports the model-based variant won in all cases they
  tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_table
from repro.experiments.runner import get_result
from repro.partition.model_based import ModelBasedPolicy
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application
from repro.trace.workloads import list_workloads

__all__ = [
    "AblationResult",
    "ablation_cpi_vs_model",
    "ablation_fitting",
    "ablation_interval_length",
    "ablation_termination_rule",
]

# Applications with enough cache pressure to differentiate policies.
DEFAULT_ABLATION_APPS = ["swim", "mgrid", "cg", "mg"]


@dataclass
class AblationResult:
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=self.title)
        return f"{text}\n\n{self.notes}" if self.notes else text

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        }


def ablation_interval_length(
    config: SystemConfig | None = None,
    apps: list[str] | None = None,
    scales: tuple[float, ...] = (0.5, 1.0, 2.0),
) -> AblationResult:
    """Speedup over the shared cache as the interval length varies.

    The total simulated work is held constant: halving the interval
    doubles the interval count.
    """
    base = config or SystemConfig.default()
    apps = apps or DEFAULT_ABLATION_APPS
    out = AblationResult(
        title="Ablation: execution-interval length (speedup of model-based over shared)",
        headers=["app"] + [f"{s:g}x interval" for s in scales],
    )
    for app in apps:
        row: list[object] = [app]
        for s in scales:
            cfg = base.with_(
                interval_instructions=max(1000, int(base.interval_instructions * s)),
                n_intervals=max(4, int(round(base.n_intervals / s))),
            )
            dyn = get_result(app, "model-based", cfg)
            shared = get_result(app, "shared", cfg)
            row.append(f"{dyn.speedup_over(shared):+.1%}")
        out.rows.append(row)
    out.notes = (
        "the paper reports little variation when the interval is grown or "
        "shrunk; large deviations here would indicate over-tuning."
    )
    return out


def ablation_fitting(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> AblationResult:
    """Spline-with-linear-extrapolation vs clamped extrapolation models."""
    config = config or SystemConfig.default()
    apps = apps or DEFAULT_ABLATION_APPS
    out = AblationResult(
        title="Ablation: model extrapolation mode (speedup over shared)",
        headers=["app", "linear extrapolation", "clamped extrapolation"],
    )
    for app in apps:
        shared = get_result(app, "shared", config)
        linear = get_result(app, "model-based", config)
        clamped = run_application(
            app,
            ModelBasedPolicy(
                config.n_threads,
                config.total_ways,
                min_ways=config.min_ways,
                extrapolation="clamp",
            ),
            config,
        )
        out.rows.append(
            [
                app,
                f"{linear.speedup_over(shared):+.1%}",
                f"{clamped.speedup_over(shared):+.1%}",
            ]
        )
    out.notes = (
        "clamped models cannot predict improvement beyond the observed way "
        "range, so the optimiser never explores upward and partitions freeze "
        "early; linear extrapolation is the runtime's exploration mechanism."
    )
    return out


def ablation_termination_rule(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> AblationResult:
    """Literal Fig. 13 identity-change termination vs improvement-based."""
    config = config or SystemConfig.default()
    apps = apps or DEFAULT_ABLATION_APPS
    out = AblationResult(
        title="Ablation: reallocation termination rule (speedup over shared)",
        headers=["app", "improvement rule (ours)", "identity rule (paper literal)"],
    )
    for app in apps:
        shared = get_result(app, "shared", config)
        ours = get_result(app, "model-based", config)
        literal = run_application(
            app,
            ModelBasedPolicy(
                config.n_threads,
                config.total_ways,
                min_ways=config.min_ways,
                paper_termination=True,
            ),
            config,
        )
        out.rows.append(
            [
                app,
                f"{ours.speedup_over(shared):+.1%}",
                f"{literal.speedup_over(shared):+.1%}",
            ]
        )
    out.notes = (
        "the literal rule reverts the first move whenever it flips which "
        "thread is critical, deadlocking when the runner-up sits just below "
        "the critical thread."
    )
    return out


def ablation_cpi_vs_model(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> AblationResult:
    """Simple CPI-proportional scheme vs the model-based scheme (§VII:
    the paper evaluates only the model-based scheme because it won in all
    tested cases)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    out = AblationResult(
        title="Ablation: CPI-proportional vs model-based (speedup over shared)",
        headers=["app", "model-based", "cpi-proportional"],
    )
    model_wins = 0
    for app in apps:
        shared = get_result(app, "shared", config)
        model = get_result(app, "model-based", config)
        cpi = get_result(app, "cpi-proportional", config)
        if model.total_cycles <= cpi.total_cycles:
            model_wins += 1
        out.rows.append(
            [
                app,
                f"{model.speedup_over(shared):+.1%}",
                f"{cpi.speedup_over(shared):+.1%}",
            ]
        )
    out.notes = (
        f"model-based at least matches CPI-proportional on {model_wins}/{len(apps)} "
        "applications (the paper reports it outperformed in all tested cases)."
    )
    return out
