"""Cache-sensitivity experiment: paper Figure 10 (§IV-A3).

The paper runs SWIM threads with fixed allocations of 16 and then 32 ways
and shows that thread 1's CPI improves substantially with the extra ways
while thread 2's barely moves — i.e. threads of one application differ in
*cache sensitivity*, so taking ways from an insensitive thread is nearly
free and giving ways to an insensitive critical thread is nearly useless.

We reproduce it by running the application under a sequence of static
partitions in which one probe thread's allocation varies while the other
threads split the remainder evenly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.reporting import format_table
from repro.partition.static import StaticPolicy
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application

__all__ = ["WaySensitivityResult", "fig10_way_sensitivity", "cpi_vs_ways_curve"]


@dataclass
class WaySensitivityResult:
    figure: str
    app: str
    way_points: list[int]
    #: cpi[thread][k] = overall CPI of `thread` when it owns way_points[k] ways
    cpi: dict[int, list[float]] = field(default_factory=dict)

    def sensitivity(self, thread: int) -> float:
        """Relative CPI reduction from the smallest to the largest probe
        allocation (positive = thread benefits from cache)."""
        series = self.cpi[thread]
        if series[0] == 0:
            return 0.0
        return (series[0] - series[-1]) / series[0]

    def format(self) -> str:
        rows = []
        for t, series in sorted(self.cpi.items()):
            rows.append(
                [f"thread {t}"]
                + [round(v, 2) for v in series]
                + [f"{self.sensitivity(t) * 100:+.1f}%"]
            )
        return format_table(
            ["thread"] + [f"{w} ways" for w in self.way_points] + ["CPI reduction"],
            rows,
            title=self.figure,
        )

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "app": self.app,
            "way_points": self.way_points,
            "cpi": {str(t): v for t, v in self.cpi.items()},
        }


def _partition_with_probe(
    probe: int, probe_ways: int, n_threads: int, total_ways: int
) -> list[int]:
    """Fixed partition giving ``probe_ways`` to one thread, splitting the
    rest evenly (remainder to low thread ids)."""
    others = total_ways - probe_ways
    n_other = n_threads - 1
    if others < n_other:
        raise ValueError(f"{probe_ways} probe ways leave too few for the other threads")
    base, extra = divmod(others, n_other)
    targets = []
    k = 0
    for t in range(n_threads):
        if t == probe:
            targets.append(probe_ways)
        else:
            targets.append(base + (1 if k < extra else 0))
            k += 1
    return targets


def cpi_vs_ways_curve(
    app: str,
    thread: int,
    way_points: list[int],
    config: SystemConfig,
) -> list[float]:
    """Overall CPI of ``thread`` for each fixed allocation in ``way_points``."""
    out = []
    for w in way_points:
        targets = _partition_with_probe(thread, w, config.n_threads, config.total_ways)
        policy = StaticPolicy(config.n_threads, config.total_ways, targets, min_ways=0)
        r = run_application(app, policy, config)
        out.append(r.thread_cpi(thread))
    return out


def fig10_way_sensitivity(
    config: SystemConfig | None = None,
    app: str = "swim",
    way_points: list[int] | None = None,
    threads: list[int] | None = None,
) -> WaySensitivityResult:
    """CPI of each probed thread at fixed way allocations (paper Fig. 10
    probes 16 and 32 ways; with our 32-way cache shared by four threads we
    probe 8 and 16 by default, the same 1:2 capacity ratio)."""
    config = config or SystemConfig.default()
    if way_points is None:
        way_points = [config.total_ways // 4, config.total_ways // 2]
    threads = threads if threads is not None else list(range(config.n_threads))
    result = WaySensitivityResult(
        figure=f"Figure 10: CPI of {app} threads at fixed way allocations",
        app=app,
        way_points=list(way_points),
    )
    for t in threads:
        result.cpi[t] = cpi_vs_ways_curve(app, t, list(way_points), config)
    return result
