"""Shared machinery for experiment runners: engine- and store-backed results.

Several figures read the same underlying runs (e.g. Figs. 3, 4 and 5 all
analyse the nine applications under the shared cache; Figs. 19-21 all need
the model-based run).  Lookups resolve in three layers:

1. an in-process memo keyed by ``(app, policy, SystemConfig)`` — the
   frozen config dataclass itself, so the key can never drift out of sync
   with the config's fields;
2. the configured :class:`repro.exec.ResultStore` (if any) — an on-disk
   cache that persists results across harness invocations;
3. the configured :class:`repro.exec.ExecutionEngine` — serial by default;
   a :class:`~repro.exec.ProcessPoolEngine` fans batched misses (see
   :func:`get_results`) out over worker processes.

``python -m repro``'s ``--jobs`` / ``--cache-dir`` flags configure the
engine and store via :func:`configure`.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.records import RunResult
from repro.exec.engine import ExecutionEngine, SerialEngine
from repro.exec.jobs import JobSpec
from repro.exec.store import ResultStore
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer
from repro.sim.config import SystemConfig

__all__ = [
    "clear_result_cache",
    "configure",
    "current_engine",
    "current_store",
    "execution_stats",
    "get_result",
    "get_results",
    "reset_execution_stats",
]

_MEMO: dict[tuple[str, str, SystemConfig], RunResult] = {}
_ENGINE: ExecutionEngine = SerialEngine()
_STORE: ResultStore | None = None
_STATS = {"memo_hits": 0, "store_hits": 0, "simulated": 0}

_UNSET = object()


def configure(*, engine=_UNSET, store=_UNSET) -> None:
    """Install the engine and/or result store used by all lookups.

    Pass ``engine=None`` to restore the default :class:`SerialEngine`;
    pass ``store=None`` to detach the persistent store.  Omitted keywords
    leave the current setting untouched.
    """
    global _ENGINE, _STORE
    if engine is not _UNSET:
        _ENGINE = engine if engine is not None else SerialEngine()
    if store is not _UNSET:
        _STORE = store


def current_engine() -> ExecutionEngine:
    return _ENGINE


def current_store() -> ResultStore | None:
    return _STORE


def execution_stats() -> dict:
    """Lookup counters since the last reset (store counters included)."""
    stats = dict(_STATS)
    if _STORE is not None:
        stats["store"] = _STORE.stats()
    return stats


def reset_execution_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def get_result(app: str, policy: str, config: SystemConfig) -> RunResult:
    """Run (or fetch the memoised/stored) simulation of ``app`` under
    ``policy``.

    Only string policy names are cacheable — pre-built policy objects carry
    state and must go through :func:`repro.sim.run_application` directly.
    """
    return get_results([(app, policy)], config)[(app, policy)]


def get_results(
    pairs: Iterable[tuple[str, str]], config: SystemConfig
) -> dict[tuple[str, str], RunResult]:
    """Resolve a batch of ``(app, policy)`` pairs against one config.

    Memo and store hits are filled first; the remaining misses go to the
    configured engine as one batch — with a pool engine this is where a
    figure's whole working set simulates in parallel.  Raises
    ``RuntimeError`` if any job still fails after the engine's retries.
    """
    pairs = list(dict.fromkeys(pairs))
    results: dict[tuple[str, str], RunResult] = {}
    misses: list[tuple[str, str]] = []
    for app, policy in pairs:
        key = (app, policy, config)
        memoised = _MEMO.get(key)
        if memoised is not None:
            _STATS["memo_hits"] += 1
            results[(app, policy)] = memoised
            continue
        if _STORE is not None:
            stored = _STORE.get(JobSpec(app, policy, config))
            if stored is not None:
                _STATS["store_hits"] += 1
                _MEMO[key] = stored
                results[(app, policy)] = stored
                continue
        misses.append((app, policy))

    if misses:
        specs = [JobSpec(app, policy, config) for app, policy in misses]
        # Fixed span name: the report aggregates time-in-phase by name.
        with get_tracer().span("simulate-batch"):
            outcomes = _ENGINE.run(specs)
        METRICS.counter("experiments.batches").inc()
        for spec, outcome in zip(specs, outcomes, strict=True):
            if not outcome.ok:
                raise RuntimeError(
                    f"simulation of {spec.label} failed after "
                    f"{outcome.attempts} attempt(s): {outcome.error}"
                )
            result = outcome.result
            if result is None:
                # The worker published the result to the shared store
                # instead of relaying it; read it back from there.
                result = _STORE.get(spec) if _STORE is not None else None
                if result is None:
                    raise RuntimeError(
                        f"{spec.label}: worker published the result but it is "
                        "not readable locally — point --cache-dir at the "
                        "store the fleet publishes to, or drop --publish-results"
                    )
            _STATS["simulated"] += 1
            if _STORE is not None and outcome.result is not None:
                _STORE.put(spec, outcome.result)
            _MEMO[(spec.app, spec.policy, config)] = result
            results[(spec.app, spec.policy)] = result
    return results


def clear_result_cache() -> None:
    """Drop the in-process memo (the on-disk store is unaffected)."""
    _MEMO.clear()
