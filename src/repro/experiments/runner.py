"""Shared machinery for experiment runners: memoised simulation results.

Several figures read the same underlying runs (e.g. Figs. 3, 4 and 5 all
analyse the nine applications under the shared cache; Figs. 19-21 all need
the model-based run).  Results are memoised per ``(app, policy, config)``
so a full harness invocation simulates each combination exactly once.
"""

from __future__ import annotations

from repro.core.records import RunResult
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application

__all__ = ["clear_result_cache", "get_result"]

_RESULT_CACHE: dict[tuple, RunResult] = {}


def _key(app: str, policy: str, config: SystemConfig) -> tuple:
    return (
        app,
        policy,
        config.n_threads,
        config.n_intervals,
        config.interval_instructions,
        config.sections_per_interval,
        config.seed,
        config.min_ways,
        config.l1_geometry,
        config.l2_geometry,
        config.timing,
    )


def get_result(app: str, policy: str, config: SystemConfig) -> RunResult:
    """Run (or fetch the memoised) simulation of ``app`` under ``policy``.

    Only string policy names are memoised — pre-built policy objects carry
    state and must go through :func:`repro.sim.run_application` directly.
    """
    key = _key(app, policy, config)
    result = _RESULT_CACHE.get(key)
    if result is None:
        result = run_application(app, policy, config)
        _RESULT_CACHE[key] = result
    return result


def clear_result_cache() -> None:
    _RESULT_CACHE.clear()
