"""Thread-migration resilience experiment (paper §VII, text).

The paper pins threads to cores but reports that unpinned runs behaved
similarly: Solaris rarely migrated threads, and when it did, predictions
were briefly suboptimal and "our approach quickly adapted to the new
thread-mapping".

We model a migration as two threads swapping cores mid-run.  From the
runtime's perspective the per-core CPI models suddenly describe the wrong
thread (the cached footprints also swap places); the dynamic scheme must
re-learn.  The experiment builds a workload whose two extreme threads
exchange behaviours at the midpoint and reports (a) the end-to-end cost
relative to an unperturbed run and (b) the recovery time — intervals
until the partition again gives the (new) big-footprint core the largest
share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_table
from repro.partition.model_based import ModelBasedPolicy
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application
from repro.trace.behavior import PhaseSegment, ThreadBehavior
from repro.trace.workloads import WorkloadProfile

__all__ = ["MigrationResult", "migration_resilience"]


def _migration_profile(flip_at: int, n_intervals: int) -> WorkloadProfile:
    """Threads 0 and 1 exchange behaviours after ``flip_at`` intervals."""
    big = 8.0
    small = 1.0 / big
    return WorkloadProfile(
        name="migration",
        suite="NAS",
        description="two threads swap cores mid-run",
        base_behaviors=(
            ThreadBehavior(ws_lines=280, skew=2.0, mem_ratio=0.40,
                           share_frac=0.08, stream_frac=0.02),
            ThreadBehavior(ws_lines=35, skew=2.0, mem_ratio=0.40,
                           share_frac=0.08, stream_frac=0.02),
            ThreadBehavior(ws_lines=90, skew=2.2, mem_ratio=0.32,
                           share_frac=0.08, stream_frac=0.05),
            ThreadBehavior(ws_lines=80, skew=2.2, mem_ratio=0.32,
                           share_frac=0.08, stream_frac=0.05),
        ),
        phases=(
            PhaseSegment(intervals=flip_at, ws_scales=(1.0, 1.0, 1.0, 1.0)),
            PhaseSegment(
                intervals=max(1, n_intervals - flip_at),
                # ws 280*small ~ 35 and 35*big = 280: a clean swap.
                ws_scales=(small, big, 1.0, 1.0),
            ),
        ),
    )


@dataclass
class MigrationResult:
    figure: str
    flip_interval: int
    recovery_intervals: int | None
    dyn_cycles: float
    no_probe_cycles: float
    shared_cycles: float
    static_cycles: float
    targets_trace: list[tuple[int, ...]]

    @property
    def dyn_vs_shared(self) -> float:
        return self.shared_cycles / self.dyn_cycles - 1.0

    @property
    def dyn_vs_static(self) -> float:
        return self.static_cycles / self.dyn_cycles - 1.0

    @property
    def dyn_vs_no_probe(self) -> float:
        return self.no_probe_cycles / self.dyn_cycles - 1.0

    def format(self) -> str:
        rows = [
            ["dynamic (with migration)", f"{self.dyn_cycles / 1e6:.2f}M", ""],
            ["dynamic without probing", f"{self.no_probe_cycles / 1e6:.2f}M",
             f"{self.dyn_vs_no_probe:+.1%}"],
            ["shared cache", f"{self.shared_cycles / 1e6:.2f}M", f"{self.dyn_vs_shared:+.1%}"],
            ["static equal", f"{self.static_cycles / 1e6:.2f}M", f"{self.dyn_vs_static:+.1%}"],
        ]
        recov = (
            f"{self.recovery_intervals} intervals"
            if self.recovery_intervals is not None
            else "not within the run"
        )
        return (
            format_table(["configuration", "cycles", "dynamic gain"], rows, title=self.figure)
            + f"\n\nmigration at interval {self.flip_interval}; "
            f"partition half-recovered after {recov}"
        )

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "flip_interval": self.flip_interval,
            "recovery_intervals": self.recovery_intervals,
            "dyn_cycles": self.dyn_cycles,
            "no_probe_cycles": self.no_probe_cycles,
            "shared_cycles": self.shared_cycles,
            "static_cycles": self.static_cycles,
            "dyn_vs_shared": self.dyn_vs_shared,
            "dyn_vs_static": self.dyn_vs_static,
            "targets_trace": [list(t) for t in self.targets_trace],
        }


def migration_resilience(
    config: SystemConfig | None = None, *, flip_at: int | None = None
) -> MigrationResult:
    """Run the migration scenario under the dynamic scheme and baselines."""
    config = config or SystemConfig.default()
    flip_at = flip_at if flip_at is not None else config.n_intervals // 2
    if not 1 <= flip_at < config.n_intervals:
        raise ValueError(f"flip_at={flip_at} outside the run's {config.n_intervals} intervals")
    profile = _migration_profile(flip_at, config.n_intervals)

    dyn = run_application(profile, "model-based", config)
    no_probe = run_application(
        profile,
        ModelBasedPolicy(config.n_threads, config.total_ways,
                         min_ways=config.min_ways, probe=False),
        config,
    )
    shared = run_application(profile, "shared", config)
    static = run_application(profile, "static-equal", config)

    # Recovery time: first interval at/after the flip where core 1 — which
    # now hosts the big footprint, but held ~min_ways before the flip —
    # climbs back to at least the equal (fair) share.  Full crossover with
    # core 0 depends on how far the pre-flip partition had drifted and is
    # a poor clock for adaptation speed.
    fair_share = config.total_ways // config.n_threads
    recovery = None
    for rec in dyn.intervals:
        idx = rec.observation.index
        if idx < flip_at:
            continue
        if rec.observation.targets[1] >= fair_share:
            recovery = idx - flip_at
            break

    return MigrationResult(
        figure="Migration resilience (paper §VII: unpinned-thread robustness)",
        flip_interval=flip_at,
        recovery_intervals=recovery,
        dyn_cycles=dyn.total_cycles,
        no_probe_cycles=no_probe.total_cycles,
        shared_cycles=shared.total_cycles,
        static_cycles=static.total_cycles,
        targets_trace=[rec.observation.targets for rec in dyn.intervals],
    )
