"""Motivation experiments: paper Figures 3-7 (§IV-A1).

These characterise thread behaviour under the *shared unpartitioned*
cache — the paper's starting observations:

* Fig. 3 — per-thread performance (1/time) normalised to the fastest
  thread: wide variability; the lowest bar is the critical-path thread.
* Fig. 4 — per-thread L2 misses normalised to the heaviest misser:
  mirrors Fig. 3.
* Fig. 5 — Pearson correlation between per-interval CPI and per-interval
  L2 misses of the critical thread (paper average: 0.97).
* Fig. 6 — per-thread CPI of SWIM across the 50 intervals (phases).
* Fig. 7 — per-interval L2 misses of one SWIM thread, tracking Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import get_result, get_results
from repro.mathx.stats import pearson_correlation
from repro.sim.config import SystemConfig
from repro.trace.workloads import list_workloads

__all__ = [
    "MotivationResult",
    "fig3_performance_variability",
    "fig4_miss_variability",
    "fig5_cpi_miss_correlation",
    "fig6_swim_cpi_phases",
    "fig7_swim_miss_phases",
]


@dataclass
class MotivationResult:
    """Container shared by the motivation figures."""

    figure: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def format(self) -> str:
        parts = []
        if self.rows:
            parts.append(format_table(self.headers, self.rows, title=self.figure))
        for name, values in self.series.items():
            parts.append(format_series(name, values))
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "headers": self.headers,
            "rows": self.rows,
            "series": self.series,
            "notes": self.notes,
        }


def fig3_performance_variability(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> MotivationResult:
    """Per-thread performance under the shared cache, normalised to the
    fastest thread of each application (paper Fig. 3)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    out = MotivationResult(
        figure="Figure 3: normalized per-thread performance (shared cache)",
        headers=["app"] + [f"thread {t}" for t in range(config.n_threads)] + ["critical"],
    )
    get_results([(app, "shared") for app in apps], config)  # batch: parallel engines fan out here
    for app in apps:
        r = get_result(app, "shared", config)
        # Performance of a thread = 1 / busy time; normalise to fastest.
        perf = np.array(
            [1.0 / r.thread_busy_cycles[t] if r.thread_busy_cycles[t] else 0.0
             for t in range(r.n_threads)]
        )
        norm = perf / perf.max() if perf.max() > 0 else perf
        critical = int(np.argmin(norm))
        out.rows.append([app] + [round(float(v), 3) for v in norm] + [f"thread {critical}"])
    return out


def fig4_miss_variability(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> MotivationResult:
    """Per-thread L2 misses normalised to the heaviest-missing thread
    (paper Fig. 4)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    out = MotivationResult(
        figure="Figure 4: normalized per-thread L2 misses (shared cache)",
        headers=["app"] + [f"thread {t}" for t in range(config.n_threads)],
    )
    get_results([(app, "shared") for app in apps], config)
    for app in apps:
        r = get_result(app, "shared", config)
        misses = np.array(r.l2_totals.misses, dtype=float)
        norm = misses / misses.max() if misses.max() > 0 else misses
        out.rows.append([app] + [round(float(v), 3) for v in norm])
    return out


def fig5_cpi_miss_correlation(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> MotivationResult:
    """Correlation between per-interval CPI and L2 misses (paper Fig. 5).

    The paper computes the correlation coefficient per application and
    reports a 0.97 average; we correlate the critical thread's interval
    series and also report the all-thread average.
    """
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    out = MotivationResult(
        figure="Figure 5: correlation coefficient between CPI and L2 misses",
        headers=["app", "critical-thread corr", "mean over threads"],
    )
    corrs = []
    get_results([(app, "shared") for app in apps], config)
    for app in apps:
        r = get_result(app, "shared", config)
        per_thread = []
        for t in range(r.n_threads):
            cpi = r.cpi_series(t)
            misses = [float(m) for m in r.miss_series(t)]
            if len(cpi) >= 2:
                per_thread.append(pearson_correlation(cpi, misses))
        crit = max(range(r.n_threads), key=lambda t: r.thread_cpi(t))
        crit_corr = pearson_correlation(
            r.cpi_series(crit), [float(m) for m in r.miss_series(crit)]
        )
        mean_corr = float(np.mean(per_thread)) if per_thread else 0.0
        corrs.append(mean_corr)
        out.rows.append([app, round(crit_corr, 3), round(mean_corr, 3)])
    out.notes = (
        f"average correlation across applications: {float(np.mean(corrs)):.3f} "
        "(paper reports an average of 0.97)"
    )
    return out


def _full_intervals(result, config: SystemConfig):
    """Interval records excluding a trailing partial interval (the final
    flush can cover only a fraction of the budget and would distort the
    plotted series)."""
    budget = config.interval_instructions * config.n_threads
    records = list(result.intervals)
    if records and sum(records[-1].observation.instructions) < budget // 2:
        records.pop()
    return records


def fig6_swim_cpi_phases(
    config: SystemConfig | None = None, app: str = "swim"
) -> MotivationResult:
    """Per-thread CPI of SWIM over the run's intervals (paper Fig. 6)."""
    config = config or SystemConfig.default()
    r = get_result(app, "shared", config)
    out = MotivationResult(
        figure=f"Figure 6: per-interval CPI of {app} threads (shared cache)",
        headers=[],
    )
    records = _full_intervals(r, config)
    for t in range(r.n_threads):
        out.series[f"{app} thread {t} CPI"] = [
            round(rec.observation.cpi[t], 3) for rec in records
        ]
    return out


def fig7_swim_miss_phases(
    config: SystemConfig | None = None, app: str = "swim", thread: int = 1
) -> MotivationResult:
    """Per-interval L2 misses of one SWIM thread (paper Fig. 7 uses thread
    2 in 1-based numbering, i.e. index 1)."""
    config = config or SystemConfig.default()
    r = get_result(app, "shared", config)
    if not 0 <= thread < r.n_threads:
        raise ValueError(f"thread {thread} out of range")
    out = MotivationResult(
        figure=f"Figure 7: per-interval L2 misses of {app} thread {thread}",
        headers=[],
    )
    records = _full_intervals(r, config)
    cpi = [rec.observation.cpi[thread] for rec in records]
    misses = [float(rec.observation.l2.misses[thread]) for rec in records]
    out.series[f"{app} thread {thread} L2 misses"] = misses
    if len(cpi) >= 2:
        out.notes = (
            f"correlation with the thread's CPI series (Fig. 6): "
            f"{pearson_correlation(cpi, misses):.3f}"
        )
    return out
