"""Headline comparisons: paper Figures 19-21 and the 8-core Figure 22.

* Fig. 19 — dynamic model-based partitioning vs the statically (equal)
  partitioned cache (the private-cache / fairness baseline).  Paper: up to
  23 % improvement, ~11 % average.
* Fig. 20 — vs the shared unpartitioned cache.  Paper: up to 15 %, ~9 %
  average; three small-working-set benchmarks show only small benefit.
* Fig. 21 — vs a throughput-oriented partitioning scheme.  Paper: the
  dynamic scheme wins for all applications, by up to ~20 %.
* Fig. 22 — the same comparisons on an 8-core CMP: gains similar to the
  4-core case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.reporting import format_bar_chart, format_table
from repro.experiments.runner import get_results
from repro.sim.config import SystemConfig
from repro.trace.workloads import list_workloads

__all__ = [
    "ComparisonResult",
    "fig19_vs_private",
    "fig20_vs_shared",
    "fig21_vs_throughput",
    "fig22_eight_core",
    "speedup_table",
]


@dataclass
class ComparisonResult:
    """Speedups of the dynamic scheme over one baseline, per application."""

    figure: str
    baseline: str
    apps: list[str]
    speedups: list[float]
    extra: dict = field(default_factory=dict)

    @property
    def average(self) -> float:
        return float(np.mean(self.speedups)) if self.speedups else 0.0

    @property
    def maximum(self) -> float:
        return float(np.max(self.speedups)) if self.speedups else 0.0

    def format(self) -> str:
        chart = format_bar_chart(self.apps, self.speedups, title=self.figure)
        return (
            f"{chart}\n"
            f"average improvement: {self.average:+.1%}   max: {self.maximum:+.1%}"
        )

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "baseline": self.baseline,
            "apps": self.apps,
            "speedups": self.speedups,
            "average": self.average,
            "max": self.maximum,
            **self.extra,
        }


def _compare(
    figure: str,
    baseline: str,
    config: SystemConfig,
    apps: list[str],
    *,
    scheme: str = "model-based",
) -> ComparisonResult:
    # One batched lookup so a pool engine can simulate the whole figure's
    # working set in parallel.
    results = get_results(
        [(app, p) for app in apps for p in (scheme, baseline)], config
    )
    speedups = [
        results[(app, scheme)].speedup_over(results[(app, baseline)]) for app in apps
    ]
    return ComparisonResult(figure=figure, baseline=baseline, apps=apps, speedups=speedups)


def fig19_vs_private(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> ComparisonResult:
    """Dynamic partitioning vs statically-equal (private) cache (Fig. 19)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    return _compare(
        "Figure 19: improvement over statically partitioned (private) cache",
        "static-equal",
        config,
        apps,
    )


def fig20_vs_shared(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> ComparisonResult:
    """Dynamic partitioning vs shared unpartitioned cache (Fig. 20)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    return _compare(
        "Figure 20: improvement over shared unpartitioned cache",
        "shared",
        config,
        apps,
    )


def fig21_vs_throughput(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> ComparisonResult:
    """Dynamic partitioning vs throughput-oriented scheme (Fig. 21)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    return _compare(
        "Figure 21: improvement over throughput-oriented partitioning",
        "throughput",
        config,
        apps,
    )


@dataclass
class EightCoreResult:
    """Fig. 22: both baseline comparisons at 8 threads on 8 cores."""

    vs_private: ComparisonResult
    vs_shared: ComparisonResult

    def format(self) -> str:
        return (
            "Figure 22: 8-core CMP sensitivity\n\n"
            + self.vs_private.format()
            + "\n\n"
            + self.vs_shared.format()
        )

    def to_dict(self) -> dict:
        return {"vs_private": self.vs_private.to_dict(), "vs_shared": self.vs_shared.to_dict()}


def fig22_eight_core(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> EightCoreResult:
    """The 4-core headline comparisons repeated on an 8-core CMP."""
    config = config or SystemConfig.eight_core()
    if config.n_threads < 8:
        config = config.with_(n_threads=8)
    apps = apps or list_workloads()
    return EightCoreResult(
        vs_private=_compare(
            "8 cores: improvement over statically partitioned (private) cache",
            "static-equal",
            config,
            apps,
        ),
        vs_shared=_compare(
            "8 cores: improvement over shared unpartitioned cache",
            "shared",
            config,
            apps,
        ),
    )


def speedup_table(
    config: SystemConfig | None = None,
    apps: list[str] | None = None,
    *,
    baselines: tuple[str, ...] = ("shared", "static-equal", "throughput"),
    scheme: str = "model-based",
) -> str:
    """One table with every baseline side by side (harness convenience)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    results = get_results(
        [(app, p) for app in apps for p in (scheme, *baselines)], config
    )
    rows = []
    for app in apps:
        dyn = results[(app, scheme)]
        row: list[object] = [app]
        for b in baselines:
            row.append(f"{dyn.speedup_over(results[(app, b)]):+.1%}")
        rows.append(row)
    return format_table(
        ["app"] + [f"vs {b}" for b in baselines],
        rows,
        title=f"{scheme} improvement over each baseline",
    )
