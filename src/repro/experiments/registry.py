"""Registry mapping paper experiment ids to their runners.

Used by the benchmark harness and by ``python -m repro.experiments`` style
drivers; every entry takes an optional :class:`~repro.sim.SystemConfig`
and returns an object with ``format()`` and ``to_dict()``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.experiments.ablation import (
    ablation_cpi_vs_model,
    ablation_fitting,
    ablation_interval_length,
    ablation_termination_rule,
)
from repro.experiments.comparison import (
    fig19_vs_private,
    fig20_vs_shared,
    fig21_vs_throughput,
    fig22_eight_core,
)
from repro.experiments.config_fig import fig2_system_configuration
from repro.experiments.interaction import fig8_interaction_fraction, fig9_interaction_breakdown
from repro.experiments.migration import migration_resilience
from repro.experiments.models_fig import fig15_runtime_models
from repro.experiments.motivation import (
    fig3_performance_variability,
    fig4_miss_variability,
    fig5_cpi_miss_correlation,
    fig6_swim_cpi_phases,
    fig7_swim_miss_phases,
)
from repro.experiments.sensitivity import fig10_way_sensitivity
from repro.experiments.snapshot import fig18_partition_snapshot

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments"]

EXPERIMENTS: dict[str, Callable] = {
    "fig2": fig2_system_configuration,
    "fig3": fig3_performance_variability,
    "fig4": fig4_miss_variability,
    "fig5": fig5_cpi_miss_correlation,
    "fig6": fig6_swim_cpi_phases,
    "fig7": fig7_swim_miss_phases,
    "fig8": fig8_interaction_fraction,
    "fig9": fig9_interaction_breakdown,
    "fig10": fig10_way_sensitivity,
    "fig15": fig15_runtime_models,
    "fig18": fig18_partition_snapshot,
    "fig19": fig19_vs_private,
    "fig20": fig20_vs_shared,
    "fig21": fig21_vs_throughput,
    "fig22": fig22_eight_core,
    "migration": migration_resilience,
    "ablation-interval": ablation_interval_length,
    "ablation-fitting": ablation_fitting,
    "ablation-termination": ablation_termination_rule,
    "ablation-cpi-vs-model": ablation_cpi_vs_model,
}


def list_experiments() -> list[str]:
    return list(EXPERIMENTS)


def get_experiment(name: str) -> Callable:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}"
        ) from None
