"""Inter-thread cache interaction experiments: paper Figures 8-9 (§IV-A2).

An access is an *inter-thread interaction* when the previous access to the
same cache line came from a different thread; interactions split into
constructive (cross-thread hits — data sharing paying off) and destructive
(cross-thread evictions).  The paper measures ~11.5 % of all shared-cache
accesses to be inter-thread interactions, with a significant destructive
component — the motivation for partitioning that *controls eviction* while
preserving cross-partition hits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.reporting import format_table
from repro.experiments.runner import get_result, get_results
from repro.sim.config import SystemConfig
from repro.trace.workloads import list_workloads

__all__ = ["InteractionResult", "fig8_interaction_fraction", "fig9_interaction_breakdown"]


@dataclass
class InteractionResult:
    figure: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=self.figure)
        return f"{text}\n\n{self.notes}" if self.notes else text

    def to_dict(self) -> dict:
        return {
            "figure": self.figure,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        }


def fig8_interaction_fraction(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> InteractionResult:
    """Share of L2 accesses that are inter-thread interactions (Fig. 8)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    out = InteractionResult(
        figure="Figure 8: inter-thread share of cache interactions (shared cache)",
        headers=["app", "% of all accesses", "% of L2 accesses"],
    )
    fractions = []
    get_results([(app, "shared") for app in apps], config)  # batch: parallel engines fan out here
    for app in apps:
        r = get_result(app, "shared", config)
        frac_all = r.inter_thread_share_of_all_accesses()
        frac_l2 = r.l2_totals.inter_thread_fraction()
        fractions.append(frac_all)
        out.rows.append([app, f"{frac_all * 100:.1f}", f"{frac_l2 * 100:.1f}"])
    out.notes = (
        f"average inter-thread interaction share over all cache accesses: "
        f"{float(np.mean(fractions)) * 100:.1f}% (paper reports an 11.5% average).  "
        "The L2-only column shows the same interactions over the L1-filtered "
        "stream, where they are necessarily denser."
    )
    return out


def fig9_interaction_breakdown(
    config: SystemConfig | None = None, apps: list[str] | None = None
) -> InteractionResult:
    """Constructive vs destructive breakdown of inter-thread interactions
    (Fig. 9)."""
    config = config or SystemConfig.default()
    apps = apps or list_workloads()
    out = InteractionResult(
        figure="Figure 9: breakdown of inter-thread interactions (shared cache)",
        headers=["app", "constructive %", "destructive %"],
    )
    get_results([(app, "shared") for app in apps], config)
    for app in apps:
        r = get_result(app, "shared", config)
        cons = r.l2_totals.constructive_fraction()
        out.rows.append([app, f"{cons * 100:.1f}", f"{(1 - cons) * 100:.1f}"])
    out.notes = (
        "constructive = cross-thread hits (data sharing); destructive = "
        "cross-thread evictions.  Not all interactions are constructive — "
        "the destructive share is what partitioning suppresses."
    )
    return out
