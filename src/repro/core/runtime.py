"""The runtime system (paper §VI-C, Figs. 16-17).

The paper envisions a hierarchical arrangement: the OS hands each
application a cache allocation, and a *runtime system* inside the
application partitions that allocation among the application's threads.
:class:`RuntimeSystem` is that middle layer.  It has the paper's three
components:

* the **Cache/CPI monitor** — receives the per-interval counter deltas
  (the engine plays the role of the hardware performance counters);
* the **Partition Engine** — the pluggable
  :class:`~repro.partition.base.PartitioningPolicy`;
* the **Configuration Unit** — validates the decision and hands it back to
  the engine, which applies it to the cache hardware.

It also keeps an audit log of every decision, which the snapshot
experiment (paper Fig. 18) and the overhead accounting read.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import IntervalObservation
from repro.obs.events import IntervalEvent, RepartitionEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.partition.base import PartitioningPolicy

__all__ = ["PartitionDecision", "RuntimeSystem"]


@dataclass(frozen=True)
class PartitionDecision:
    """One entry of the runtime's audit log."""

    interval_index: int
    observed_cpi: tuple[float, ...]
    previous_targets: tuple[int, ...]
    new_targets: tuple[int, ...]

    @property
    def changed(self) -> bool:
        return self.previous_targets != self.new_targets


class RuntimeSystem:
    """Monitor -> partition engine -> configuration unit, per interval.

    When given an enabled :class:`~repro.obs.tracer.Tracer`, the runtime
    narrates the loop: one ``interval`` event per invocation (the
    monitor's observation, including what the policy's models *predicted*
    this interval would look like when they chose its targets) and one
    ``repartition`` event per decision that changed the partition.  With
    the default :data:`~repro.obs.tracer.NULL_TRACER` the instrumentation
    reduces to a single branch per interval.
    """

    def __init__(
        self, policy: PartitioningPolicy, *, tracer: Tracer | None = None, app: str = ""
    ) -> None:
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.app = app
        self.decisions: list[PartitionDecision] = []
        self.invocations = 0
        # Prediction the policy made for the *next* interval, held so the
        # next interval event can pair predicted against observed CPI.
        self._pending_prediction: tuple[float, ...] | None = None

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def enforce_partition(self) -> bool:
        return self.policy.enforce_partition

    def initial_targets(self) -> list[int]:
        return self.policy.initial_targets()

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        """Called by the engine at each interval boundary."""
        self.invocations += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                IntervalEvent(
                    app=self.app,
                    policy=self.name,
                    index=obs.index,
                    cpi=obs.cpi,
                    misses=tuple(obs.l2.misses),
                    ways=obs.targets,
                    critical_thread=obs.critical_thread,
                    predicted_cpi=self._pending_prediction,
                )
            )
        targets = self.policy.on_interval(obs)
        if tracer.enabled:
            # A model-based policy refreshed its forecast while deciding;
            # pair it with the *next* interval's observation.
            self._pending_prediction = getattr(self.policy, "last_predicted_cpi", None)
        if targets is None:
            return None
        targets = [int(w) for w in targets]
        if len(targets) != len(obs.targets) or sum(targets) != sum(obs.targets):
            raise ValueError(
                f"policy {self.name!r} returned invalid targets {targets} "
                f"for previous assignment {obs.targets}"
            )
        if tracer.enabled and tuple(targets) != obs.targets:
            moved = sum(abs(n - o) for n, o in zip(targets, obs.targets)) // 2
            tracer.emit(
                RepartitionEvent(
                    app=self.app,
                    policy=self.name,
                    index=obs.index,
                    old=obs.targets,
                    new=tuple(targets),
                    trigger=getattr(self.policy, "last_trigger", "policy"),
                    moved_ways=moved,
                    iterations=getattr(self.policy, "last_iterations", None),
                )
            )
        self.decisions.append(
            PartitionDecision(
                interval_index=obs.index,
                observed_cpi=obs.cpi,
                previous_targets=obs.targets,
                new_targets=tuple(targets),
            )
        )
        return targets

    @property
    def reconfigurations(self) -> int:
        """Decisions that actually changed the partition."""
        return sum(1 for d in self.decisions if d.changed)

    def reset(self) -> None:
        self.policy.reset()
        self.decisions.clear()
        self.invocations = 0
        self._pending_prediction = None
