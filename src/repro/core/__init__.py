"""The paper's primary contribution: the intra-application partitioning runtime."""

from repro.core.models import ThreadModelBank
from repro.core.records import IntervalObservation, IntervalRecord, RunResult
from repro.core.runtime import PartitionDecision, RuntimeSystem

__all__ = [
    "IntervalObservation",
    "IntervalRecord",
    "PartitionDecision",
    "RunResult",
    "RuntimeSystem",
    "ThreadModelBank",
]
