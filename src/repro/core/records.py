"""Interval observations and run results.

These are the data structures exchanged between the execution engine, the
runtime system (the paper's Fig. 17 "Cache/CPI monitor → Partition Engine →
Configuration Unit" loop) and the experiment harness.  They deliberately
live outside both the `cpu` and `partition` packages so neither needs to
import the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import StatsSnapshot
from repro.sync.barrier import BarrierLog

__all__ = ["IntervalObservation", "IntervalRecord", "RunResult"]


@dataclass(frozen=True)
class IntervalObservation:
    """What the runtime's monitor reads at one interval boundary.

    ``cpi`` is the *busy* CPI — cycles spent executing (including the
    thread's own memory latency) divided by instructions retired, with
    barrier stall cycles excluded.  Stall time is an effect of the slack we
    are trying to remove, not a property of the thread's own progress, so
    feeding it back into the partitioning signal would mark the *fastest*
    thread (which waits longest) as slow.
    """

    index: int
    cpi: tuple[float, ...]
    instructions: tuple[int, ...]
    busy_cycles: tuple[float, ...]
    targets: tuple[int, ...]
    l2: StatsSnapshot

    @property
    def n_threads(self) -> int:
        return len(self.cpi)

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "index": self.index,
            "cpi": list(self.cpi),
            "instructions": list(self.instructions),
            "busy_cycles": list(self.busy_cycles),
            "targets": list(self.targets),
            "l2": self.l2.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntervalObservation":
        return cls(
            index=data["index"],
            cpi=tuple(data["cpi"]),
            instructions=tuple(data["instructions"]),
            busy_cycles=tuple(data["busy_cycles"]),
            targets=tuple(data["targets"]),
            l2=StatsSnapshot.from_dict(data["l2"]),
        )

    @property
    def critical_thread(self) -> int:
        """Thread with the highest CPI in this interval."""
        return max(range(len(self.cpi)), key=lambda t: self.cpi[t])

    @property
    def overall_cpi(self) -> float:
        """Application CPI for the interval: max over threads, matching the
        paper's ``CPI_overall = max(CPI_t)`` objective."""
        return max(self.cpi)


@dataclass(frozen=True)
class IntervalRecord:
    """An observation plus the partition decision it triggered."""

    observation: IntervalObservation
    new_targets: tuple[int, ...] | None

    @property
    def index(self) -> int:
        return self.observation.index

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            **self.observation.to_dict(),
            "new_targets": list(self.new_targets) if self.new_targets is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntervalRecord":
        new_targets = data["new_targets"]
        return cls(
            observation=IntervalObservation.from_dict(data),
            new_targets=tuple(new_targets) if new_targets is not None else None,
        )


@dataclass
class RunResult:
    """Complete outcome of simulating one application under one policy."""

    app: str
    policy: str
    n_threads: int
    total_cycles: float
    thread_instructions: tuple[int, ...]
    thread_busy_cycles: tuple[float, ...]
    thread_stall_cycles: tuple[float, ...]
    l2_totals: StatsSnapshot
    thread_l1_accesses: tuple[int, ...] = ()
    thread_l1_hits: tuple[int, ...] = ()
    intervals: list[IntervalRecord] = field(default_factory=list)
    barriers: BarrierLog | None = None

    @property
    def total_instructions(self) -> int:
        return sum(self.thread_instructions)

    @property
    def performance(self) -> float:
        """Application performance = 1 / execution time (paper Fig. 3)."""
        return 1.0 / self.total_cycles if self.total_cycles > 0 else 0.0

    def speedup_over(self, baseline: "RunResult") -> float:
        """Fractional improvement of this run over ``baseline``:
        0.10 means 10 % faster (baseline takes 10 % more cycles)."""
        if self.total_cycles <= 0:
            raise ValueError("run has no cycles")
        return baseline.total_cycles / self.total_cycles - 1.0

    @property
    def total_memory_accesses(self) -> int:
        """All cache accesses (every memory operation probes its L1)."""
        return sum(self.thread_l1_accesses)

    def l1_hit_rate(self, thread: int | None = None) -> float:
        if thread is None:
            acc, hit = sum(self.thread_l1_accesses), sum(self.thread_l1_hits)
        else:
            acc, hit = self.thread_l1_accesses[thread], self.thread_l1_hits[thread]
        return hit / acc if acc else 0.0

    def inter_thread_share_of_all_accesses(self) -> float:
        """Inter-thread interactions as a share of *all* cache accesses
        (the paper's Fig. 8 metric).  Interactions only occur at the shared
        L2, but the paper normalises over every cache access the threads
        make, so the private-L1 traffic is in the denominator."""
        total = self.total_memory_accesses
        if total == 0:
            return 0.0
        inter = sum(self.l2_totals.inter_thread_hits) + sum(
            self.l2_totals.inter_thread_evictions
        )
        return inter / total

    def thread_cpi(self, thread: int) -> float:
        instr = self.thread_instructions[thread]
        return self.thread_busy_cycles[thread] / instr if instr else 0.0

    def cpi_series(self, thread: int) -> list[float]:
        """Per-interval CPI of one thread (paper Fig. 6)."""
        return [rec.observation.cpi[thread] for rec in self.intervals]

    def miss_series(self, thread: int) -> list[int]:
        """Per-interval L2 miss count of one thread (paper Fig. 7)."""
        return [rec.observation.l2.misses[thread] for rec in self.intervals]

    def targets_series(self) -> list[tuple[int, ...]]:
        """Targets in effect during each interval (paper Fig. 18)."""
        return [rec.observation.targets for rec in self.intervals]

    def to_dict(self) -> dict:
        """Lossless JSON-serialisable form (per-interval data included).

        :meth:`from_dict` reconstructs an equal :class:`RunResult`; the
        round-trip is what lets :class:`repro.exec.ResultStore` persist
        results on disk across harness invocations.
        """
        return {
            "app": self.app,
            "policy": self.policy,
            "n_threads": self.n_threads,
            "total_cycles": self.total_cycles,
            "total_instructions": self.total_instructions,
            "thread_instructions": list(self.thread_instructions),
            "thread_busy_cycles": list(self.thread_busy_cycles),
            "thread_stall_cycles": list(self.thread_stall_cycles),
            "thread_l1_accesses": list(self.thread_l1_accesses),
            "thread_l1_hits": list(self.thread_l1_hits),
            "l2_totals": self.l2_totals.to_dict(),
            "intervals": [rec.to_dict() for rec in self.intervals],
            "barriers": self.barriers.to_dict() if self.barriers is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        barriers = data.get("barriers")
        return cls(
            app=data["app"],
            policy=data["policy"],
            n_threads=data["n_threads"],
            total_cycles=data["total_cycles"],
            thread_instructions=tuple(data["thread_instructions"]),
            thread_busy_cycles=tuple(data["thread_busy_cycles"]),
            thread_stall_cycles=tuple(data["thread_stall_cycles"]),
            l2_totals=StatsSnapshot.from_dict(data["l2_totals"]),
            thread_l1_accesses=tuple(data["thread_l1_accesses"]),
            thread_l1_hits=tuple(data["thread_l1_hits"]),
            intervals=[IntervalRecord.from_dict(rec) for rec in data["intervals"]],
            barriers=BarrierLog.from_dict(barriers) if barriers is not None else None,
        )
