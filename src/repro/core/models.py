"""Runtime per-thread performance models (paper Section VI-B, Fig. 15).

The partition engine maintains, for every thread, a model of some metric
(CPI for the paper's scheme, misses-per-kilo-instruction for the
throughput baseline) as a function of the number of cache ways assigned.
Data points accumulate as the runtime observes the thread at different way
counts; a cubic spline (degenerating gracefully to linear/constant with
few points) interpolates between them.

Three refinements keep the models honest under a dynamic runtime:

* **EWMA cells** — applications move through phases (paper Figs. 6-7), so
  each ``(thread, ways)`` cell holds an exponentially-weighted moving
  average rather than raw history: new observations fold in with weight
  ``alpha`` and the models track the current phase.
* **Monotonisation** — the true metric-vs-ways curve is non-increasing
  (LRU inclusion property); a single pessimistic sample taken during a
  partition transient would otherwise make the model claim that more ways
  *hurt*, permanently blocking the optimiser from feeding that thread.
  Knots are projected onto the nearest non-increasing sequence (PAVA)
  before fitting.
* **Aging** — a cell that has not been re-observed for ``max_age``
  observations of its thread describes an old phase (or an old
  thread-to-core mapping, see the migration experiment); stale cells are
  dropped from the fit while at least two fresh knots remain.
* **Linear extrapolation with a floor** — outside the observed way range
  the end tangent keeps its slope, so the optimiser can *predict*
  improvement at way counts it has never tried; the next interval's
  observation corrects the model.  This is the exploration mechanism.
* **Incremental refits** — an observation invalidates only *its* thread's
  fitted model (an O(1) dirty mark on the existing knot cell), and a
  dirty model is only *refit* when its post-aging/post-PAVA knots
  actually changed: the fit inputs are fingerprinted, and an unchanged
  fingerprint reuses the cached spline coefficients.  Since a fitted
  model is a pure function of its knots, reuse is bit-identical to
  refitting — pinned by the differential tests.
"""

from __future__ import annotations

import numpy as np

from repro.mathx.isotonic import isotonic_nonincreasing
from repro.mathx.pchip import PchipSpline1D
from repro.mathx.spline import fit_cpi_model
from repro.obs.metrics import METRICS

__all__ = ["ThreadModelBank"]


class ThreadModelBank:
    """Per-thread metric-vs-ways models with EWMA updating."""

    def __init__(
        self,
        n_threads: int,
        *,
        alpha: float = 0.5,
        extrapolation: str = "linear",
        floor: float = 0.0,
        monotone: bool = True,
        max_age: int | None = 12,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if max_age is not None and max_age < 1:
            raise ValueError("max_age must be >= 1 (or None to disable aging)")
        self.n_threads = n_threads
        self.alpha = alpha
        self.extrapolation = extrapolation
        self.floor = float(floor)
        self.monotone = monotone
        self.max_age = max_age
        # _cells[t] maps ways -> (EWMA value, tick of last update).
        self._cells: list[dict[int, tuple[float, int]]] = [dict() for _ in range(n_threads)]
        self._ticks = [0] * n_threads
        # Incremental-refit state: the last fitted callable per thread,
        # the fingerprint of the knots it was fitted on, and a dirty
        # mark set by observe().  points()/the fit are only re-evaluated
        # for dirty threads, and the fit itself only when the
        # fingerprint moved.
        self._fitted: list = [None] * n_threads
        self._fit_sig: list[tuple | None] = [None] * n_threads
        self._dirty = [True] * n_threads

    def observe(self, thread: int, ways: int, value: float) -> None:
        """Fold one interval's observation into the bank.

        O(1): one cell update plus a dirty mark on *this* thread's
        model — other threads' fitted models stay valid (their knots
        cannot change without their own ``observe``).
        """
        if not 0 <= thread < self.n_threads:
            raise IndexError(f"thread {thread} out of range")
        if ways < 0:
            raise ValueError("ways must be >= 0")
        if not np.isfinite(value) or value < 0:
            raise ValueError(f"metric value must be finite and non-negative, got {value}")
        self._ticks[thread] += 1
        cell = self._cells[thread]
        old = cell.get(ways)
        if old is None:
            cell[ways] = (float(value), self._ticks[thread])
        else:
            cell[ways] = (old[0] + self.alpha * (value - old[0]), self._ticks[thread])
        self._dirty[thread] = True

    def n_distinct(self, thread: int) -> int:
        """Number of distinct way counts observed for ``thread`` (before
        age filtering)."""
        return len(self._cells[thread])

    def points(self, thread: int) -> tuple[np.ndarray, np.ndarray]:
        """The (ways, value) knots currently backing the thread's model.

        Applies aging (stale cells dropped while >= 2 fresh remain) and,
        when enabled, the non-increasing projection.
        """
        cell = self._cells[thread]
        items = sorted(cell.items())
        if self.max_age is not None and items:
            now = self._ticks[thread]
            fresh = [(w, v) for w, v in items if now - v[1] <= self.max_age]
            if len(fresh) >= 2:
                items = fresh
            else:
                # Keep the most recently updated knots so the model always
                # has something to stand on.
                items = sorted(
                    sorted(items, key=lambda kv: kv[1][1], reverse=True)[:2]
                )
        ways = np.array([w for w, _ in items], dtype=np.float64)
        vals = np.array([v[0] for _, v in items], dtype=np.float64)
        if self.monotone and vals.size > 1:
            vals = isotonic_nonincreasing(vals)
        return ways, vals

    def model(self, thread: int):
        """Fitted model for one thread (callable: ways -> metric).

        Fitting is lazy per thread, so threads without observations only
        raise when *their* model is requested.  A dirty thread whose
        post-aging/PAVA knots are unchanged (e.g. an EWMA fixed point,
        or repeated observations of a constant-CPI thread) reuses the
        cached fit — bit-identical, since the fit is a pure function of
        the knots.
        """
        if not self._dirty[thread] and self._fitted[thread] is not None:
            return self._fitted[thread]
        ways, vals = self.points(thread)
        if ways.size == 0:
            raise ValueError(f"no observations for thread {thread}")
        sig = (ways.tobytes(), vals.tobytes())
        if self._fitted[thread] is None or sig != self._fit_sig[thread]:
            self._fitted[thread] = self._fit_points(ways, vals)
            self._fit_sig[thread] = sig
            METRICS.counter("models.fits").inc()
        else:
            METRICS.counter("models.refits_avoided").inc()
        self._dirty[thread] = False
        return self._fitted[thread]

    def _fit_points(self, ways: np.ndarray, vals: np.ndarray):
        if self.monotone and ways.size >= 3:
            # The knots are non-increasing (PAVA in points()); a monotone
            # interpolant keeps the curve non-increasing *between* knots
            # too, where a natural cubic spline would overshoot.
            fitted = PchipSpline1D(ways, vals, extrapolation=self.extrapolation)
        else:
            fitted = fit_cpi_model(ways, vals, extrapolation=self.extrapolation)
        if self.extrapolation != "linear":
            return fitted
        # See the module docstring: the floor stops a steep tangent from
        # predicting negative metric values during exploration.
        floor = self.floor

        def clipped(q, _f=fitted, _floor=floor):
            out = _f(q)
            if np.isscalar(out) or np.ndim(out) == 0:
                return out if out > _floor else _floor
            return np.maximum(out, _floor)

        clipped.knots = fitted.knots  # type: ignore[attr-defined]
        return clipped

    def predict(self, ways_vector) -> np.ndarray:
        """Predicted metric for every thread at the given way assignment."""
        ways_vector = list(ways_vector)
        if len(ways_vector) != self.n_threads:
            raise ValueError(f"need {self.n_threads} way counts, got {len(ways_vector)}")
        return np.array(
            [float(self.model(t)(float(ways_vector[t]))) for t in range(self.n_threads)]
        )

    def reset(self) -> None:
        self._cells = [dict() for _ in range(self.n_threads)]
        self._ticks = [0] * self.n_threads
        self._fitted = [None] * self.n_threads
        self._fit_sig = [None] * self.n_threads
        self._dirty = [True] * self.n_threads
