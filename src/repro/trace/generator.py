"""Vectorised synthetic memory-trace generation.

One :class:`ThreadTraceGenerator` per thread produces ``(addresses, gaps)``
arrays for each parallel section: ``addresses[i]`` is the byte address of
the *i*-th memory operation and ``gaps[i]`` the number of non-memory
instructions retired immediately before it.  Generation is fully
vectorised in NumPy (the simulator's Python loops are reserved for the
parts with genuine sequential dependence, i.e. cache state).

Working sets are laid out *contiguously*: rank ``r`` of a thread's reuse
distribution is line ``r`` of its region.  This mirrors real numerical
codes, whose data are arrays — a working set of N lines strides across
cache sets uniformly.  (An earlier design scattered ranks through a random
permutation; that gives each cache set a Poisson-distributed slice of the
working set, and the resulting set imbalance penalises any per-set way
quota — a modelling artifact, not a property of array codes.)

Streams are deterministic for a given seed, and generator state (the RNG
and the streaming-region cursor) persists across sections so consecutive
sections of a program look like one continuous execution.
"""

from __future__ import annotations

import numpy as np

from repro.trace.behavior import ThreadBehavior
from repro.trace.layout import AddressLayout

__all__ = [
    "MAX_REGION_LINES",
    "STREAM_REGION_LINES",
    "ThreadTraceGenerator",
    "WORD_BYTES",
]

# Private/shared regions are index spaces of this many lines; a working set
# addresses the first ``ws_lines`` of its region.
MAX_REGION_LINES = 1 << 14  # 16384 lines = 1 MB at 64 B/line
STREAM_REGION_LINES = 1 << 20
WORD_BYTES = 8  # streaming advances one word per access (see generate())


class ThreadTraceGenerator:
    """Generates the access stream of a single thread.

    Parameters
    ----------
    thread:
        Thread index (selects the private and streaming regions).
    layout:
        Address-space layout shared by all threads of the application.
    seed:
        Per-thread RNG seed.
    """

    def __init__(self, thread: int, layout: AddressLayout, seed: int) -> None:
        self.thread = thread
        self.layout = layout
        self._rng = np.random.default_rng(seed)
        self._stream_cursor = 0

    # ------------------------------------------------------------------
    def generate(self, behavior: ThreadBehavior, n_instructions: int):
        """Generate one section's worth of accesses for this thread.

        Returns ``(addrs, gaps)`` with ``addrs`` int64 byte addresses and
        ``gaps`` int32 preceding non-memory instruction counts.  The total
        instruction count of the section is ``gaps.sum() + len(addrs)``,
        which is approximately ``n_instructions``.
        """
        if n_instructions < 1:
            raise ValueError("n_instructions must be >= 1")
        if behavior.ws_lines > MAX_REGION_LINES or behavior.shared_ws_lines > MAX_REGION_LINES:
            raise ValueError(f"working sets are limited to {MAX_REGION_LINES} lines")
        rng = self._rng
        n_mem = max(1, int(round(n_instructions * behavior.mem_ratio)))
        # Geometric gaps give memory ops a mean spacing of 1/mem_ratio
        # instructions, like a Bernoulli instruction mix would.
        gaps = (rng.geometric(behavior.mem_ratio, size=n_mem) - 1).astype(np.int32)

        stream_mask = np.zeros(n_mem, dtype=bool)
        if behavior.stream_frac > 0.0:
            n_stream_total = int(round(n_mem * behavior.stream_frac))
            n_burst = int(round(n_stream_total * behavior.stream_burst))
            if n_burst > 0:
                # The burst is one contiguous run of streaming accesses at
                # a random position in the section (a copy/transpose-like
                # sweep); see ThreadBehavior.stream_burst for why this
                # matters to the shared-vs-partitioned comparison.
                start = int(rng.integers(0, n_mem - n_burst + 1))
                stream_mask[start : start + n_burst] = True
            n_iid = n_stream_total - n_burst
            if n_iid > 0:
                free = np.flatnonzero(~stream_mask)
                picks = rng.choice(free, size=min(n_iid, free.size), replace=False)
                stream_mask[picks] = True
        u = rng.random(n_mem)
        denom = max(1e-12, 1.0 - behavior.stream_frac)
        shared_mask = (~stream_mask) & (u < behavior.share_frac / denom)
        private_mask = ~(stream_mask | shared_mask)

        line_bytes = self.layout.line_bytes
        addrs = np.empty(n_mem, dtype=np.int64)

        n_priv = int(private_mask.sum())
        if n_priv:
            lines = self._draw_ranked(rng, n_priv, behavior.ws_lines, behavior.skew)
            addrs[private_mask] = self.layout.private_base(self.thread) + lines * line_bytes

        n_shared = int(shared_mask.sum())
        if n_shared:
            lines = self._draw_ranked(rng, n_shared, behavior.shared_ws_lines, behavior.skew)
            addrs[shared_mask] = self.layout.shared_base() + lines * line_bytes

        n_stream = int(stream_mask.sum())
        if n_stream:
            # Streaming walks the region at *word* granularity: sequential
            # code touches every word of a line, so the L1 absorbs
            # line_bytes/WORD_BYTES - 1 of every line_bytes/WORD_BYTES
            # accesses and the L2 sees one (always-missing, polluting)
            # access per line.  Modelling streams at line granularity would
            # make every streaming access an L2 miss and no realistic
            # thread could both stream and be fast.
            region_bytes = STREAM_REGION_LINES * line_bytes
            stride = behavior.stream_stride_words
            seq = self._stream_cursor + np.arange(n_stream, dtype=np.int64) * stride
            self._stream_cursor = int(self._stream_cursor + n_stream * stride)
            addrs[stream_mask] = self.layout.stream_base(self.thread) + (
                (seq * WORD_BYTES) % region_bytes
            )

        return addrs, gaps

    @staticmethod
    def _draw_ranked(
        rng: np.random.Generator,
        n: int,
        ws_lines: int,
        skew: float,
    ) -> np.ndarray:
        """Draw ``n`` line indices from ``[0, ws_lines)`` with power-law
        reuse concentration.

        ``rank = floor(ws * u**skew)``: skew 1.0 is a uniform sweep of the
        working set; larger skews focus reuse on the low ranks, giving the
        concave miss-vs-capacity behaviour real applications show.  Ranks
        map directly to contiguous lines (see module docstring).
        """
        ws = min(ws_lines, MAX_REGION_LINES)
        ranks = np.floor(ws * rng.random(n) ** skew).astype(np.int64)
        np.clip(ranks, 0, ws - 1, out=ranks)
        return ranks
