"""Per-thread access-behaviour descriptors and phase modulation.

A :class:`ThreadBehavior` captures everything the generator needs to mimic
one OpenMP worker thread of a SPEC OMP / NAS benchmark:

* ``ws_lines`` — private working-set size in cache lines.  This is the main
  knob behind the paper's observations: threads of the same application
  have very different cache requirements (Figure 3/4) and very different
  *sensitivity* to added cache ways (Figure 10).
* ``skew`` — reuse concentration.  Private/shared lines are drawn as
  ``rank = floor(ws * u**skew)`` with ``u ~ U(0,1)``: larger skew
  concentrates accesses on a hot subset, producing the concave
  CPI-vs-ways curves of Figure 15; skew near 1 approaches a uniform sweep
  (thrash-like, cache-insensitive once the WS exceeds capacity).
* ``share_frac`` / ``stream_frac`` — fractions of memory accesses that go
  to the application-shared region and to a sequential streaming region.
* ``mem_ratio`` — memory operations per instruction.
* ``stream_burst`` — fraction of a section's streaming accesses emitted as
  one contiguous burst rather than interleaved uniformly.  Bursty
  streaming is what makes a plain shared cache lose to a partitioned one:
  a burst punches through the global LRU stack and flushes the other
  threads' (notably the critical thread's) resident lines, whereas a way
  partition contains the burst inside the streaming thread's own ways.
  Smooth low-rate streaming mostly evicts its own dead lines from the LRU
  tail and is far less destructive.
* ``stream_stride_words`` — words advanced per streaming access.  1 models
  a unit-stride sweep (one L2 line insertion per ``line/word`` accesses);
  ``line_bytes/8`` models a column-major/transpose sweep that touches a
  new line on every access, the highest-pollution pattern.

:class:`PhaseSegment` rescales behaviours over execution intervals, which
produces the temporal phase behaviour of Figures 6-7 (CPI and miss counts
of SWIM varying over 50 intervals).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["PhaseSegment", "ThreadBehavior"]


@dataclass(frozen=True)
class ThreadBehavior:
    """Generator parameters for one thread (see module docstring)."""

    ws_lines: int
    skew: float = 2.0
    share_frac: float = 0.1
    stream_frac: float = 0.05
    mem_ratio: float = 0.35
    shared_ws_lines: int = 256
    stream_burst: float = 0.0
    stream_stride_words: int = 1

    def __post_init__(self) -> None:
        if self.ws_lines < 1:
            raise ValueError("ws_lines must be >= 1")
        if self.shared_ws_lines < 1:
            raise ValueError("shared_ws_lines must be >= 1")
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ValueError("mem_ratio must be in (0, 1]")
        if self.skew < 1.0:
            raise ValueError("skew must be >= 1.0 (1.0 == uniform)")
        if self.share_frac < 0 or self.stream_frac < 0:
            raise ValueError("fractions must be non-negative")
        if self.share_frac + self.stream_frac > 1.0:
            raise ValueError("share_frac + stream_frac must be <= 1")
        if not 0.0 <= self.stream_burst <= 1.0:
            raise ValueError("stream_burst must be in [0, 1]")
        if self.stream_stride_words < 1:
            raise ValueError("stream_stride_words must be >= 1")

    def scaled(self, ws_scale: float = 1.0, mem_scale: float = 1.0) -> "ThreadBehavior":
        """Behaviour with working set and memory intensity rescaled.

        Used by phase segments; results are clamped to valid ranges.
        """
        return replace(
            self,
            ws_lines=max(1, int(round(self.ws_lines * ws_scale))),
            mem_ratio=min(1.0, max(0.01, self.mem_ratio * mem_scale)),
        )


@dataclass(frozen=True)
class PhaseSegment:
    """One execution phase: per-thread scaling active for some intervals.

    ``ws_scales`` / ``mem_scales`` hold one multiplier per thread; a scale
    list shorter than the thread count is tiled cyclically, so profiles
    written for 4 threads extend naturally to 8-core runs (paper Fig. 22).
    """

    intervals: int
    ws_scales: tuple[float, ...] = (1.0,)
    mem_scales: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if self.intervals < 1:
            raise ValueError("intervals must be >= 1")
        if not self.ws_scales or not self.mem_scales:
            raise ValueError("scale tuples must be non-empty")

    def behavior_for(self, base: ThreadBehavior, thread: int) -> ThreadBehavior:
        ws = self.ws_scales[thread % len(self.ws_scales)]
        mem = self.mem_scales[thread % len(self.mem_scales)]
        return base.scaled(ws_scale=ws, mem_scale=mem)


def behavior_schedule(
    base_behaviors: list[ThreadBehavior],
    phases: list[PhaseSegment],
    n_intervals: int,
) -> list[list[ThreadBehavior]]:
    """Expand (base behaviours, phase segments) into per-interval behaviours.

    Returns ``schedule[interval][thread]``.  Phases repeat cyclically until
    ``n_intervals`` are covered; an empty phase list means one steady phase.
    """
    if not base_behaviors:
        raise ValueError("need at least one thread behaviour")
    if n_intervals < 1:
        raise ValueError("n_intervals must be >= 1")
    if not phases:
        phases = [PhaseSegment(intervals=n_intervals)]
    schedule: list[list[ThreadBehavior]] = []
    phase_idx = 0
    left_in_phase = phases[0].intervals
    for _ in range(n_intervals):
        seg = phases[phase_idx % len(phases)]
        schedule.append(
            [seg.behavior_for(b, t) for t, b in enumerate(base_behaviors)]
        )
        left_in_phase -= 1
        if left_in_phase == 0:
            phase_idx += 1
            left_in_phase = phases[phase_idx % len(phases)].intervals
    return schedule
