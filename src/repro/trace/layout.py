"""Address-space layout for synthetic multithreaded traces.

Each thread owns a disjoint *private* region, all threads share one
*shared* region (this is what produces the constructive/destructive
inter-thread interactions of the paper's Figures 8-9), and each thread has
a large *streaming* region that is walked sequentially and essentially
never reused.  Regions are placed far apart so they can never alias, and
region sizes are expressed in cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressLayout", "STREAM_BASE_ADDRESS"]

# Region placement constants (byte addresses).  Spacing is generous: with
# 64-byte lines a region of 2**22 lines spans 2**28 bytes, well below the
# 2**32-byte stride between thread slots.
_SHARED_BASE = 1 << 40
_PRIVATE_BASE = 1 << 41
_STREAM_BASE = 1 << 45
_THREAD_STRIDE = 1 << 32

#: Addresses at or above this are streaming-region addresses.  The timing
#: model gives their L2 misses the prefetch-covered latency; exported so
#: the stream compiler can classify without a layout instance.
STREAM_BASE_ADDRESS = _STREAM_BASE


@dataclass(frozen=True)
class AddressLayout:
    """Computes region base addresses for a given line size."""

    line_bytes: int = 64

    def private_base(self, thread: int) -> int:
        if thread < 0:
            raise ValueError("thread must be >= 0")
        return _PRIVATE_BASE + thread * _THREAD_STRIDE

    def shared_base(self) -> int:
        return _SHARED_BASE

    def stream_base(self, thread: int) -> int:
        if thread < 0:
            raise ValueError("thread must be >= 0")
        return _STREAM_BASE + thread * _THREAD_STRIDE

    def lines_to_bytes(self, lines: int) -> int:
        return lines * self.line_bytes

    def classify(self, addr: int) -> str:
        """Region name for an address — used only by tests/diagnostics."""
        if _STREAM_BASE <= addr:
            return "stream"
        if _PRIVATE_BASE <= addr < _STREAM_BASE:
            return "private"
        if _SHARED_BASE <= addr < _PRIVATE_BASE:
            return "shared"
        return "unknown"
