"""Assemble workload profiles into executable synthetic programs."""

from __future__ import annotations

import numpy as np

from repro.sync.program import Section, SyntheticProgram, ThreadWork
from repro.trace.behavior import behavior_schedule
from repro.trace.generator import ThreadTraceGenerator
from repro.trace.layout import AddressLayout
from repro.trace.workloads import WorkloadProfile

__all__ = ["build_program"]


def build_program(
    profile: WorkloadProfile,
    *,
    n_threads: int = 4,
    n_intervals: int = 50,
    interval_instructions: int = 12_000,
    sections_per_interval: int = 4,
    seed: int = 1,
    line_bytes: int = 64,
    work_jitter: float = 0.05,
) -> SyntheticProgram:
    """Build the barrier-structured program for one application run.

    Each execution interval is split into ``sections_per_interval``
    barrier-bound parallel sections (the paper notes an interval can span
    several sections and vice versa; making sections shorter than intervals
    keeps barrier effects visible inside every interval).  Per-thread
    section work is ``interval_instructions / sections_per_interval``
    instructions with small uniform jitter — the load imbalance in these
    workloads comes from *cache behaviour*, not from instruction-count
    skew, exactly as the paper argues.

    Determinism: a fixed ``seed`` yields an identical program, so different
    partitioning policies are compared on byte-identical traces.

    When a :mod:`repro.prep` store is configured, generated traces are
    published as content-addressed bundles and later builds of the same
    parameters reconstruct the program from mmapped arrays instead of
    regenerating — value-identical by the determinism above.
    """
    if n_intervals < 1 or sections_per_interval < 1:
        raise ValueError("n_intervals and sections_per_interval must be >= 1")
    if interval_instructions < sections_per_interval:
        raise ValueError("interval_instructions must cover at least one instruction per section")
    if not 0.0 <= work_jitter < 1.0:
        raise ValueError("work_jitter must be in [0, 1)")

    from repro.prep import get_prep_store, program_from_bundle, trace_bundle, trace_key

    store = get_prep_store()
    key = None
    if store is not None:
        key = trace_key(
            profile,
            n_threads=n_threads,
            n_intervals=n_intervals,
            interval_instructions=interval_instructions,
            sections_per_interval=sections_per_interval,
            seed=seed,
            line_bytes=line_bytes,
            work_jitter=work_jitter,
        )
        bundle = store.get(key)
        if bundle is not None:
            return program_from_bundle(bundle)

    layout = AddressLayout(line_bytes=line_bytes)
    behaviors = profile.behaviors_for(n_threads)
    schedule = behavior_schedule(behaviors, list(profile.phases), n_intervals)

    gens = [
        ThreadTraceGenerator(t, layout, seed=seed * 1_000_003 + t) for t in range(n_threads)
    ]
    jitter_rng = np.random.default_rng(seed ^ 0xBA55)

    section_instr = interval_instructions / sections_per_interval
    sections: list[Section] = []
    for interval in range(n_intervals):
        interval_behaviors = schedule[interval]
        for _ in range(sections_per_interval):
            works = []
            for t in range(n_threads):
                target = section_instr * (1.0 + jitter_rng.uniform(-work_jitter, work_jitter))
                addrs, gaps = gens[t].generate(interval_behaviors[t], max(1, int(round(target))))
                works.append(ThreadWork(addrs=addrs, gaps=gaps))
            sections.append(Section(works=tuple(works)))

    program = SyntheticProgram(
        name=profile.name,
        sections=tuple(sections),
        meta={
            "suite": profile.suite,
            "n_intervals": n_intervals,
            "interval_instructions": interval_instructions,
            "sections_per_interval": sections_per_interval,
            "seed": seed,
            "n_threads": n_threads,
        },
    )
    if store is not None:
        arrays, meta = trace_bundle(program)
        store.put(key, arrays, meta)
    return program
