"""The nine named workload profiles used throughout the evaluation.

The paper evaluates nine SPEC OMP and NAS parallel benchmarks.  We cannot
run those binaries (they require a full-system SPARC/Solaris simulator), so
each profile below is a *synthetic stand-in* tuned to exhibit the
published characteristics of its namesake at our scaled cache size
(64 KB shared L2 = 1024 lines; one way = 32 lines):

* heterogeneous per-thread working sets, so per-thread performance varies
  widely and one thread dominates the critical path (paper Figs. 3-4);
* phase behaviour over intervals for SWIM-like codes (Figs. 6-7);
* an application-shared region producing both constructive and
  destructive inter-thread interactions (Figs. 8-9);
* a few *small working set* codes (equake-, wupwise-, ft-like) for which
  the paper reports only small gains over a plain shared cache.

Threads are composed from four recurring roles observed in parallel
numerical codes, because the paper's headline comparisons hinge on their
interplay:

``critical``
    Large reusable working set and high memory intensity — the
    critical-path thread.  Cache-*sensitive*: this is the thread the
    paper's scheme feeds.
``polluter``
    Streaming-dominated: touches long sequential arrays (word stride), so
    it inserts dead lines into the L2 at a high rate while its own CPI
    stays moderate.  Under global LRU these dead lines displace the
    critical thread's reusable lines — the reason a plain shared cache
    loses to partitioning.
``decoy``
    Big, reducible miss volume but *low* memory intensity, so it is fast
    despite missing a lot.  Throughput-oriented partitioning pours
    capacity into it (its miss curve is steep) even though that barely
    moves the application — the reason the throughput baseline loses.
``small``
    Tiny footprint; fast and cache-insensitive — a cheap way donor.

The numbers are calibration targets, not measurements of the original
binaries; DESIGN.md section 2 documents this substitution.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.trace.behavior import PhaseSegment, ThreadBehavior

__all__ = ["WorkloadProfile", "WORKLOADS", "get_workload", "list_workloads"]


@dataclass(frozen=True)
class WorkloadProfile:
    """A named multithreaded application profile.

    ``base_behaviors`` describes the canonical 4-thread shape; for other
    thread counts the pattern is tiled and deterministically perturbed
    (±12 % working set) so an 8-core run (paper Fig. 22) keeps the same
    character without being a literal duplicate.
    """

    name: str
    suite: str
    description: str
    base_behaviors: tuple[ThreadBehavior, ...]
    phases: tuple[PhaseSegment, ...] = ()

    def __post_init__(self) -> None:
        if not self.base_behaviors:
            raise ValueError("profile needs at least one behaviour")

    def behaviors_for(self, n_threads: int) -> list[ThreadBehavior]:
        """Per-thread behaviours for an ``n_threads``-core run."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        base = self.base_behaviors
        out: list[ThreadBehavior] = []
        # crc32, not hash(): str hashing is salted per process, and the
        # perturbation seed must be identical across worker processes —
        # content-addressed trace artifacts are shared between them.
        rng = np.random.default_rng(zlib.crc32(self.name.encode("utf-8")))
        for t in range(n_threads):
            b = base[t % len(base)]
            if t < len(base):
                out.append(b)
            else:
                factor = 1.0 + rng.uniform(-0.12, 0.12)
                out.append(b.scaled(ws_scale=factor))
        return out


def _critical(ws, *, skew=1.8, share=0.10, mem=0.42, shared_ws=256):
    return ThreadBehavior(
        ws_lines=ws, skew=skew, share_frac=share, stream_frac=0.02,
        mem_ratio=mem, shared_ws_lines=shared_ws,
    )


def _polluter(*, ws=96, stream=0.25, share=0.05, mem=0.32, shared_ws=256, burst=1.0, stride=8):
    return ThreadBehavior(
        ws_lines=ws, skew=2.5, share_frac=share, stream_frac=stream,
        mem_ratio=mem, shared_ws_lines=shared_ws, stream_burst=burst,
        stream_stride_words=stride,
    )


def _decoy(ws, *, skew=1.7, share=0.08, mem=0.15, shared_ws=256):
    return ThreadBehavior(
        ws_lines=ws, skew=skew, share_frac=share, stream_frac=0.02,
        mem_ratio=mem, shared_ws_lines=shared_ws,
    )


def _small(ws, *, share=0.10, mem=0.30, shared_ws=256):
    return ThreadBehavior(
        ws_lines=ws, skew=2.2, share_frac=share, stream_frac=0.05,
        mem_ratio=mem, shared_ws_lines=shared_ws,
    )


def _mid(ws, *, skew=1.9, share=0.10, mem=0.35, shared_ws=256):
    return ThreadBehavior(
        ws_lines=ws, skew=skew, share_frac=share, stream_frac=0.05,
        mem_ratio=mem, shared_ws_lines=shared_ws,
    )


WORKLOADS: dict[str, WorkloadProfile] = {}


def _register(profile: WorkloadProfile) -> None:
    if profile.name in WORKLOADS:
        raise ValueError(f"duplicate workload {profile.name}")
    WORKLOADS[profile.name] = profile


# --------------------------------------------------------------------------
# SPEC OMP-like profiles
# --------------------------------------------------------------------------
_register(
    WorkloadProfile(
        name="swim",
        suite="SPEC OMP",
        description=(
            "Shallow-water stencil: a cache-hungry critical thread, a "
            "streaming polluter and pronounced phase changes across "
            "intervals (the paper's Figs. 6-7 and 10 use SWIM)."
        ),
        base_behaviors=(
            _critical(260, skew=2.2, share=0.08, mem=0.40),
            _decoy(500, share=0.08, mem=0.11),
            _polluter(ws=64, stream=0.16, share=0.08, mem=0.34),
            _mid(200, share=0.08, mem=0.38),
        ),
        phases=(
            PhaseSegment(intervals=8, ws_scales=(1.0, 1.0, 1.0, 1.0)),
            PhaseSegment(intervals=8, ws_scales=(1.25, 0.8, 1.0, 1.1), mem_scales=(1.05, 1.0, 1.0, 1.0)),
            PhaseSegment(intervals=8, ws_scales=(0.8, 1.15, 1.0, 0.9), mem_scales=(0.95, 1.0, 1.0, 1.05)),
        ),
    )
)

_register(
    WorkloadProfile(
        name="mgrid",
        suite="SPEC OMP",
        description=(
            "Multigrid solver: one thread with a very large footprint holds "
            "back the application (the paper reports thread CPIs of 11.5 vs "
            "7.1 in MGRID)."
        ),
        base_behaviors=(
            _decoy(480, mem=0.11),
            _critical(260, skew=2.2, mem=0.38),
            _small(100, mem=0.34),
            _polluter(ws=64, stream=0.14, mem=0.36),
        ),
        phases=(
            PhaseSegment(intervals=8, ws_scales=(1.0, 1.0, 1.0, 1.0)),
            PhaseSegment(intervals=4, ws_scales=(1.2, 0.8, 1.0, 1.0)),
        ),
    )
)

_register(
    WorkloadProfile(
        name="applu",
        suite="SPEC OMP",
        description="SSOR solver: critical sweep thread plus a fast decoy.",
        base_behaviors=(
            _critical(258, skew=2.2, share=0.15, mem=0.38),
            _small(120, share=0.15, mem=0.34),
            _decoy(480, share=0.15, mem=0.11),
            _polluter(ws=64, stream=0.13, share=0.15),
        ),
    )
)

_register(
    WorkloadProfile(
        name="art",
        suite="SPEC OMP",
        description=(
            "Neural-network image recognition: two large, weakly-skewed "
            "scan threads; high miss volume and sizeable destructive "
            "interaction."
        ),
        base_behaviors=(
            _critical(272, skew=1.9, share=0.08, mem=0.36, shared_ws=256),
            _mid(248, skew=1.9, share=0.08, mem=0.36, shared_ws=256),
            _decoy(480, share=0.08, mem=0.11, shared_ws=256),
            _polluter(ws=64, stream=0.14, share=0.08, shared_ws=256),
        ),
    )
)

_register(
    WorkloadProfile(
        name="equake",
        suite="SPEC OMP",
        description=(
            "Earthquake simulation: small working sets; one of the codes for "
            "which partitioning gains little over a plain shared cache."
        ),
        base_behaviors=(
            _small(100, share=0.20),
            _small(80, share=0.20),
            _small(90, share=0.20),
            _small(70, share=0.20),
        ),
    )
)

_register(
    WorkloadProfile(
        name="wupwise",
        suite="SPEC OMP",
        description=(
            "Lattice QCD: streaming-dominated with small reusable footprints; "
            "cache-insensitive threads, so little gain over shared."
        ),
        base_behaviors=(
            _polluter(ws=80, stream=0.25, mem=0.30, stride=1, burst=0.0),
            _polluter(ws=75, stream=0.25, mem=0.30, stride=1, burst=0.0),
            _polluter(ws=85, stream=0.25, mem=0.30, stride=1, burst=0.0),
            _polluter(ws=70, stream=0.25, mem=0.30, stride=1, burst=0.0),
        ),
    )
)

# --------------------------------------------------------------------------
# NAS-like profiles
# --------------------------------------------------------------------------
_register(
    WorkloadProfile(
        name="cg",
        suite="NAS",
        description=(
            "Conjugate gradient: irregular sparse accesses; thread 3 carries "
            "the big footprint (matches the paper's Fig. 18 snapshot where "
            "thread 3 is critical with CPI 6.35 vs ~3)."
        ),
        base_behaviors=(
            _mid(230, skew=1.8, share=0.12, mem=0.38),
            _decoy(500, share=0.12, mem=0.11),
            _critical(264, skew=2.2, share=0.12, mem=0.40),
            _polluter(ws=64, stream=0.10, share=0.12),
        ),
    )
)

_register(
    WorkloadProfile(
        name="mg",
        suite="NAS",
        description="Multigrid kernel: mixed footprints with mild phases.",
        base_behaviors=(
            _critical(260, skew=2.2, share=0.12, mem=0.38),
            _polluter(ws=64, stream=0.14, share=0.12, mem=0.34),
            _decoy(480, share=0.12, mem=0.11),
            _small(130, share=0.12, mem=0.32),
        ),
        phases=(
            PhaseSegment(intervals=6, ws_scales=(1.0, 1.0, 1.0, 1.0)),
            PhaseSegment(intervals=6, ws_scales=(0.8, 1.0, 1.3, 0.9)),
        ),
    )
)

_register(
    WorkloadProfile(
        name="ft",
        suite="NAS",
        description=(
            "3-D FFT: transpose steps share heavily; small per-thread "
            "footprints, so partitioning gains little over shared."
        ),
        base_behaviors=(
            _small(110, share=0.35, mem=0.32, shared_ws=128),
            _small(95, share=0.35, mem=0.32, shared_ws=128),
            _small(100, share=0.35, mem=0.32, shared_ws=128),
            _small(85, share=0.35, mem=0.32, shared_ws=128),
        ),
    )
)


def list_workloads() -> list[str]:
    """Names of all registered workload profiles (sorted)."""
    return sorted(WORKLOADS)


def get_workload(name: str) -> WorkloadProfile:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {', '.join(list_workloads())}") from None
