"""Synthetic multithreaded workload substrate.

Stands in for the paper's SPEC OMP / NAS binaries (see DESIGN.md §2): nine
named profiles whose per-thread working sets, data sharing, streaming and
phase behaviour reproduce the workload properties the paper's motivation
section measures.
"""

from repro.trace.behavior import PhaseSegment, ThreadBehavior, behavior_schedule
from repro.trace.builder import build_program
from repro.trace.generator import (
    MAX_REGION_LINES,
    STREAM_REGION_LINES,
    WORD_BYTES,
    ThreadTraceGenerator,
)
from repro.trace.io import load_program, save_program
from repro.trace.layout import AddressLayout
from repro.trace.workloads import WORKLOADS, WorkloadProfile, get_workload, list_workloads

__all__ = [
    "AddressLayout",
    "MAX_REGION_LINES",
    "PhaseSegment",
    "STREAM_REGION_LINES",
    "ThreadBehavior",
    "ThreadTraceGenerator",
    "WORKLOADS",
    "WorkloadProfile",
    "behavior_schedule",
    "build_program",
    "get_workload",
    "list_workloads",
    "load_program",
    "save_program",
    "WORD_BYTES",
]
