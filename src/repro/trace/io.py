"""Program trace import/export.

The simulator normally generates its own synthetic programs, but the
engine only needs ``(addresses, gaps)`` arrays per thread per section — so
any externally collected multithreaded memory trace (Pin, DynamoRIO,
gem5, ...) can be converted into this container format and replayed under
every partitioning policy.  The on-disk format is a single compressed
``.npz`` holding the arrays plus a JSON metadata blob; loading is exact
round-trip.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.sync.program import Section, SyntheticProgram, ThreadWork

__all__ = ["load_program", "save_program"]

_FORMAT_VERSION = 1


def save_program(program: SyntheticProgram, path) -> None:
    """Serialise a program to ``path`` (``.npz``, compressed)."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    for si, section in enumerate(program.sections):
        for ti, work in enumerate(section.works):
            arrays[f"s{si}_t{ti}_addrs"] = work.addrs
            arrays[f"s{si}_t{ti}_gaps"] = work.gaps
    header = {
        "format_version": _FORMAT_VERSION,
        "name": program.name,
        "n_sections": len(program.sections),
        "n_threads": program.n_threads,
        "meta": program.meta,
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_program(path) -> SyntheticProgram:
    """Load a program previously stored with :func:`save_program`."""
    path = pathlib.Path(path)
    with np.load(path) as data:
        if "__header__" not in data:
            raise ValueError(f"{path} is not a repro program file (missing header)")
        header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
        version = header.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported program format version {version!r} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        sections = []
        for si in range(header["n_sections"]):
            works = []
            for ti in range(header["n_threads"]):
                addrs = data[f"s{si}_t{ti}_addrs"]
                gaps = data[f"s{si}_t{ti}_gaps"]
                works.append(ThreadWork(addrs=addrs, gaps=gaps))
            sections.append(Section(works=tuple(works)))
    return SyntheticProgram(
        name=header["name"],
        sections=tuple(sections),
        meta=dict(header.get("meta", {})),
    )
