"""Integer apportionment of cache ways from fractional shares.

The CPI-proportional scheme (paper Section VI-A) computes
``partition_t = CPI_t / sum(CPI_i) * TotalCacheWays`` which is fractional;
hardware way counters are integers and must sum exactly to the total way
count, with every thread keeping at least a minimum number of ways so it
can make forward progress at all.  Largest-remainder (Hamilton)
apportionment gives the canonical rounding with both properties.
"""

from __future__ import annotations

import numpy as np

__all__ = ["largest_remainder_apportion"]


def largest_remainder_apportion(
    shares,
    total: int,
    *,
    minimum: int = 1,
) -> list[int]:
    """Apportion ``total`` integer units proportionally to ``shares``.

    Parameters
    ----------
    shares:
        Non-negative weights, one per recipient.  An all-zero vector is
        treated as uniform (every recipient equally weighted).
    total:
        Number of units to hand out; must satisfy
        ``total >= minimum * len(shares)``.
    minimum:
        Floor per recipient (default 1 way, so no thread is starved of
        cache entirely).

    Returns
    -------
    list[int] summing exactly to ``total`` with each entry >= ``minimum``.
    """
    shares = np.asarray(shares, dtype=np.float64)
    if shares.ndim != 1 or shares.size == 0:
        raise ValueError("shares must be a non-empty 1-D sequence")
    if np.any(shares < 0) or not np.all(np.isfinite(shares)):
        raise ValueError("shares must be finite and non-negative")
    n = shares.size
    if minimum < 0:
        raise ValueError("minimum must be >= 0")
    if total < minimum * n:
        raise ValueError(f"total={total} cannot satisfy minimum={minimum} for {n} recipients")

    ssum = shares.sum()
    if ssum == 0.0:
        shares = np.ones(n)
        ssum = float(n)

    # Apportion the units above the guaranteed floor.
    spare = total - minimum * n
    ideal = shares / ssum * spare
    base = np.floor(ideal).astype(np.int64)
    remainder = ideal - base
    leftover = spare - int(base.sum())
    if leftover:
        # Ties broken by lower index for determinism (stable sort).
        order = np.argsort(-remainder, kind="stable")
        base[order[:leftover]] += 1
    result = (base + minimum).tolist()
    assert sum(result) == total
    return [int(v) for v in result]
