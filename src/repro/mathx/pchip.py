"""Shape-preserving cubic interpolation (PCHIP, Fritsch-Carlson).

A natural cubic spline through monotone knots can still overshoot
*between* them, and for the runtime's CPI models an overshoot is not a
cosmetic flaw: a bump that rises with ways reads as "giving this thread
capacity hurts it" and blocks the optimiser.  PCHIP chooses Hermite
tangents (Fritsch-Carlson weighted harmonic mean) so the interpolant is
monotone wherever the data are, at the cost of C2 continuity the models
never needed.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

__all__ = ["PchipSpline1D"]


class PchipSpline1D:
    """Monotone piecewise-cubic Hermite interpolant.

    Same calling convention as :class:`repro.mathx.spline.CubicSpline1D`:
    callable on scalars or arrays, ``knots`` attribute, and ``"clamp"`` or
    ``"linear"`` extrapolation outside the knot range.
    """

    def __init__(self, x, y, *, extrapolation: str = "clamp") -> None:
        if extrapolation not in ("clamp", "linear"):
            raise ValueError(f"unknown extrapolation mode {extrapolation!r}")
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 1 or x.shape != y.shape or x.size < 2:
            raise ValueError("need >= 2 equal-length 1-D knot arrays")
        if np.any(np.diff(x) <= 0):
            raise ValueError("knots must be strictly increasing")
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            raise ValueError("knots must be finite")
        self.x = x
        self.y = y
        self.extrapolation = extrapolation
        self._d = self._fritsch_carlson_tangents(x, y)
        # Plain-float mirrors for the scalar fast path (the runtime's
        # optimiser evaluates models one way-count at a time, where
        # whole-array numpy dispatch overhead dominates the arithmetic).
        self._xl = x.tolist()
        self._yl = y.tolist()
        self._dl = self._d.tolist()

    @staticmethod
    def _fritsch_carlson_tangents(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        h = np.diff(x)
        delta = np.diff(y) / h  # secant slopes
        n = x.size
        d = np.zeros(n)
        if n == 2:
            d[:] = delta[0]
            return d
        # Interior tangents: weighted harmonic mean when the secants agree
        # in sign, zero at local extrema (this is what kills overshoot).
        for i in range(1, n - 1):
            # Compare signs directly: the product of two denormal secants
            # underflows to -0.0 and would miss the opposite-sign case.
            if delta[i - 1] == 0.0 or delta[i] == 0.0 or np.sign(delta[i - 1]) != np.sign(delta[i]):
                d[i] = 0.0
            else:
                w1 = 2 * h[i] + h[i - 1]
                w2 = h[i] + 2 * h[i - 1]
                with np.errstate(over="ignore"):
                    denom = w1 / delta[i - 1] + w2 / delta[i]
                # A denormally small secant overflows the reciprocal (or
                # opposite reciprocals cancel to zero); the harmonic mean's
                # limit there is a zero tangent.
                d[i] = (w1 + w2) / denom if np.isfinite(denom) and denom != 0.0 else 0.0
        # One-sided endpoint tangents (shape-preserving variant).
        d[0] = PchipSpline1D._edge_tangent(h[0], h[1], delta[0], delta[1])
        d[-1] = PchipSpline1D._edge_tangent(h[-1], h[-2], delta[-1], delta[-2])
        return d

    @staticmethod
    def _edge_tangent(h0: float, h1: float, d0: float, d1: float) -> float:
        t = ((2 * h0 + h1) * d0 - h0 * d1) / (h0 + h1)
        if t * d0 <= 0:
            return 0.0
        if d0 * d1 < 0 and abs(t) > 3 * abs(d0):
            return 3 * d0
        return t

    @property
    def knots(self) -> np.ndarray:
        return self.x

    def __call__(self, q):
        if isinstance(q, (int, float)):
            return self._eval_scalar(float(q))
        scalar = np.isscalar(q)
        q_arr = np.atleast_1d(np.asarray(q, dtype=np.float64))
        out = self._eval(q_arr)
        return float(out[0]) if scalar else out

    def _eval_scalar(self, q: float) -> float:
        """Scalar evaluation in plain floats, bit-identical to `_eval`.

        Every operation is an IEEE-754 add/sub/mul/div performed in the
        same order as the vectorised path (which avoids `**`, whose
        numpy ufunc is not correctly rounded), so both paths return the
        same bits for the same input.
        """
        xl, yl, dl = self._xl, self._yl, self._dl
        x0 = xl[0]
        xn = xl[-1]
        qc = x0 if q < x0 else (xn if q > xn else q)
        i = bisect_right(xl, qc) - 1
        hi_idx = len(xl) - 2
        if i < 0:
            i = 0
        elif i > hi_idx:
            i = hi_idx
        h = xl[i + 1] - xl[i]
        t = (qc - xl[i]) / h
        u = 1 - t
        u2 = u * u
        out = (
            (1 + 2 * t) * u2 * yl[i]
            + t * u2 * h * dl[i]
            + t * t * (3 - 2 * t) * yl[i + 1]
            + t * t * (t - 1) * h * dl[i + 1]
        )
        if self.extrapolation == "linear":
            if q < x0:
                out = yl[0] + dl[0] * (q - x0)
            elif q > xn:
                out = yl[-1] + dl[-1] * (q - xn)
        return out

    def _eval(self, q: np.ndarray) -> np.ndarray:
        x, y, d = self.x, self.y, self._d
        qc = np.clip(q, x[0], x[-1])
        idx = np.clip(np.searchsorted(x, qc, side="right") - 1, 0, x.size - 2)
        h = x[idx + 1] - x[idx]
        t = (qc - x[idx]) / h
        # Cubic Hermite basis.  Squares are spelled as multiplies so the
        # scalar fast path can reproduce them exactly (numpy's `**`
        # ufunc is not correctly rounded and matches neither python
        # `**` nor an explicit multiply).
        u = 1 - t
        u2 = u * u
        h00 = (1 + 2 * t) * u2
        h10 = t * u2
        h01 = t * t * (3 - 2 * t)
        h11 = t * t * (t - 1)
        out = h00 * y[idx] + h10 * h * d[idx] + h01 * y[idx + 1] + h11 * h * d[idx + 1]
        if self.extrapolation == "linear":
            lo = q < x[0]
            hi = q > x[-1]
            if np.any(lo):
                out[lo] = y[0] + d[0] * (q[lo] - x[0])
            if np.any(hi):
                out[hi] = y[-1] + d[-1] * (q[hi] - x[-1])
        return out
