"""Natural cubic spline interpolation, written from scratch.

The paper (Section VI-B) builds a runtime *CPI-vs-cache-ways* model for each
thread using "a simple cubic spline interpolation" over the ``(ways, CPI)``
data points observed so far, and explicitly notes that the choice of curve
fitter is independent of the partitioning scheme.  This module provides that
fitter with well-defined degenerate behaviour:

* one data point   -> a constant model,
* two data points  -> a linear model,
* three or more    -> a natural cubic spline (second derivative zero at the
  end knots), evaluated piecewise.

Outside the observed range the model *clamps* to the boundary value by
default (``extrapolation="clamp"``).  Clamping is the conservative choice
for cache models: a cubic polynomial extended beyond its knots can swing to
absurd (even negative) CPI predictions, which would let the optimiser chase
phantom gains at way counts it has never observed.  Linear extension is
available for callers that want a gradient signal beyond the data.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

__all__ = ["CubicSpline1D", "LinearModel1D", "fit_cpi_model"]


def _as_sorted_unique(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort by ``x`` and average ``y`` over duplicate ``x`` values.

    Duplicate abscissae are common in our setting: a thread may be assigned
    the same number of ways in several intervals with different observed
    CPIs.  A spline needs strictly increasing knots, so duplicates collapse
    to their mean, which is also the least-squares constant fit per knot.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1 or x.shape != y.shape:
        raise ValueError(f"x and y must be 1-D and equal length, got {x.shape} vs {y.shape}")
    if x.size == 0:
        raise ValueError("need at least one data point")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise ValueError("data points must be finite")
    order = np.argsort(x, kind="stable")
    x, y = x[order], y[order]
    ux, inverse = np.unique(x, return_inverse=True)
    if ux.size == x.size:
        return x, y
    uy = np.zeros_like(ux)
    counts = np.zeros_like(ux)
    np.add.at(uy, inverse, y)
    np.add.at(counts, inverse, 1.0)
    return ux, uy / counts


@dataclass(frozen=True)
class LinearModel1D:
    """Degenerate model used when fewer than three distinct knots exist.

    With one knot it is a constant; with two it is the secant line through
    them.  Shares the evaluation interface of :class:`CubicSpline1D`.
    """

    x: np.ndarray
    y: np.ndarray
    extrapolation: str = "clamp"

    def __call__(self, q: float | np.ndarray) -> float | np.ndarray:
        if isinstance(q, (int, float)):
            # Scalar fast path in plain floats; same IEEE ops and order
            # as the array path below, so the bits agree.
            q = float(q)
            if self.x.size == 1:
                return float(self.y[0])
            x0 = float(self.x[0])
            y0 = float(self.y[0])
            slope = (float(self.y[1]) - y0) / (float(self.x[1]) - x0)
            qq = q
            if self.extrapolation == "clamp":
                xn = float(self.x[-1])
                qq = x0 if q < x0 else (xn if q > xn else q)
            return y0 + slope * (qq - x0)
        q_arr = np.asarray(q, dtype=np.float64)
        if self.x.size == 1:
            out = np.full_like(q_arr, self.y[0], dtype=np.float64)
        else:
            slope = (self.y[1] - self.y[0]) / (self.x[1] - self.x[0])
            qq = q_arr
            if self.extrapolation == "clamp":
                qq = np.clip(q_arr, self.x[0], self.x[-1])
            out = self.y[0] + slope * (qq - self.x[0])
        return float(out) if np.isscalar(q) else out

    @property
    def knots(self) -> np.ndarray:
        return self.x


class CubicSpline1D:
    """Natural cubic spline through strictly increasing knots.

    Solves the classic tridiagonal system for the knot second derivatives
    ``M_i`` with natural boundary conditions ``M_0 = M_{n-1} = 0`` (Thomas
    algorithm), then evaluates the standard piecewise-cubic form.

    Parameters
    ----------
    x, y:
        Knot abscissae (strictly increasing after dedup) and ordinates.
    extrapolation:
        ``"clamp"`` (default) holds boundary values outside the knot range;
        ``"linear"`` extends with the boundary tangent.
    """

    def __init__(self, x, y, *, extrapolation: str = "clamp") -> None:
        if extrapolation not in ("clamp", "linear"):
            raise ValueError(f"unknown extrapolation mode {extrapolation!r}")
        x, y = _as_sorted_unique(np.asarray(x), np.asarray(y))
        if x.size < 3:
            raise ValueError("CubicSpline1D needs >= 3 distinct knots; use fit_cpi_model")
        self.x = x
        self.y = y
        self.extrapolation = extrapolation
        self._m = self._solve_second_derivatives(x, y)
        # Plain-float mirrors for the scalar fast path.
        self._xl = x.tolist()
        self._yl = y.tolist()
        self._ml = self._m.tolist()

    @staticmethod
    def _solve_second_derivatives(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        n = x.size
        h = np.diff(x)  # interval widths, all > 0 by construction
        # Right-hand side: 6 * divided-difference second differences.
        rhs = 6.0 * ((y[2:] - y[1:-1]) / h[1:] - (y[1:-1] - y[:-2]) / h[:-1])
        # Tridiagonal system over the n-2 interior knots.
        diag = 2.0 * (h[:-1] + h[1:])
        lower = h[:-1].copy()
        upper = h[1:].copy()
        m_inner = _thomas_solve(lower[1:], diag, upper[:-1], rhs)
        m = np.zeros(n)
        m[1:-1] = m_inner
        return m

    @property
    def knots(self) -> np.ndarray:
        return self.x

    def __call__(self, q: float | np.ndarray) -> float | np.ndarray:
        if isinstance(q, (int, float)):
            return self._eval_scalar(float(q))
        scalar = np.isscalar(q)
        q_arr = np.atleast_1d(np.asarray(q, dtype=np.float64))
        out = self._eval(q_arr)
        return float(out[0]) if scalar else out

    def _eval_scalar(self, q: float) -> float:
        """Scalar evaluation in plain floats, bit-identical to `_eval`.

        Same IEEE add/sub/mul/div sequence as the vectorised path (which
        spells cubes/squares as multiplies because numpy's `**` ufunc is
        not correctly rounded), so both paths agree bit-for-bit.
        """
        xl, yl, ml = self._xl, self._yl, self._ml
        x0 = xl[0]
        xn = xl[-1]
        qc = x0 if q < x0 else (xn if q > xn else q)
        i = bisect_right(xl, qc) - 1
        hi_idx = len(xl) - 2
        if i < 0:
            i = 0
        elif i > hi_idx:
            i = hi_idx
        h = xl[i + 1] - xl[i]
        a = (xl[i + 1] - qc) / h
        b = (qc - xl[i]) / h
        out = (
            a * yl[i]
            + b * yl[i + 1]
            + ((a * a * a - a) * ml[i] + (b * b * b - b) * ml[i + 1]) * (h * h) / 6.0
        )
        if self.extrapolation == "linear":
            if q < x0:
                out = yl[0] + self._derivative_at_knot(0) * (q - x0)
            elif q > xn:
                out = yl[-1] + self._derivative_at_knot(-1) * (q - xn)
        return out

    def _eval(self, q: np.ndarray) -> np.ndarray:
        x, y, m = self.x, self.y, self._m
        qc = np.clip(q, x[0], x[-1])
        idx = np.clip(np.searchsorted(x, qc, side="right") - 1, 0, x.size - 2)
        h = x[idx + 1] - x[idx]
        a = (x[idx + 1] - qc) / h
        b = (qc - x[idx]) / h
        # Cubes/squares spelled as multiplies: see `_eval_scalar`.
        out = (
            a * y[idx]
            + b * y[idx + 1]
            + ((a * a * a - a) * m[idx] + (b * b * b - b) * m[idx + 1]) * (h * h) / 6.0
        )
        if self.extrapolation == "linear":
            lo = q < x[0]
            hi = q > x[-1]
            if np.any(lo):
                out[lo] = y[0] + self._derivative_at_knot(0) * (q[lo] - x[0])
            if np.any(hi):
                out[hi] = y[-1] + self._derivative_at_knot(-1) * (q[hi] - x[-1])
        return out

    def _derivative_at_knot(self, which: int) -> float:
        x, y, m = self.x, self.y, self._m
        if which == 0:
            h = x[1] - x[0]
            return float((y[1] - y[0]) / h - h * (2.0 * m[0] + m[1]) / 6.0)
        h = x[-1] - x[-2]
        return float((y[-1] - y[-2]) / h + h * (m[-2] + 2.0 * m[-1]) / 6.0)


def _thomas_solve(
    lower: np.ndarray, diag: np.ndarray, upper: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve a tridiagonal system in O(n) (Thomas algorithm).

    ``lower`` has length n-1 (sub-diagonal), ``diag`` length n, ``upper``
    length n-1 (super-diagonal).  The spline system is strictly diagonally
    dominant, so no pivoting is required.
    """
    n = diag.size
    if n == 0:
        return np.zeros(0)
    c = np.zeros(n - 1) if n > 1 else np.zeros(0)
    d = np.zeros(n)
    denom = diag[0]
    if n > 1:
        c[0] = upper[0] / denom
    d[0] = rhs[0] / denom
    for i in range(1, n):
        denom = diag[i] - lower[i - 1] * c[i - 1]
        if i < n - 1:
            c[i] = upper[i] / denom
        d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / denom
    out = np.zeros(n)
    out[-1] = d[-1]
    for i in range(n - 2, -1, -1):
        out[i] = d[i] - c[i] * out[i + 1]
    return out


def fit_cpi_model(ways, cpi, *, extrapolation: str = "clamp"):
    """Fit the runtime CPI-vs-ways model used by the partition engine.

    Dispatches on the number of *distinct* way counts observed:
    constant (1), linear (2), natural cubic spline (>= 3).  Returns a
    callable model with a ``knots`` attribute.
    """
    x, y = _as_sorted_unique(np.asarray(ways), np.asarray(cpi))
    if x.size < 3:
        return LinearModel1D(x=x, y=y, extrapolation=extrapolation)
    return CubicSpline1D(x, y, extrapolation=extrapolation)
