"""Small statistics helpers used by the motivation experiments.

The paper's Figure 5 reports the Pearson correlation coefficient between a
thread's per-interval CPI and its per-interval L2 miss count (average 0.97
across the nine benchmarks).  We reimplement the coefficient here so the
experiment code has a single, degenerate-safe definition.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pearson_correlation", "running_mean"]


def pearson_correlation(a, b) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either input has zero variance (a flat series carries
    no linear relationship either way), and raises on length mismatch or
    fewer than two samples, which would make the statistic undefined.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"inputs must be 1-D and equal length, got {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two samples")
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(b))):
        raise ValueError("inputs must be finite")
    da = a - a.mean()
    db = b - b.mean()
    denom = np.sqrt((da @ da) * (db @ db))
    if denom == 0.0:
        return 0.0
    return float(np.clip((da @ db) / denom, -1.0, 1.0))


def running_mean(values, window: int):
    """Centered-ish trailing moving average used for plotting smoothing.

    ``window`` must be >= 1; the first ``window - 1`` outputs average the
    prefix seen so far, so the result has the same length as the input.
    """
    values = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    if values.ndim != 1:
        raise ValueError("values must be 1-D")
    if values.size == 0:
        return values.copy()
    csum = np.cumsum(values)
    out = np.empty_like(values)
    w = min(window, values.size)
    out[:w] = csum[:w] / np.arange(1, w + 1)
    if values.size > w:
        out[w:] = (csum[w:] - csum[:-w]) / w
    return out
