"""Isotonic regression (pool-adjacent-violators) for model monotonisation.

A thread's true CPI-vs-ways and misses-vs-ways curves are non-increasing:
by the LRU inclusion property, a cache with more ways holds a superset of
the lines, so capacity can only help.  Observed interval samples violate
this through noise and through transients (a sample taken while the cache
was still converging to a new partition can be wildly pessimistic).  A
single such poisoned knot makes the fitted curve predict that *more ways
hurt*, which permanently blocks the optimiser from feeding that thread.

Projecting the knots onto the nearest non-increasing sequence (in the
least-squares sense — exactly what PAVA computes) removes the artifact
while preserving every genuine trend.
"""

from __future__ import annotations

import numpy as np

__all__ = ["isotonic_nonincreasing"]


def isotonic_nonincreasing(values, weights=None) -> np.ndarray:
    """Least-squares projection of ``values`` onto non-increasing sequences.

    Classic pool-adjacent-violators in O(n): scan left to right merging
    any block that rises above its predecessor into a weighted-mean pool.
    ``weights`` default to 1.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValueError("values must be 1-D")
    if v.size == 0:
        return v.copy()
    if not np.all(np.isfinite(v)):
        raise ValueError("values must be finite")
    w = np.ones_like(v) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != v.shape:
        raise ValueError("weights must match values")
    if np.any(w <= 0):
        raise ValueError("weights must be positive")

    # Blocks as (mean, weight, count) merged while order is violated.
    means: list[float] = []
    wsum: list[float] = []
    count: list[int] = []
    for val, wt in zip(v, w, strict=True):
        means.append(float(val))
        wsum.append(float(wt))
        count.append(1)
        # Non-increasing: a block must not exceed its predecessor.
        while len(means) > 1 and means[-1] > means[-2]:
            m2, w2, c2 = means.pop(), wsum.pop(), count.pop()
            m1, w1, c1 = means.pop(), wsum.pop(), count.pop()
            means.append((m1 * w1 + m2 * w2) / (w1 + w2))
            wsum.append(w1 + w2)
            count.append(c1 + c2)

    out = np.empty_like(v)
    i = 0
    for m, c in zip(means, count, strict=True):
        out[i : i + c] = m
        i += c
    return out
