"""Numerical kernels used by the partitioning runtime.

This package intentionally implements its own primitives (natural cubic
spline, Pearson correlation, largest-remainder apportionment) instead of
leaning on SciPy, because the paper treats the curve fitter as a swappable
component of the runtime system and we want the exact, documented semantics
under test.  SciPy is only used in the test-suite as an oracle.
"""

from repro.mathx.isotonic import isotonic_nonincreasing
from repro.mathx.pchip import PchipSpline1D
from repro.mathx.rounding import largest_remainder_apportion
from repro.mathx.spline import CubicSpline1D, LinearModel1D, fit_cpi_model
from repro.mathx.stats import pearson_correlation, running_mean

__all__ = [
    "CubicSpline1D",
    "LinearModel1D",
    "PchipSpline1D",
    "fit_cpi_model",
    "isotonic_nonincreasing",
    "largest_remainder_apportion",
    "pearson_correlation",
    "running_mean",
]
