"""RemoteEngine: the ExecutionEngine that runs a batch on a worker fleet.

One dispatcher thread per worker address pulls jobs from a shared queue,
ships them over the wire (``repro.dist.protocol``), and finalises
outcomes under one lock — so ``on_outcome`` consumers (the sweep
journal, incremental store writes) see the same single-threaded call
discipline the in-process engines give them.  The coordinator owns all
retry state: a worker executes exactly one attempt per ``job`` frame,
which is what makes attempts transferable between workers when one
dies.

Failure model (DESIGN.md §G):

* an attempt that fails *on* a worker (job exception) is a normal retry
  — same budget, same backoff as every other engine, via the shared
  :class:`~repro.exec.engine.EngineOptions` semantics;
* a link that dies *after* a job was shipped consumes that attempt (the
  coordinator cannot know how far the worker got, and the simulation is
  deterministic, so re-running is always safe) and the dispatcher
  reconnects; if the worker stays unreachable it is declared lost and
  its in-flight job is requeued for the rest of the fleet;
* when every worker is lost, the engine degrades to the in-process
  serial path — the same loud, per-batch degradation contract as
  :class:`~repro.exec.pool.ProcessPoolEngine`, so a sweep *always*
  completes with an outcome per job.

Network faults (``slow-link``, ``conn-drop``, ``partition``) fire on the
coordinator side of the wire, keyed on ``(job label, attempt)`` by the
same seeded roll as every other injector; ``worker-vanish`` fires on the
worker.  Determinism in the key — not in socket timing — is what keeps
``SweepResult.aggregates()`` byte-identical to a serial run under chaos.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from collections.abc import Sequence

from repro.dist import codec
from repro.dist.protocol import (
    ProtocolError,
    hello_frame,
    recv_frame,
    send_frame,
)
from repro.dist.registry import (
    WorkerRegistry,
    format_address,
    parse_worker_address,
)
from repro.exec.engine import EngineOptions, ExecutionEngine, OnOutcome
from repro.exec.faults import announce_faults, get_fault_plan
from repro.exec.jobs import JobOutcome, JobSpec
from repro.obs.events import JobEndEvent, JobShippedEvent, JobStartEvent, RetryEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["RemoteEngine"]

#: Sentinel returned by ``_dispatch_batch_unit`` when the worker is gone
#: for good and its dispatcher thread must exit.
_LOST = object()


class _Link:
    """One live, handshaken connection to a worker."""

    __slots__ = ("sock", "worker_id", "pid", "caps")

    def __init__(
        self,
        sock: socket.socket,
        worker_id: str,
        pid: int,
        caps: frozenset[str] = frozenset(),
    ) -> None:
        self.sock = sock
        self.worker_id = worker_id
        self.pid = pid
        self.caps = caps

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _Batch:
    """Shared state for one ``run()``: the queue, attempts, outcomes.

    The queue holds *units* — index tuples.  Per-job traffic uses
    1-tuples; the batch planner's multi-lane groups travel as whole
    units so one worker executes all lanes of a group in one pass.  A
    unit that cannot be executed batched (incapable worker, failed
    attempt) is *decomposed* into 1-tuples and re-enters the queue.
    """

    def __init__(self, specs: list[JobSpec], units: list[tuple[int, ...]]) -> None:
        self.specs = specs
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        self.pending: deque[tuple[int, ...]] = deque(units)
        self.inflight: set[int] = set()
        self.attempts = [0] * len(specs)
        self.outcomes: list[JobOutcome | None] = [None] * len(specs)
        self.last_error = "no workers reached"

    def claim(self) -> tuple[int, ...] | None:
        """Next unit, or None once the batch has fully drained.
        Blocks while the queue is empty but other dispatchers still have
        jobs in flight (their failures may requeue work for us)."""
        with self.ready:
            while True:
                if self.pending:
                    unit = self.pending.popleft()
                    self.inflight.update(unit)
                    return unit
                if not self.inflight:
                    return None
                self.ready.wait(timeout=0.05)

    def release(self, unit: tuple[int, ...], *, requeue: bool) -> None:
        with self.ready:
            self.inflight.difference_update(unit)
            if requeue:
                self.pending.append(unit)
            self.ready.notify_all()

    def decompose(self, unit: tuple[int, ...]) -> None:
        """Requeue a failed/unshippable multi-lane unit as singles; the
        cells keep their attempt budgets and take the per-job path."""
        with self.ready:
            self.inflight.difference_update(unit)
            for idx in unit:
                self.pending.append((idx,))
            self.ready.notify_all()

    def unfinished(self) -> list[int]:
        with self.lock:
            return [i for i, o in enumerate(self.outcomes) if o is None]


class RemoteEngine(ExecutionEngine):
    """Dispatches jobs to remote workers over length-prefixed JSON/TCP.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs).  ``jobs`` — the engine's parallelism as the serve layer's
        admission control sees it — is the live fleet size.  May be empty
        when a ``membership`` source is given.
    membership:
        Optional discovery source — anything with ``addresses() ->
        [(host, port), ...]`` (a fleet registrar, a file registry, the
        engine's own :class:`WorkerRegistry`).  With a membership source
        the batch loop polls it while the batch runs and *admits late
        joiners mid-sweep*: each newly advertised address gets its own
        dispatcher thread against the shared claim/release batch.  A
        batch started against an empty fleet waits up to ``fleet_wait_s``
        for the first worker before degrading to serial.
    publish_results:
        Ask workers advertising the ``store-publish`` cap to file results
        in their configured shared store themselves; the outcome frame
        then carries only the cell summary (no result bytes).  Leave off
        for paths that need ``JobOutcome.result`` locally (``repro run``).
    connect_timeout_s / io_timeout_s:
        Socket budgets for establishing a link and for one frame
        round-trip.  A worker that blows ``io_timeout_s`` mid-job is
        treated as lost (its attempt is consumed and requeued).
    options / retry-backoff kwargs / job_runner:
        The shared :class:`~repro.exec.engine.EngineOptions` semantics;
        ``job_runner`` only runs locally on the degrade-to-serial path
        (workers run their own).
    """

    name = "remote"

    def __init__(
        self,
        workers: Sequence,
        *,
        options: EngineOptions | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
        backoff_cap_s: float | None = None,
        backoff_budget_s: float | None = None,
        job_runner=None,
        connect_timeout_s: float = 10.0,
        io_timeout_s: float | None = 600.0,
        membership=None,
        fleet_poll_s: float = 0.25,
        fleet_wait_s: float = 60.0,
        publish_results: bool = False,
    ) -> None:
        super().__init__(
            options=options,
            max_retries=max_retries,
            backoff_s=backoff_s,
            backoff_cap_s=backoff_cap_s,
            backoff_budget_s=backoff_budget_s,
            job_runner=job_runner,
        )
        self.addresses = [parse_worker_address(w) for w in workers or ()]
        self.membership = membership
        if not self.addresses and membership is None:
            raise ValueError(
                "RemoteEngine needs at least one worker address or a membership source"
            )
        self.fleet_poll_s = fleet_poll_s
        self.fleet_wait_s = fleet_wait_s
        self.publish_results = publish_results
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self.registry = WorkerRegistry()
        self._backoff_budget_lock = threading.Lock()

    @property
    def jobs(self) -> int:
        """Live parallelism estimate for schedulers and admission control:
        the widest of the static list, the discovered membership, and the
        currently connected fleet — never below 1."""
        known = len(self.addresses)
        if self.membership is not None:
            try:
                known = max(known, len(self._membership_addresses()))
            except Exception:
                pass
        return max(known, len(self.registry), 1)

    def _membership_addresses(self) -> list[tuple[str, int]]:
        """The discovery source's current view, normalised; empty on error
        (a briefly unreachable registrar must not kill a running batch)."""
        if self.membership is None:
            return []
        try:
            return [parse_worker_address(a) for a in self.membership.addresses()]
        except Exception:
            return []

    # -- engine contract -----------------------------------------------

    def run(
        self, specs: Sequence[JobSpec], *, on_outcome: OnOutcome | None = None
    ) -> list[JobOutcome]:
        specs = list(specs)
        if not specs:
            return []
        self._reset_backoff()
        batch = _Batch(specs, self._plan_units(specs))
        grid_digest = codec.batch_digest(specs)
        tracer = get_tracer()
        if tracer.enabled:
            # Workers cannot reach this process's tracer; narrate from here
            # (same discipline as the pool engine).
            for spec in specs:
                tracer.emit(
                    JobStartEvent(
                        label=spec.label, app=spec.app, policy=spec.policy, engine=self.name
                    )
                )
        threads: dict[str, threading.Thread] = {}

        def spawn(address: tuple[str, int]) -> None:
            key = format_address(address)
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(address, batch, grid_digest, on_outcome),
                name=f"dispatch-{key}",
                daemon=True,
            )
            threads[key] = thread
            thread.start()

        for address in self.addresses:
            spawn(address)
        if self.membership is None:
            for thread in threads.values():
                thread.join()
        else:
            self._run_with_admission(batch, threads, spawn)

        leftovers = batch.unfinished()
        if leftovers:
            # Every worker is gone; the batch still completes, loudly.
            self._note_degraded(f"all workers lost ({batch.last_error})")
            for idx in leftovers:
                outcome = self._execute_with_retry(
                    specs[idx],
                    attempts_used=batch.attempts[idx],
                    engine_name=f"{self.name}→serial",
                    emit_start=False,
                )
                batch.outcomes[idx] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)
        assert all(o is not None for o in batch.outcomes)
        return batch.outcomes  # type: ignore[return-value]

    def _run_with_admission(self, batch: _Batch, threads, spawn) -> None:
        """Poll the membership source while the batch runs, admitting late
        joiners mid-sweep.

        Each advertised address gets at most one dispatcher per batch —
        a relaunched worker announces a fresh port, so respawning against
        a dead-but-still-advertised address would only livelock.  The
        batch ends when every outcome is in, or when no dispatcher has
        been alive for ``fleet_wait_s`` (empty or fully dead fleet) — the
        caller then degrades the leftovers to serial, loudly.
        """
        idle_since: float | None = None
        while True:
            for address in self._membership_addresses():
                if format_address(address) not in threads:
                    METRICS.counter("dist.workers_admitted").inc()
                    spawn(address)
            with batch.lock:
                done = all(o is not None for o in batch.outcomes)
            if done:
                break
            if any(t.is_alive() for t in threads.values()):
                idle_since = None
            else:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif now - idle_since >= self.fleet_wait_s:
                    if not threads:
                        batch.last_error = (
                            f"no workers discovered within {self.fleet_wait_s:.0f}s"
                        )
                    break
            time.sleep(self.fleet_poll_s)
        for thread in threads.values():
            thread.join(timeout=5.0)

    # -- per-worker dispatcher -----------------------------------------

    def _dispatch_loop(
        self,
        address: tuple[str, int],
        batch: _Batch,
        grid_digest: str,
        on_outcome: OnOutcome | None,
    ) -> None:
        plan = get_fault_plan()
        link: _Link | None = None
        try:
            while True:
                unit = batch.claim()
                if unit is None:
                    return
                if len(unit) > 1:
                    verdict = self._dispatch_batch_unit(
                        address, link, batch, unit, grid_digest, on_outcome
                    )
                    if verdict is _LOST:
                        link = None
                        return
                    link = verdict
                    continue
                idx = unit[0]
                spec = batch.specs[idx]
                attempt = batch.attempts[idx] + 1
                verdict = self._apply_net_faults(batch, idx, attempt, plan, on_outcome)
                if verdict == "conn-drop":
                    if link is not None:
                        link.close()
                        link = None
                    continue
                if verdict == "partition":
                    continue
                if link is None:
                    try:
                        link = self._connect(address, grid_digest, plan)
                    except (OSError, ProtocolError) as exc:
                        # Nothing was shipped: the job keeps its attempt
                        # budget and goes back for the rest of the fleet.
                        batch.last_error = f"{format_address(address)}: {exc}"
                        batch.release((idx,), requeue=True)
                        self.registry.note_lost(address, str(exc), requeued=1)
                        return
                try:
                    self._ship(link, spec, attempt, grid_digest)
                    outcome = self._await_outcome(link, spec)
                except (OSError, ProtocolError) as exc:
                    # The link died under this job: the attempt is consumed
                    # (we cannot know how far the worker got; reruns are
                    # safe by determinism), and we try one fresh link.
                    error = f"worker {format_address(address)} lost: {exc}"
                    link.close()
                    link = None
                    self._attempt_failed(batch, idx, attempt, error, on_outcome, plan)
                    if not self._reachable(address):
                        batch.last_error = error
                        self.registry.note_lost(address, str(exc), requeued=1)
                        return
                    continue
                if outcome.get("ok"):
                    self._record_success(batch, idx, attempt, outcome, on_outcome, plan)
                else:
                    self._attempt_failed(
                        batch, idx, attempt, str(outcome.get("error")), on_outcome, plan
                    )
        finally:
            if link is not None:
                try:
                    send_frame(link.sock, {"type": "bye"})
                except OSError:
                    pass
                link.close()

    def _dispatch_batch_unit(
        self,
        address: tuple[str, int],
        link: _Link | None,
        batch: _Batch,
        unit: tuple[int, ...],
        grid_digest: str,
        on_outcome: OnOutcome | None,
    ):
        """Ship one multi-lane unit; returns the (possibly new) link, or
        :data:`_LOST` when the worker is unreachable and the dispatcher
        must exit.

        Failure never retries the *unit*: an incapable worker, a failed
        batch attempt, or a dead link all decompose the unit into
        singles, which re-enter the queue with their attempt budgets
        intact and take the fleet's ordinary per-job path.  Fault plans
        never coexist with batching (the planner gates on them), so no
        net/job faults fire here.
        """
        if link is None:
            try:
                link = self._connect(address, grid_digest, None)
            except (OSError, ProtocolError) as exc:
                batch.last_error = f"{format_address(address)}: {exc}"
                batch.release(unit, requeue=True)
                self.registry.note_lost(address, str(exc), requeued=len(unit))
                return _LOST
        if "batch" not in link.caps:
            METRICS.counter("dist.batch_unsupported").inc()
            batch.decompose(unit)
            return link
        specs = [batch.specs[i] for i in unit]
        try:
            self._ship_batch(link, specs, grid_digest)
            frame = self._await_batch_outcome(link, specs)
        except (OSError, ProtocolError) as exc:
            METRICS.counter("batch.failed").inc()
            error = f"worker {format_address(address)} lost: {exc}"
            link.close()
            batch.decompose(unit)
            if not self._reachable(address):
                batch.last_error = error
                self.registry.note_lost(address, str(exc), requeued=len(unit))
                return _LOST
            return None
        if frame.get("ok"):
            self._record_batch_success(batch, unit, frame, on_outcome)
        else:
            METRICS.counter("batch.failed").inc()
            batch.decompose(unit)
        return link

    def _ship_batch(
        self, link: _Link, specs: list[JobSpec], grid_digest: str
    ) -> None:
        METRICS.counter("dist.jobs_shipped").inc(len(specs))
        METRICS.counter("dist.batches_shipped").inc()
        send_frame(
            link.sock,
            {
                "type": "batch",
                "grid_digest": grid_digest,
                "digest": codec.batch_digest(specs),
                "jobs": [codec.encode_spec(spec) for spec in specs],
            },
        )

    def _await_batch_outcome(self, link: _Link, specs: list[JobSpec]) -> dict:
        """Read frames until this unit's ``batch_outcome``, answering
        ``prep_fetch`` requests inline (same as :meth:`_await_outcome`)."""
        expect = codec.batch_digest(specs)
        label = f"batch[{specs[0].label}+{len(specs) - 1}]"
        while True:
            frame = recv_frame(link.sock)
            if frame is None:
                raise ProtocolError(f"worker closed while running {label}")
            if frame["type"] == "prep_fetch":
                self._serve_prep_fetch(link, frame)
                continue
            if frame["type"] == "error":
                raise ProtocolError(str(frame.get("error")))
            if frame["type"] != "batch_outcome":
                raise ProtocolError(
                    f"unexpected frame {frame['type']!r} awaiting batch outcome"
                )
            if frame.get("digest") != expect:
                raise ProtocolError(
                    f"batch outcome digest {frame.get('digest')!r} does not answer {label}"
                )
            return frame

    def _record_batch_success(
        self,
        batch: _Batch,
        unit: tuple[int, ...],
        frame: dict,
        on_outcome: OnOutcome | None,
    ) -> None:
        from repro.core.records import RunResult

        results = frame.get("results") or []
        if len(results) != len(unit):
            METRICS.counter("batch.failed").inc()
            batch.decompose(unit)
            return
        per_cell = float(frame.get("duration_s", 0.0)) / len(unit)
        with batch.lock:
            for idx, payload in zip(unit, results):
                spec = batch.specs[idx]
                batch.attempts[idx] += 1
                outcome = JobOutcome(
                    spec=spec,
                    result=RunResult.from_dict(payload),
                    attempts=batch.attempts[idx],
                    duration_s=per_cell,
                    engine=self.name,
                )
                batch.outcomes[idx] = outcome
                METRICS.timer("exec.job").observe(per_cell)
                METRICS.counter("exec.jobs_ok").inc()
                if on_outcome is not None:
                    on_outcome(outcome)
        batch.release(unit, requeue=False)

    def _connect(
        self, address: tuple[str, int], grid_digest: str, plan
    ) -> _Link:
        sock = socket.create_connection(address, timeout=self.connect_timeout_s)
        sock.settimeout(self.io_timeout_s)
        send_frame(
            sock, hello_frame(grid_digest, None if plan is None else plan.to_dict())
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            error = (welcome or {}).get("error", "worker closed during handshake")
            sock.close()
            raise ProtocolError(f"handshake refused: {error}")
        link = _Link(
            sock,
            str(welcome.get("worker_id", "?")),
            int(welcome.get("pid", 0)),
            frozenset(welcome.get("caps") or ()),
        )
        self.registry.note_join(address, link.worker_id, link.pid)
        return link

    def _reachable(self, address: tuple[str, int]) -> bool:
        """Cheap liveness probe after a link death: can the worker still
        accept?  Distinguishes a dropped connection (reconnect and carry
        on) from a vanished worker (declare it lost)."""
        try:
            socket.create_connection(address, timeout=self.connect_timeout_s).close()
            return True
        except OSError:
            return False

    def _ship(self, link: _Link, spec: JobSpec, attempt: int, grid_digest: str) -> None:
        METRICS.counter("dist.jobs_shipped").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                JobShippedEvent(label=spec.label, worker=link.worker_id, attempt=attempt)
            )
        frame = {
            "type": "job",
            "grid_digest": grid_digest,
            "attempt": attempt,
            **codec.encode_spec(spec),
        }
        if self.publish_results and "store-publish" in link.caps:
            frame["publish"] = True
        send_frame(link.sock, frame)

    def _await_outcome(self, link: _Link, spec: JobSpec) -> dict:
        """Read frames until this job's outcome, answering ``prep_fetch``
        requests inline from the coordinator's prep store."""
        while True:
            frame = recv_frame(link.sock)
            if frame is None:
                raise ProtocolError(f"worker closed while running {spec.label}")
            if frame["type"] == "prep_fetch":
                self._serve_prep_fetch(link, frame)
                continue
            if frame["type"] == "error":
                raise ProtocolError(str(frame.get("error")))
            if frame["type"] != "outcome":
                raise ProtocolError(f"unexpected frame {frame['type']!r} awaiting outcome")
            if frame.get("digest") != spec.digest:
                raise ProtocolError(
                    f"outcome digest {frame.get('digest')!r} does not answer {spec.label}"
                )
            return frame

    def _serve_prep_fetch(self, link: _Link, frame: dict) -> None:
        from repro.prep import get_prep_store

        store = get_prep_store()
        bundle = store.get(frame.get("key")) if store is not None else None
        if bundle is None:
            send_frame(link.sock, {"type": "prep_bundle", "found": False})
            return
        METRICS.counter("dist.prep_shipped").inc()
        send_frame(
            link.sock,
            {
                "type": "prep_bundle",
                "found": True,
                "bundle": codec.encode_prep_bundle(bundle.meta, bundle.arrays),
            },
        )

    # -- fault hooks ----------------------------------------------------

    def _apply_net_faults(
        self, batch: _Batch, idx: int, attempt: int, plan, on_outcome: OnOutcome | None
    ) -> str:
        """Coordinator-side network faults for ``(job, attempt)``.

        Returns ``"ok"``, or the fault kind that consumed the attempt on
        the wire itself: ``"partition"`` ate the frame, ``"conn-drop"``
        killed the link before the job landed (the caller drops its
        link).  ``slow-link`` only delays.  ``worker-vanish`` is executed
        by the worker; nothing to do here (the link death comes back as
        an ``OSError``/EOF and takes the lost-worker path).
        """
        if plan is None:
            return "ok"
        spec = batch.specs[idx]
        for rule in plan.planned_net_faults(spec.label, attempt):
            if rule.kind == "slow-link":
                announce_faults((rule,), spec.label, attempt)
                time.sleep(rule.delay_s)
            elif rule.kind in ("partition", "conn-drop"):
                announce_faults((rule,), spec.label, attempt)
                error = f"injected {rule.kind} for {spec.label} (attempt {attempt})"
                self._attempt_failed(
                    batch, idx, attempt, error, on_outcome, plan, announce_job=False
                )
                return rule.kind
        return "ok"

    def _announce_job_faults(self, plan, spec: JobSpec, attempt: int) -> None:
        """The worker executed this attempt's job faults silently
        (announce=False); the coordinator announces them — identical to
        the pool parent's announce-at-submission discipline."""
        if plan is None:
            return
        rules = plan.planned_job_faults(spec.label, attempt)
        if rules:
            announce_faults(rules, spec.label, attempt)

    # -- outcome accounting ---------------------------------------------

    def _record_success(
        self,
        batch: _Batch,
        idx: int,
        attempt: int,
        frame: dict,
        on_outcome: OnOutcome | None,
        plan,
    ) -> None:
        spec = batch.specs[idx]
        if frame.get("published") and frame.get("total_cycles") is not None:
            # The worker filed the result in the shared store itself; the
            # frame carries only the summary the journal needs.  The
            # digest was already matched in _await_outcome.
            outcome = JobOutcome(
                spec=spec,
                published_cycles=frame["total_cycles"],
                attempts=attempt,
                duration_s=float(frame.get("duration_s", 0.0)),
                engine=self.name,
            )
            METRICS.counter("dist.results_published").inc()
        else:
            outcome = codec.decode_outcome(
                {**frame, "attempts": attempt, "engine": self.name}, spec
            )
        with batch.lock:
            batch.attempts[idx] = attempt
            self._announce_job_faults(plan, spec, attempt)
            batch.outcomes[idx] = outcome
            METRICS.timer("exec.job").observe(outcome.duration_s)
            METRICS.counter("exec.jobs_ok").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    JobEndEvent(
                        label=spec.label,
                        app=spec.app,
                        policy=spec.policy,
                        engine=self.name,
                        ok=True,
                        attempts=attempt,
                        duration_s=outcome.duration_s,
                    )
                )
            if on_outcome is not None:
                # Serialised under the batch lock: journal appends and
                # store puts see one caller at a time, whatever the
                # fleet's completion order.
                on_outcome(outcome)
        batch.release((idx,), requeue=False)

    def _attempt_failed(
        self,
        batch: _Batch,
        idx: int,
        attempt: int,
        error: str,
        on_outcome: OnOutcome | None,
        plan,
        *,
        announce_job: bool = True,
    ) -> None:
        spec = batch.specs[idx]
        final = attempt >= self.max_attempts
        with batch.lock:
            batch.attempts[idx] = attempt
            if announce_job:
                self._announce_job_faults(plan, spec, attempt)
            METRICS.counter("exec.retries").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    RetryEvent(label=spec.label, engine=self.name, attempt=attempt, error=error)
                )
            if final:
                outcome = JobOutcome(
                    spec=spec, error=error, attempts=attempt, engine=self.name
                )
                batch.outcomes[idx] = outcome
                METRICS.counter("exec.jobs_failed").inc()
                if tracer.enabled:
                    tracer.emit(
                        JobEndEvent(
                            label=spec.label,
                            app=spec.app,
                            policy=spec.policy,
                            engine=self.name,
                            ok=False,
                            attempts=attempt,
                            duration_s=0.0,
                            error=error,
                        )
                    )
                if on_outcome is not None:
                    on_outcome(outcome)
        batch.release((idx,), requeue=not final)
        if not final:
            self._threadsafe_backoff(attempt)

    def _threadsafe_backoff(self, failed_rounds: int) -> None:
        """The base class's jittered/capped/budgeted backoff, with the
        budget accounting made safe for concurrent dispatchers (the
        sleep itself happens outside the lock)."""
        if self.backoff_s <= 0:
            return
        import random

        with self._backoff_budget_lock:
            if self._backoff_left <= 0:
                return
            nominal = min(
                self.backoff_s * (2 ** (failed_rounds - 1)),
                self.backoff_cap_s,
                self._backoff_left,
            )
            delay = nominal * (0.5 + 0.5 * random.random())
            self._backoff_left -= delay
        time.sleep(delay)
