"""Worker fleet bookkeeping: addresses, membership, liveness.

The registry is the coordinator's view of its fleet.  It is deliberately
passive — dispatcher threads *report* joins and losses; the registry
turns them into the observability surface (``dist.workers_connected``
gauge, ``dist.worker_join``/``dist.worker_lost`` counters,
``worker_join``/``worker_lost`` trace events) and remembers enough for
``repro report`` to say which workers did what.

:func:`ping_worker` is the standalone liveness probe: a full handshake
plus one ping/pong round-trip, used by ``repro worker --ping`` style
checks and by tests that need to know a worker is accepting before they
point a sweep at it.
"""

from __future__ import annotations

import socket
import threading

from repro.dist.protocol import HandshakeError, hello_frame, recv_frame, send_frame
from repro.obs.events import WorkerJoinEvent, WorkerLostEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["WorkerRegistry", "format_address", "parse_worker_address", "ping_worker"]


def parse_worker_address(value) -> tuple[str, int]:
    """``host:port`` / ``[v6host]:port`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(value, tuple):
        host, port = value
        return str(host), int(port)
    text = str(value).strip()
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"worker address {value!r} is not host:port")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"worker address {value!r} has an empty bracketed host")
    elif ":" in host:
        raise ValueError(
            f"worker address {value!r} is ambiguous: bracket IPv6 hosts as [{host}]:{port}"
        )
    return host, int(port)


def format_address(address: tuple[str, int]) -> str:
    host = str(address[0])
    if ":" in host:  # IPv6 literal: bracket so the text round-trips through parse
        return f"[{host}]:{address[1]}"
    return f"{host}:{address[1]}"


class WorkerRegistry:
    """Thread-safe membership ledger for one coordinator's fleet."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._connected: dict[str, dict] = {}
        self.joined = 0
        self.lost = 0

    def note_join(self, address: tuple[str, int], worker_id: str, pid: int) -> None:
        addr = format_address(address)
        with self._lock:
            self._connected[addr] = {"worker": worker_id, "pid": pid}
            self.joined += 1
            METRICS.counter("dist.worker_join").inc()
            METRICS.gauge("dist.workers_connected").set(len(self._connected))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(WorkerJoinEvent(worker=worker_id, address=addr, pid=pid))

    def note_lost(self, address: tuple[str, int], reason: str, *, requeued: int = 0) -> bool:
        """Record the death of a *member*; returns whether anything was counted.

        The dispatch-failure path and the reachability probe can both
        report the same death (and a connect-refused retry reports a
        worker that never joined at all), so losses are only counted —
        and ``worker_lost`` only emitted — for addresses currently in the
        membership view.  Anything else is a duplicate or a stranger and
        is dropped so ``repro report`` stays honest.
        """
        addr = format_address(address)
        with self._lock:
            info = self._connected.pop(addr, None)
            if info is None:
                return False
            self.lost += 1
            METRICS.counter("dist.worker_lost").inc()
            METRICS.gauge("dist.workers_connected").set(len(self._connected))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                WorkerLostEvent(
                    worker=info["worker"],
                    address=addr,
                    reason=reason,
                    requeued=requeued,
                )
            )
        return True

    def connected(self) -> dict[str, dict]:
        with self._lock:
            return {addr: dict(info) for addr, info in self._connected.items()}

    def addresses(self) -> list[tuple[str, int]]:
        """Current members as ``(host, port)`` pairs (a membership view)."""
        with self._lock:
            keys = list(self._connected)
        return [parse_worker_address(addr) for addr in keys]

    def sweep(self, *, timeout_s: float = 2.0) -> list[str]:
        """Liveness sweep: ping every member, drop the unreachable.

        Returns the addresses that were evicted.  Incompatible-but-alive
        workers (``HandshakeError``) are left alone — they answered, so
        the link owner gets to decide what to do with them.
        """
        evicted: list[str] = []
        for address in self.addresses():
            try:
                ping_worker(address, timeout_s=timeout_s)
            except HandshakeError:
                continue
            except OSError as exc:
                if self.note_lost(address, f"liveness probe failed: {exc}"):
                    evicted.append(format_address(address))
        return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._connected)


def ping_worker(address: tuple[str, int], *, timeout_s: float = 5.0) -> dict:
    """Handshake + one ping round-trip; returns the worker's welcome info.

    Raises ``OSError`` if the worker is unreachable and
    :class:`~repro.dist.protocol.HandshakeError` if it is reachable but
    incompatible — callers distinguish "down" from "wrong build".
    """
    with socket.create_connection(address, timeout=timeout_s) as sock:
        send_frame(sock, hello_frame(None, None))
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            error = (welcome or {}).get("error", "worker closed during handshake")
            raise HandshakeError(error)
        send_frame(sock, {"type": "ping"})
        pong = recv_frame(sock)
        if pong is None or pong.get("type") != "pong":
            raise HandshakeError("worker did not answer ping")
        send_frame(sock, {"type": "bye"})
        return {
            "worker": welcome.get("worker_id", "?"),
            "pid": welcome.get("pid", 0),
            "version": welcome.get("version", "?"),
        }
