"""Wire protocol for distributed sweeps: framing, handshake, frame types.

Everything on a dist socket — coordinator↔worker job traffic and the
store proxy — speaks the same trivially debuggable format: a 4-byte
big-endian length prefix followed by one canonical-JSON object (sorted
keys, no whitespace).  Canonical encoding matters beyond aesthetics: the
content-addressed stores hash their payloads, so the bytes that cross
the wire must be the bytes a local run would have produced.

Every conversation opens with a handshake::

    client → {"type": "hello", "protocol": 1, "version": "<repro>",
              "grid_digest": "<sha256 | null>", "fault_plan": {...}|null}
    server → {"type": "welcome", "protocol": 1, "version": "<repro>",
              "worker_id": "...", "pid": ...}
           | {"type": "error", "error": "..."}   (and the server closes)

The server refuses mismatched ``protocol`` (incompatible framing/schema)
and mismatched ``version`` (simulator results are invalidated by
``repro.__version__``, so mixing versions in one sweep would poison the
byte-identity contract).  ``grid_digest`` names the batch being executed
— the digest of the sorted spec digests — and every subsequent ``job``
frame must carry the same digest, so a frame from a stale coordinator
(or a coordinator resumed onto a different grid) is refused rather than
silently executed.

Frame types after the handshake (job links):

* ``job`` — one attempt of one spec; the worker answers with exactly one
  ``outcome`` frame, possibly preceded by ``prep_fetch`` requests that
  the coordinator answers inline with ``prep_bundle`` frames.  A job
  frame may carry ``"publish": true``, which the coordinator only sets
  when the worker advertised the ``store-publish`` cap in its welcome:
  the worker then writes the result to its configured store and answers
  with a slim outcome (``"published": true, "total_cycles": N,
  "result": null``) instead of relaying the result bytes.
* ``ping``/``pong`` — liveness probe (the registry's heartbeat).
* ``bye`` — orderly end of the batch; the worker drops the connection
  and waits for the next coordinator.

Store-proxy links reuse the same hello/welcome (with ``grid_digest``
null) and then speak ``store_read``/``store_write``/``store_delete``/
``store_list``/``store_exists`` request frames, each answered by one
``store_reply``.

Registrar links (:mod:`repro.fleet.registrar`) also reuse the
handshake (``grid_digest`` null; the welcome advertises the
``registrar`` cap) followed by ``register``/``deregister``/``members``
request frames — workers announce themselves, coordinators poll the
membership view to admit late joiners mid-sweep.
"""

from __future__ import annotations

import json
import socket
import struct

import repro

__all__ = [
    "HandshakeError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "check_hello",
    "hello_frame",
    "recv_frame",
    "send_frame",
]

PROTOCOL_VERSION = 1

_LEN = struct.Struct(">I")

MAX_FRAME_BYTES = 256 * 1024 * 1024
"""Upper bound on one frame; a length prefix beyond this is garbage (a
stray client speaking another protocol), not a real payload."""


class ProtocolError(RuntimeError):
    """The peer violated framing or sent an unexpected frame."""


class HandshakeError(ProtocolError):
    """The peer is incompatible: wrong protocol, version, or grid."""


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Serialize ``payload`` canonically and send it length-prefixed."""
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LEN.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """``n`` bytes, or None on clean EOF at a frame boundary."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """One frame, or None when the peer closed at a frame boundary."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError("frame is not an object with a 'type'")
    return payload


def hello_frame(grid_digest: str | None, fault_plan: dict | None) -> dict:
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "version": repro.__version__,
        "grid_digest": grid_digest,
        "fault_plan": fault_plan,
    }


def check_hello(hello: dict) -> str | None:
    """Server-side handshake validation; the refusal string, or None.

    Refusals are *specific* — a fleet mixing deploys fails with the two
    versions in the message, not a generic handshake error.
    """
    if hello.get("type") != "hello":
        return f"expected hello, got {hello.get('type')!r}"
    if hello.get("protocol") != PROTOCOL_VERSION:
        return (
            f"protocol mismatch: peer speaks {hello.get('protocol')!r}, "
            f"this worker speaks {PROTOCOL_VERSION}"
        )
    if hello.get("version") != repro.__version__:
        return (
            f"version mismatch: coordinator runs {hello.get('version')!r}, "
            f"this worker runs {repro.__version__!r} — results would not mix"
        )
    return None
