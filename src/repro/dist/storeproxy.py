"""Client/server store proxy: a StoreBackend served over the wire.

A worker on another box has no path to the coordinator's result store.
:class:`StoreProxyServer` exports any
:class:`~repro.exec.backend.StoreBackend` (a local directory, a memory
backend, eventually an object store) over the dist protocol, and
:class:`ProxyBackend` is the client half — a ``StoreBackend`` whose five
operations each become one request/reply round-trip, so a
:class:`~repro.exec.store.ResultStore` built on it behaves identically
to a local one (same keys, same payloads, same corruption-evict
semantics) with the bytes living wherever the server is.

Blobs travel base64-encoded inside the JSON frames — simple beats fast
here; results are a few KB of JSON and the proxy is not on the
simulation hot path (the coordinator writes its own store during a
sweep; the proxy is for workers that must publish somewhere durable
without a shared filesystem).

The handshake is the standard hello/welcome with a null grid digest, so
a store proxy refuses cross-version clients exactly like a worker does:
a ``v1.6`` client can never file bytes into a ``v1.7`` server's
namespace under the wrong version's keys.
"""

from __future__ import annotations

import base64
import socket
import threading

from repro.dist.protocol import ProtocolError, check_hello, hello_frame, recv_frame, send_frame
from repro.exec.backend import StoreBackend
from repro.obs.metrics import METRICS

__all__ = ["ProxyBackend", "StoreProxyServer"]

_OPS = ("store_read", "store_write", "store_delete", "store_list", "store_exists", "store_sweep")


class StoreProxyServer:
    """Serves a backend's blobs to remote clients, one thread per client."""

    def __init__(self, backend: StoreBackend, host: str = "127.0.0.1", port: int = 0) -> None:
        self.backend = backend
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "StoreProxyServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name=f"storeproxy-{self.address[1]}", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                break
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def stop(self) -> None:
        self._stop.set()
        try:
            # shutdown() first: close() alone leaves the listener live
            # while the accept thread is blocked in accept() (the
            # syscall pins the open file description).
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "StoreProxyServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _serve(self, conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
            if hello is None:
                return
            refusal = check_hello(hello)
            if refusal is not None:
                send_frame(conn, {"type": "error", "error": refusal})
                return
            send_frame(
                conn,
                {
                    "type": "welcome",
                    "protocol": hello["protocol"],
                    "version": hello["version"],
                    "worker_id": f"storeproxy-{self.address[1]}",
                    "pid": 0,
                },
            )
            while True:
                frame = recv_frame(conn)
                if frame is None or frame["type"] == "bye":
                    return
                send_frame(conn, self._answer(frame))
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _answer(self, frame: dict) -> dict:
        op = frame["type"]
        if op not in _OPS:
            return {"type": "store_reply", "ok": False, "error": f"unknown op {op!r}"}
        METRICS.counter("dist.store_ops").inc()
        try:
            key = frame.get("key", "")
            if op == "store_read":
                data = self.backend.read(key)
                return {
                    "type": "store_reply",
                    "ok": True,
                    "found": data is not None,
                    "data": None if data is None else base64.b64encode(data).decode("ascii"),
                }
            if op == "store_write":
                self.backend.write(key, base64.b64decode(frame["data"]))
                return {"type": "store_reply", "ok": True}
            if op == "store_delete":
                return {"type": "store_reply", "ok": True, "deleted": self.backend.delete(key)}
            if op == "store_exists":
                return {"type": "store_reply", "ok": True, "found": self.backend.exists(key)}
            if op == "store_sweep":
                removed = self.backend.sweep_stale(
                    frame.get("prefix", ""), float(frame.get("ttl_s", 0.0))
                )
                return {"type": "store_reply", "ok": True, "removed": removed}
            # store_list
            return {
                "type": "store_reply",
                "ok": True,
                "keys": self.backend.list(frame.get("prefix", "")),
            }
        except (OSError, ValueError) as exc:
            return {
                "type": "store_reply",
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }


class ProxyBackend(StoreBackend):
    """The client half: a StoreBackend whose medium is a remote server.

    One connection, guarded by a lock (store operations are short and a
    worker's writes are already serialised per job).  The connection is
    lazy and self-healing: a dropped link reconnects on the next
    operation.  Operation errors surface as ``OSError`` — to a
    :class:`~repro.exec.store.ResultStore` that is indistinguishable
    from an unreadable disk, so the corrupt/miss machinery handles it.
    """

    name = "proxy"

    def __init__(self, address: tuple[str, int], *, timeout_s: float = 30.0) -> None:
        from repro.dist.registry import parse_worker_address

        self.address = parse_worker_address(address)
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    send_frame(self._sock, {"type": "bye"})
                except OSError:
                    pass
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def _ensure(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        sock = socket.create_connection(self.address, timeout=self.timeout_s)
        sock.settimeout(self.timeout_s)
        send_frame(sock, hello_frame(None, None))
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") != "welcome":
            error = (welcome or {}).get("error", "store proxy closed during handshake")
            sock.close()
            raise OSError(f"store proxy handshake refused: {error}")
        self._sock = sock
        return sock

    def _call(self, request: dict) -> dict:
        with self._lock:
            try:
                sock = self._ensure()
                send_frame(sock, request)
                reply = recv_frame(sock)
            except (OSError, ProtocolError) as exc:
                # Drop the link; the next operation reconnects.
                if self._sock is not None:
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                    self._sock = None
                raise OSError(f"store proxy call failed: {exc}") from exc
        if reply is None or reply.get("type") != "store_reply":
            raise OSError("store proxy sent no reply")
        if not reply.get("ok"):
            raise OSError(f"store proxy refused: {reply.get('error')}")
        return reply

    def read(self, key: str) -> bytes | None:
        reply = self._call({"type": "store_read", "key": key})
        if not reply.get("found"):
            return None
        return base64.b64decode(reply["data"])

    def write(self, key: str, data: bytes) -> None:
        self._call(
            {"type": "store_write", "key": key, "data": base64.b64encode(data).decode("ascii")}
        )

    def delete(self, key: str) -> bool:
        # Swallow link errors like a local unlink swallows OSError: a
        # failed eviction is a retryable inconvenience, not corruption.
        try:
            return bool(self._call({"type": "store_delete", "key": key}).get("deleted"))
        except OSError:
            return False

    def exists(self, key: str) -> bool:
        return bool(self._call({"type": "store_exists", "key": key}).get("found"))

    def list(self, prefix: str = "") -> list[str]:
        return list(self._call({"type": "store_list", "prefix": prefix}).get("keys", ()))

    def sweep_stale(self, prefix: str, ttl_s: float) -> int:
        try:
            return int(
                self._call(
                    {"type": "store_sweep", "prefix": prefix, "ttl_s": ttl_s}
                ).get("removed", 0)
            )
        except OSError:
            return 0
