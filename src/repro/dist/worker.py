"""The worker half of a distributed sweep: accept jobs, simulate, answer.

A :class:`WorkerServer` listens on one TCP port and serves coordinators
one connection at a time each (connections are independent threads, so a
``ping`` probe works while a batch runs).  Per connection:

1. handshake — refuse protocol/version mismatches
   (:func:`repro.dist.protocol.check_hello`) and install the
   coordinator's fault plan so both sides roll identical faults;
2. loop: one ``job`` frame → exactly one attempt → one ``outcome``
   frame.  The *coordinator* owns the retry loop and attempt numbering;
   the worker is stateless between frames, which is what makes worker
   loss survivable;
3. a job that misses the local prep store asks the coordinator for the
   bundle mid-job (``prep_fetch``/``prep_bundle``) — the socket is
   otherwise idle while the job runs, so the interleave is trivially
   ordered.

Fault injection: job-scoped faults fire here with ``announce=False``
(the coordinator announces them, same as the pool parent does for its
workers).  ``worker-vanish`` is the one network fault executed
worker-side: with ``exit_on_vanish`` (the real ``repro worker`` CLI) the
process dies with ``os._exit(3)``; in-process test workers emulate the
vanish by dropping their sockets instead — same wire-visible effect,
no test-process casualties.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.dist import codec
from repro.dist.protocol import (
    ProtocolError,
    check_hello,
    recv_frame,
    send_frame,
)
from repro.exec.engine import execute_job
from repro.exec.faults import FaultPlan, fire_job_faults, get_fault_plan, set_fault_plan
from repro.obs.metrics import METRICS

__all__ = ["WorkerServer"]


class WorkerServer:
    """One sweep worker: a listener plus per-connection service threads.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`address`).
    worker_id:
        Name reported in the handshake; defaults to ``host-pid``.
    job_runner:
        Callable ``spec -> RunResult`` (tests inject failing runners);
        defaults to the real simulation.
    exit_on_vanish:
        When True (the CLI worker process), an injected ``worker-vanish``
        kills the process with ``os._exit(3)``.  When False (in-process
        workers in tests), the server emulates the vanish by closing its
        sockets and listener.
    install_prep_fetcher:
        When True, a prep-store miss during a job is forwarded to the
        coordinator as a ``prep_fetch`` request.  Off by default:
        in-process test workers share the coordinator's prep store, and
        installing a fetcher would mutate that shared store.
    publish_store:
        Optional :class:`~repro.exec.store.ResultStore` (typically over a
        :class:`~repro.dist.storeproxy.ProxyBackend`) the worker files
        successful results into itself.  Advertised as the
        ``store-publish`` cap; when a job frame then asks ``publish``,
        the outcome travels back as a slim summary instead of result
        bytes.  If the publish store is unreachable the worker falls
        back to relaying the full result — correctness never depends on
        the side channel.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        worker_id: str | None = None,
        job_runner=None,
        exit_on_vanish: bool = False,
        install_prep_fetcher: bool = False,
        publish_store=None,
    ) -> None:
        self.job_runner = job_runner or execute_job
        self.exit_on_vanish = exit_on_vanish
        self.install_prep_fetcher = install_prep_fetcher
        self.publish_store = publish_store
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self.worker_id = worker_id or f"{self.address[0]}-{os.getpid()}"
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._accept_thread: threading.Thread | None = None
        self.jobs_run = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "WorkerServer":
        """Serve in a background thread (the in-process test spelling)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever, name=f"worker-{self.address[1]}", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def running(self) -> bool:
        """False once :meth:`stop` (or an emulated vanish) fired."""
        return not self._stop.is_set()

    def serve_forever(self) -> None:
        """Accept coordinators until :meth:`stop` (or a vanish) closes the
        listener; each connection is serviced on its own thread."""
        while not self._stop.is_set():
            try:
                conn, _peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()/vanish
            with self._lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def stop(self) -> None:
        self._stop.set()
        # shutdown() before close(): a close() alone does not release a
        # socket another thread is blocked in accept()/recv() on (the
        # in-flight syscall pins the open file description, so the
        # kernel keeps accepting SYNs on a "closed" listener).  shutdown
        # deactivates the socket immediately — new connects are refused
        # and blocked peers see EOF — which is what makes an emulated
        # vanish wire-indistinguishable from a dead process.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns, self._conns = list(self._conns), set()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None and self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "WorkerServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection service --------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            self._connection_loop(conn)
        except (ProtocolError, OSError):
            pass  # a broken coordinator link is its problem, not ours
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _connection_loop(self, conn: socket.socket) -> None:
        hello = recv_frame(conn)
        if hello is None:
            return
        refusal = check_hello(hello)
        if refusal is not None:
            send_frame(conn, {"type": "error", "error": refusal})
            METRICS.counter("dist.worker.refused").inc()
            return
        plan_dict = hello.get("fault_plan")
        set_fault_plan(None if plan_dict is None else FaultPlan.from_dict(plan_dict))
        grid_digest = hello.get("grid_digest")
        send_frame(
            conn,
            {
                "type": "welcome",
                "protocol": hello["protocol"],
                "version": hello["version"],
                "worker_id": self.worker_id,
                "pid": os.getpid(),
                "caps": self.caps(),
            },
        )
        while True:
            frame = recv_frame(conn)
            if frame is None or frame["type"] == "bye":
                return
            if frame["type"] == "ping":
                send_frame(conn, {"type": "pong"})
                continue
            if frame["type"] not in ("job", "batch"):
                send_frame(
                    conn,
                    {"type": "error", "error": f"unexpected frame {frame['type']!r}"},
                )
                return
            if frame.get("grid_digest") != grid_digest:
                send_frame(
                    conn,
                    {
                        "type": "error",
                        "error": (
                            f"grid digest mismatch: handshake pinned {grid_digest!r}, "
                            f"job carries {frame.get('grid_digest')!r}"
                        ),
                    },
                )
                return
            if frame["type"] == "batch":
                self._run_batch(conn, frame)
            else:
                self._run_job(conn, frame)

    def caps(self) -> list[str]:
        """Capability strings for the welcome frame (and registration).

        Batched execution needs the real simulation; a worker with an
        injected runner keeps the per-job contract.
        """
        caps = []
        if self.job_runner is execute_job:
            caps.append("batch")
        if self.publish_store is not None:
            caps.append("store-publish")
        return caps

    def _vanish(self) -> None:
        """Execute an injected ``worker-vanish``.

        The real worker process dies outright.  An in-process worker
        cannot (it would take the test down with it), so it produces the
        same wire-visible failure instead: every socket and the listener
        close, and the coordinator finds a dead address.
        """
        METRICS.counter("faults.executed.worker-vanish").inc()
        if self.exit_on_vanish:
            os._exit(3)
        self.stop()

    def _run_job(self, conn: socket.socket, frame: dict) -> None:
        spec = codec.decode_spec(frame)
        attempt = int(frame.get("attempt", 1))
        plan = get_fault_plan()
        if plan is not None and plan.select("worker-vanish", spec.label, attempt):
            self._vanish()
            return
        fetcher_installed = self._install_fetcher(conn)
        start = time.perf_counter()
        try:
            try:
                if plan is not None:
                    # The coordinator announces; the worker only executes.
                    fire_job_faults(spec.label, attempt, announce=False)
                result = self.job_runner(spec)
            except Exception as exc:  # noqa: BLE001 — a job failure is data
                payload = {
                    "type": "outcome",
                    "digest": spec.digest,
                    "ok": False,
                    "result": None,
                    "error": f"{type(exc).__name__}: {exc}",
                    "duration_s": 0.0,
                }
            else:
                payload = {
                    "type": "outcome",
                    "digest": spec.digest,
                    "ok": True,
                    "result": result.to_dict(),
                    "error": None,
                    "duration_s": time.perf_counter() - start,
                }
                if frame.get("publish") and self.publish_store is not None:
                    try:
                        self.publish_store.put(spec, result)
                    except OSError:
                        # Publish channel down: relay the bytes instead.
                        METRICS.counter("dist.worker.publish_failed").inc()
                    else:
                        payload["result"] = None
                        payload["published"] = True
                        payload["total_cycles"] = result.total_cycles
                        METRICS.counter("dist.worker.published").inc()
        finally:
            if fetcher_installed:
                self._remove_fetcher()
        self.jobs_run += 1
        METRICS.counter("dist.worker.jobs").inc()
        send_frame(conn, payload)

    def _run_batch(self, conn: socket.socket, frame: dict) -> None:
        """One attempt at a whole batch unit: every lane in one pass.

        Answered by exactly one ``batch_outcome`` frame echoing the
        unit's digest; ``ok: false`` tells the coordinator to decompose
        the unit into per-job frames (fault plans never coexist with
        batching, so there are no faults to fire here).
        """
        from repro.exec.batch import execute_batch

        specs = [codec.decode_spec(payload) for payload in frame["jobs"]]
        fetcher_installed = self._install_fetcher(conn)
        start = time.perf_counter()
        try:
            try:
                results = execute_batch(specs)
            except Exception as exc:  # noqa: BLE001 — a batch failure is data
                payload = {
                    "type": "batch_outcome",
                    "digest": frame.get("digest"),
                    "ok": False,
                    "results": None,
                    "error": f"{type(exc).__name__}: {exc}",
                    "duration_s": 0.0,
                }
            else:
                payload = {
                    "type": "batch_outcome",
                    "digest": frame.get("digest"),
                    "ok": True,
                    "results": [result.to_dict() for result in results],
                    "error": None,
                    "duration_s": time.perf_counter() - start,
                }
        finally:
            if fetcher_installed:
                self._remove_fetcher()
        self.jobs_run += len(specs)
        METRICS.counter("dist.worker.jobs").inc(len(specs))
        send_frame(conn, payload)

    # -- prep fetch ----------------------------------------------------

    def _install_fetcher(self, conn: socket.socket) -> bool:
        if not self.install_prep_fetcher:
            return False
        from repro.prep import get_prep_store

        store = get_prep_store()
        if store is None or store.fetcher is not None:
            return False

        def fetch(key: dict):
            send_frame(conn, {"type": "prep_fetch", "key": key})
            reply = recv_frame(conn)
            if reply is None or reply.get("type") != "prep_bundle":
                raise ProtocolError("coordinator did not answer prep_fetch")
            if not reply.get("found"):
                return None
            return reply.get("bundle")

        store.fetcher = fetch
        return True

    def _remove_fetcher(self) -> None:
        from repro.prep import get_prep_store

        store = get_prep_store()
        if store is not None:
            store.fetcher = None
