"""Distributed sweep execution: remote workers, wire protocol, store proxy.

The execution layer's engines stopped at one machine's cores; this
package scales a sweep across a fleet:

* :class:`RemoteEngine` — an :class:`~repro.exec.engine.ExecutionEngine`
  that dispatches jobs to workers over length-prefixed JSON/TCP, with
  the same retry/backoff/degrade-to-serial semantics (shared
  :class:`~repro.exec.engine.EngineOptions`) as the in-process engines.
  A remote sweep's ``SweepResult.aggregates()`` is byte-identical to a
  serial run — including under injected network faults, worker death
  mid-batch, and kill/resume of the coordinator.
* :class:`WorkerServer` — the ``repro worker`` process: handshake,
  one-attempt-per-frame job service, lazy prep-bundle fetch.
* :mod:`repro.dist.protocol` / :mod:`repro.dist.codec` — framing,
  the protocol-version + grid-digest handshake that refuses
  cross-version mixing, and the content-hash-verified wire forms of
  specs, outcomes and prep bundles.
* :class:`StoreProxyServer` / :class:`ProxyBackend` — a
  :class:`~repro.exec.backend.StoreBackend` served over the same wire,
  so workers without a shared filesystem still read and publish
  through the normal store interface.

See DESIGN.md §G for the wire protocol and failure model.
"""

from repro.dist.codec import batch_digest
from repro.dist.engine import RemoteEngine
from repro.dist.protocol import PROTOCOL_VERSION, HandshakeError, ProtocolError
from repro.dist.registry import WorkerRegistry, parse_worker_address, ping_worker
from repro.dist.storeproxy import ProxyBackend, StoreProxyServer
from repro.dist.worker import WorkerServer

__all__ = [
    "PROTOCOL_VERSION",
    "HandshakeError",
    "ProtocolError",
    "ProxyBackend",
    "RemoteEngine",
    "StoreProxyServer",
    "WorkerRegistry",
    "WorkerServer",
    "batch_digest",
    "parse_worker_address",
    "ping_worker",
]
