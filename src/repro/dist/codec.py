"""Wire codecs: JobSpec/JobOutcome/prep bundles as canonical JSON values.

The execution layer's records already round-trip losslessly through
``to_dict``/``from_dict`` (pinned by ``tests/test_records_roundtrip.py``);
the codecs here wrap those forms with the integrity fields the wire
needs:

* a spec travels with its content ``digest`` and is re-derived and
  checked on arrival — a frame corrupted in flight (or a codec bug that
  drops a config field) fails loudly instead of simulating the wrong
  cell;
* an outcome travels with the digest of the spec it answers, so a
  mis-routed outcome can never be attributed to the wrong job;
* a prep bundle ships each array as base64 raw bytes plus dtype/shape
  and a per-array SHA-256, verified before the receiving store trusts a
  byte (DESIGN.md §G).

Everything here is pure data transformation — no sockets, no stores —
so both ends of the wire and the tests share one definition of "what
bytes mean".
"""

from __future__ import annotations

import base64
import hashlib
import json

import numpy as np

from repro.core.records import RunResult
from repro.exec.jobs import JobOutcome, JobSpec
from repro.sim.config import SystemConfig

__all__ = [
    "batch_digest",
    "decode_outcome",
    "decode_prep_bundle",
    "decode_spec",
    "encode_outcome",
    "encode_prep_bundle",
    "encode_spec",
]


def batch_digest(specs) -> str:
    """Identity of one ``run()`` batch: SHA-256 over the sorted spec
    digests.  Sorted, not positional — the same set of cells is the same
    batch however a resume or a retry reordered them."""
    joined = "\n".join(sorted(spec.digest for spec in specs))
    return hashlib.sha256(joined.encode("ascii")).hexdigest()


def encode_spec(spec: JobSpec) -> dict:
    return {"spec": spec.canonical(), "digest": spec.digest}


def decode_spec(payload: dict) -> JobSpec:
    body = payload["spec"]
    spec = JobSpec(
        app=body["app"],
        policy=body["policy"],
        config=SystemConfig.from_dict(body["config"]),
    )
    if spec.digest != payload.get("digest"):
        raise ValueError(
            f"spec digest mismatch: wire says {payload.get('digest')!r}, "
            f"decoded content hashes to {spec.digest}"
        )
    return spec


def encode_outcome(outcome: JobOutcome) -> dict:
    return {
        "digest": outcome.spec.digest,
        "result": None if outcome.result is None else outcome.result.to_dict(),
        "error": outcome.error,
        "attempts": outcome.attempts,
        "duration_s": outcome.duration_s,
        "engine": outcome.engine,
    }


def decode_outcome(payload: dict, spec: JobSpec) -> JobOutcome:
    """Rebuild the outcome for ``spec`` (the coordinator knows which spec
    it asked about; the digest check catches mis-routing)."""
    if payload.get("digest") != spec.digest:
        raise ValueError(
            f"outcome for digest {payload.get('digest')!r} does not answer "
            f"job {spec.label} ({spec.digest})"
        )
    result = payload.get("result")
    return JobOutcome(
        spec=spec,
        result=None if result is None else RunResult.from_dict(result),
        error=payload.get("error"),
        attempts=int(payload.get("attempts", 1)),
        duration_s=float(payload.get("duration_s", 0.0)),
        engine=str(payload.get("engine", "")),
    )


def _array_digest(raw: bytes) -> str:
    return hashlib.sha256(raw).hexdigest()


def encode_prep_bundle(meta: dict, arrays: dict[str, np.ndarray]) -> dict:
    """Ship a prep bundle: raw array bytes (base64) + dtype/shape + hash.

    ``meta`` is the bundle's on-disk manifest; store bookkeeping fields
    (version/key/digest/arrays) are stripped so the receiver's own
    ``put`` rebuilds them against *its* version namespace.
    """
    extra = {
        k: v for k, v in meta.items() if k not in ("version", "key", "digest", "arrays")
    }
    encoded = {}
    for name, arr in arrays.items():
        raw = np.ascontiguousarray(arr).tobytes()
        encoded[name] = {
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "data": base64.b64encode(raw).decode("ascii"),
            "sha256": _array_digest(raw),
        }
    return {"arrays": encoded, "extra": extra}


def decode_prep_bundle(payload: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Verify and rebuild a shipped bundle; raises ``ValueError`` if any
    array's bytes do not hash to their manifest — a failed transfer is a
    miss, never a poisoned store entry."""
    try:
        entries = payload["arrays"]
        extra = payload.get("extra", {})
        arrays: dict[str, np.ndarray] = {}
        for name, entry in entries.items():
            raw = base64.b64decode(entry["data"])
            if _array_digest(raw) != entry["sha256"]:
                raise ValueError(f"array {name!r} failed its content hash")
            arr = np.frombuffer(raw, dtype=np.dtype(entry["dtype"]))
            arrays[name] = arr.reshape(entry["shape"]).copy()
    except ValueError:
        raise
    except Exception as exc:  # noqa: BLE001 — malformed payload, one error type
        raise ValueError(f"malformed prep bundle: {type(exc).__name__}: {exc}") from exc
    if not isinstance(extra, dict):
        raise ValueError("malformed prep bundle: extra is not an object")
    return arrays, extra


def canonical_bytes(payload: dict) -> bytes:
    """The canonical JSON encoding used everywhere on the wire."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
