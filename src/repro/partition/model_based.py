"""Dynamic model-based partitioning — the paper's main scheme (§VI-B, Fig. 13).

Lifecycle per the paper:

1. **Interval 0**: equal partition (installed by the runtime as the
   initial condition).
2. **End of intervals 0 and 1**: fall back to CPI-proportional
   partitioning.  Besides being a sensible early decision, this guarantees
   the curve fitter sees (at least) two *different* operating points per
   thread.
3. **Every later interval**: fold the observed ``(ways, CPI)`` point into
   each thread's runtime CPI model, then run the iterative reallocation:

   * move one way from the lowest-CPI thread (the fastest) to the
     highest-CPI thread (the critical-path thread);
   * re-predict every thread's CPI from the models at the new assignment;
   * if the *identity* of the highest-CPI thread changed, revert that last
     move and stop — further moves would only start hurting the new
     critical thread; otherwise repeat.

The objective is exactly the paper's
``minimise CPI_overall = max_t CPI_t`` subject to
``sum_t Ways_t = TotalWays``.

Guards beyond the paper's sketch (needed for a terminating, well-defined
implementation): a donor must stay at or above ``min_ways``; when the
current cheapest donor is exhausted the next-lowest-CPI thread donates;
the loop is bounded by the total way count (each iteration permanently
moves a way toward the critical thread, so it cannot run longer than
there are ways to move).
"""

from __future__ import annotations

import numpy as np

from repro.core.models import ThreadModelBank
from repro.core.records import IntervalObservation
from repro.mathx.rounding import largest_remainder_apportion
from repro.partition.base import PartitioningPolicy

__all__ = ["ModelBasedPolicy", "optimize_max_cpi"]


def optimize_max_cpi(
    bank: ThreadModelBank,
    start_ways: list[int],
    total_ways: int,
    *,
    min_ways: int = 1,
    min_rel_gain: float = 0.01,
    paper_termination: bool = False,
    max_step: int | None = 4,
    stats_out: dict | None = None,
) -> list[int]:
    """Run the Fig. 13 reallocation loop from ``start_ways``.

    Returns the way assignment at which the loop terminated.  Exposed as a
    function (separate from the policy object) so tests and the Fig. 15
    experiment can drive it against hand-built models.  When ``stats_out``
    is given, the loop writes ``{"iterations": attempted moves,
    "moved_ways": kept moves}`` into it — the telemetry layer attaches
    these to ``repartition`` events.

    Termination.  A move is reverted (and the loop ends) when it fails to
    lower the predicted maximum CPI by a relative ``min_rel_gain``.  This
    refines the paper's literal Fig. 13 rule — "exit when the identity of
    the highest-CPI thread changes" — which deadlocks whenever the
    runner-up thread sits just below the critical thread: the very first
    move flips the identity, gets reverted, and the partition freezes even
    though the predicted maximum was still falling.  Descending on the
    predicted maximum instead lets the reallocation flow to whichever
    thread is currently limiting the application, which is the paper's
    stated objective (``minimise max_t CPI_t``).  The literal rule is kept
    behind ``paper_termination=True`` (the ablation benchmark compares
    them).  ``min_rel_gain`` also stops flat or noisy models (cache-
    insensitive threads, the small-working-set codes) from drifting to
    extreme partitions for zero predicted benefit.

    Trust region.  ``max_step`` bounds how far any thread's allocation may
    move from ``start_ways`` in one invocation.  The models are surrogate
    fits that are only accurate near the way counts actually observed;
    without the bound, linear extrapolation can promise unbounded gains
    and the loop teleports to an extreme partition in a single interval,
    long before any observation can correct the fantasy.  Bounded steps
    reach the same optima over a few intervals with the models re-fitted
    from fresh observations in between — classic trust-region iteration.
    ``None`` disables the bound.
    """
    n = bank.n_threads
    ways = [int(w) for w in start_ways]
    if len(ways) != n:
        raise ValueError(f"start_ways must have {n} entries")
    if sum(ways) != total_ways:
        raise ValueError(f"start_ways {ways} do not sum to {total_ways}")
    if min_rel_gain < 0:
        raise ValueError("min_rel_gain must be >= 0")

    start = list(ways)
    hi = total_ways if max_step is None else max_step

    pred = bank.predict(ways)
    iterations = 0
    # Every kept move lowers the predicted max CPI by >= min_rel_gain, so
    # the loop is monotone; the bound is a backstop, not the terminator.
    for _ in range(4 * total_ways + 4):
        t_max = int(np.argmax(pred))
        if ways[t_max] - start[t_max] >= hi:
            break  # receiver at the trust-region boundary
        # Donor: the lowest-CPI thread that can still give up a way.
        donor = -1
        donor_cpi = None
        for t in range(n):
            if t == t_max or ways[t] <= min_ways or start[t] - ways[t] >= hi:
                continue
            if donor_cpi is None or pred[t] < donor_cpi:
                donor, donor_cpi = t, pred[t]
        if donor < 0:
            break  # nobody can donate; partition is as skewed as allowed

        iterations += 1
        ways[t_max] += 1
        ways[donor] -= 1
        new_pred = pred.copy()
        new_pred[t_max] = float(bank.model(t_max)(float(ways[t_max])))
        new_pred[donor] = float(bank.model(donor)(float(ways[donor])))
        new_t_max = int(np.argmax(new_pred))
        improved = new_pred[new_t_max] < pred[t_max] * (1.0 - min_rel_gain)
        if not improved or (paper_termination and new_t_max != t_max):
            # Revert the move that bought nothing (or, under the literal
            # Fig. 13 rule, the move that changed the critical thread's
            # identity) and terminate.
            ways[t_max] -= 1
            ways[donor] += 1
            break
        pred = new_pred

    assert sum(ways) == total_ways
    if stats_out is not None:
        stats_out["iterations"] = iterations
        stats_out["moved_ways"] = sum(abs(w - s) for w, s in zip(ways, start)) // 2
    return ways


class ModelBasedPolicy(PartitioningPolicy):
    """The dynamic curve-fitting cache-partitioning scheme (paper §VI-B)."""

    def __init__(
        self,
        n_threads: int,
        total_ways: int,
        *,
        min_ways: int = 1,
        bootstrap_intervals: int = 2,
        alpha: float = 0.5,
        extrapolation: str = "linear",
        min_rel_gain: float = 0.01,
        paper_termination: bool = False,
        max_step: int | None = 4,
        probe: bool = True,
        probe_threshold: float = 1.15,
    ) -> None:
        super().__init__(n_threads, total_ways, min_ways=min_ways)
        if bootstrap_intervals < 1:
            raise ValueError("bootstrap_intervals must be >= 1 (the fitter needs 2+ points)")
        if probe_threshold < 1.0:
            raise ValueError("probe_threshold must be >= 1.0")
        self.bootstrap_intervals = bootstrap_intervals
        self.min_rel_gain = min_rel_gain
        self.paper_termination = paper_termination
        self.max_step = max_step
        self.probe = probe
        self.probe_threshold = probe_threshold
        self.probe_cooldown = 8
        # Outstanding probe: (receiver, donor, baseline max CPI).
        self._probe_state: tuple[int, int, float] | None = None
        # Per-thread interval index before which re-probing is blocked.
        self._cooldown_until: dict[int, int] = {}
        self.bank = ThreadModelBank(n_threads, alpha=alpha, extrapolation=extrapolation)
        self._intervals_seen = 0
        # Decision introspection, read by the telemetry layer (see
        # repro.obs / RuntimeSystem): what the models forecast for the
        # chosen assignment, what triggered the last decision, and how
        # many optimiser iterations it took.
        self.last_predicted_cpi: tuple[float, ...] | None = None
        self.last_trigger: str = "model"
        self.last_iterations: int | None = None

    @property
    def name(self) -> str:
        return "model-based"

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        # The monitor half of the runtime: fold the interval's operating
        # point into each thread's CPI model.
        for t in range(self.n_threads):
            if obs.instructions[t] > 0:
                self.bank.observe(t, obs.targets[t], obs.cpi[t])
        self._intervals_seen += 1

        if self._intervals_seen <= self.bootstrap_intervals or any(
            self.bank.n_distinct(t) == 0 for t in range(self.n_threads)
        ):
            # Paper: "At the end of first two intervals: use the previous
            # CPI based cache partitioning."  Also taken whenever a thread
            # has no model yet (it retired no instructions so far).
            self.last_predicted_cpi = None
            self.last_trigger = "bootstrap"
            self.last_iterations = None
            return self._validate(
                largest_remainder_apportion(obs.cpi, self.total_ways, minimum=self.min_ways)
            )

        start = self._settle_probe(obs)
        opt_stats: dict = {}
        ways = optimize_max_cpi(
            self.bank,
            start,
            self.total_ways,
            min_ways=self.min_ways,
            min_rel_gain=self.min_rel_gain,
            paper_termination=self.paper_termination,
            max_step=self.max_step,
            stats_out=opt_stats,
        )
        self.last_trigger = "model"
        self.last_iterations = opt_stats.get("iterations")
        if self.probe and ways == start:
            probed = self._probe_step(obs, ways)
            if probed != ways:
                self.last_trigger = "probe"
            ways = probed
        self.last_predicted_cpi = tuple(float(v) for v in self.bank.predict(ways))
        return self._validate(ways)

    def _settle_probe(self, obs: IntervalObservation) -> list[int]:
        """Evaluate an outstanding probe: keep it if the application's
        overall (max) CPI improved, otherwise revert the moved way and
        block re-probing that thread for a cooldown period."""
        start = list(obs.targets)
        if self._probe_state is None:
            return start
        receiver, donor, baseline = self._probe_state
        self._probe_state = None
        if obs.overall_cpi < baseline * (1.0 - self.min_rel_gain):
            return start  # probe paid off; the new point is in the models
        self._cooldown_until[receiver] = obs.index + self.probe_cooldown
        if start[receiver] > self.min_ways:
            start[receiver] -= 1
            start[donor] += 1
        return start

    def _probe_step(self, obs: IntervalObservation, ways: list[int]) -> list[int]:
        """Exploration when the optimiser makes no move.

        A frozen partition with a clearly-critical thread usually means
        the models have gone flat around the operating point (stale knots
        aged out, or the thread was never observed at higher allocations —
        the migration scenario produces exactly this).  Probing one way
        toward the *observed* critical thread generates the fresh data
        point the models need; :meth:`_settle_probe` keeps the way if the
        overall CPI improved and reverts it (with a cooldown against
        re-probing a structurally slow, cache-insensitive thread) if not.
        Balanced applications (max CPI within ``probe_threshold`` of the
        mean) are left alone so steady small-working-set apps do not churn.
        """
        cpis = obs.cpi
        mean = sum(cpis) / len(cpis)
        if mean <= 0:
            return ways
        t_max = max(range(self.n_threads), key=lambda t: cpis[t])
        if cpis[t_max] < self.probe_threshold * mean:
            return ways
        if obs.index < self._cooldown_until.get(t_max, -1):
            return ways
        donor = -1
        donor_cpi = None
        for t in range(self.n_threads):
            if t == t_max or ways[t] <= self.min_ways:
                continue
            if donor_cpi is None or cpis[t] < donor_cpi:
                donor, donor_cpi = t, cpis[t]
        if donor >= 0:
            ways = list(ways)
            ways[t_max] += 1
            ways[donor] -= 1
            self._probe_state = (t_max, donor, obs.overall_cpi)
        return ways

    def reset(self) -> None:
        self.bank.reset()
        self._intervals_seen = 0
        self._probe_state = None
        self._cooldown_until.clear()
        self.last_predicted_cpi = None
        self.last_trigger = "model"
        self.last_iterations = None
