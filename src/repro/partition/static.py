"""Static baselines: unpartitioned shared cache and fixed partitions.

* :class:`SharedCachePolicy` — the paper's "shared, unpartitioned cache"
  baseline (Fig. 20): global LRU, every thread competes freely.
* :class:`StaticEqualPolicy` — the "statically partitioned (private)
  cache" baseline (Fig. 19).  The paper treats this as equivalent to a
  private L2 per core and as the optimum of fairness-oriented schemes.
* :class:`StaticPolicy` — an arbitrary fixed partition, used by the
  way-sensitivity experiments (Fig. 10 runs SWIM threads at fixed 16 and
  32 ways).
"""

from __future__ import annotations

from repro.core.records import IntervalObservation
from repro.partition.base import PartitioningPolicy

__all__ = ["SharedCachePolicy", "StaticEqualPolicy", "StaticPolicy"]


class SharedCachePolicy(PartitioningPolicy):
    """Unpartitioned shared cache under global LRU."""

    enforce_partition = False

    @property
    def name(self) -> str:
        return "shared"

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        return None


class StaticEqualPolicy(PartitioningPolicy):
    """Fixed equal way split (the private-cache / fairness baseline)."""

    @property
    def name(self) -> str:
        return "static-equal"

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        return None


class StaticPolicy(PartitioningPolicy):
    """An arbitrary fixed partition, validated once at construction."""

    def __init__(
        self, n_threads: int, total_ways: int, targets: list[int], *, min_ways: int = 0
    ) -> None:
        super().__init__(n_threads, total_ways, min_ways=min_ways)
        self._targets = self._validate([int(v) for v in targets])

    @property
    def name(self) -> str:
        return f"static{tuple(self._targets)}"

    def initial_targets(self) -> list[int]:
        return list(self._targets)

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        return None
