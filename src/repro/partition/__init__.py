"""Cache-partitioning policies: the paper's two schemes and all baselines."""

from repro.partition.base import PartitioningPolicy, equal_targets
from repro.partition.cpi import CPIProportionalPolicy
from repro.partition.fairness import FairnessOrientedPolicy
from repro.partition.model_based import ModelBasedPolicy, optimize_max_cpi
from repro.partition.static import SharedCachePolicy, StaticEqualPolicy, StaticPolicy
from repro.partition.throughput import ThroughputOrientedPolicy, greedy_min_total_misses

__all__ = [
    "CPIProportionalPolicy",
    "FairnessOrientedPolicy",
    "ModelBasedPolicy",
    "PartitioningPolicy",
    "SharedCachePolicy",
    "StaticEqualPolicy",
    "StaticPolicy",
    "ThroughputOrientedPolicy",
    "equal_targets",
    "greedy_min_total_misses",
    "optimize_max_cpi",
]

POLICY_REGISTRY: dict[str, type[PartitioningPolicy]] = {
    "shared": SharedCachePolicy,
    "static-equal": StaticEqualPolicy,
    "cpi-proportional": CPIProportionalPolicy,
    "model-based": ModelBasedPolicy,
    "throughput": ThroughputOrientedPolicy,
    "fairness": FairnessOrientedPolicy,
}
"""Name -> class map for policies constructible as ``cls(n_threads, total_ways)``."""
