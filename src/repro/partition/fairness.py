"""Fairness-oriented baseline (extension).

The paper argues (§IV-B, §VII-B) that fairness-oriented schemes behave
like a private/equally-partitioned cache in the intra-application setting
and compares against :class:`~repro.partition.static.StaticEqualPolicy`
for that reason.  For completeness we also provide a genuinely *dynamic*
fairness policy in the spirit of Kim et al.: equalise the per-thread MPKI
(the cache-sharing impact) by iteratively moving ways from the
least-missing thread to the most-missing thread while the predicted spread
shrinks.  Note the subtle difference from the paper's scheme: this policy
balances *cache* behaviour, not end-to-end progress, so a cache-insensitive
critical thread still receives capacity it cannot use.
"""

from __future__ import annotations

import numpy as np

from repro.core.models import ThreadModelBank
from repro.core.records import IntervalObservation
from repro.mathx.rounding import largest_remainder_apportion
from repro.partition.base import PartitioningPolicy

__all__ = ["FairnessOrientedPolicy"]


class FairnessOrientedPolicy(PartitioningPolicy):
    """Equalise predicted per-thread MPKI across threads."""

    def __init__(
        self,
        n_threads: int,
        total_ways: int,
        *,
        min_ways: int = 1,
        bootstrap_intervals: int = 2,
        alpha: float = 0.5,
    ) -> None:
        super().__init__(n_threads, total_ways, min_ways=min_ways)
        self.bootstrap_intervals = bootstrap_intervals
        self.bank = ThreadModelBank(n_threads, alpha=alpha)
        self._intervals_seen = 0

    @property
    def name(self) -> str:
        return "fairness"

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        mpki = []
        for t in range(self.n_threads):
            instr = obs.instructions[t]
            m = obs.l2.misses[t] / (instr / 1000.0) if instr > 0 else 0.0
            mpki.append(m)
            if instr > 0:
                self.bank.observe(t, obs.targets[t], m)
        self._intervals_seen += 1

        if self._intervals_seen <= self.bootstrap_intervals or any(
            self.bank.n_distinct(t) == 0 for t in range(self.n_threads)
        ):
            return self._validate(
                largest_remainder_apportion(mpki, self.total_ways, minimum=self.min_ways)
            )

        ways = list(obs.targets)
        pred = self.bank.predict(ways)
        for _ in range(self.total_ways + 1):
            spread = float(pred.max() - pred.min())
            t_max = int(np.argmax(pred))
            # Donor: lowest-MPKI thread that can give up a way.
            donor, donor_val = -1, None
            for t in range(self.n_threads):
                if t == t_max or ways[t] <= self.min_ways:
                    continue
                if donor_val is None or pred[t] < donor_val:
                    donor, donor_val = t, pred[t]
            if donor < 0:
                break
            ways[t_max] += 1
            ways[donor] -= 1
            new_pred = pred.copy()
            new_pred[t_max] = float(self.bank.model(t_max)(float(ways[t_max])))
            new_pred[donor] = float(self.bank.model(donor)(float(ways[donor])))
            if float(new_pred.max() - new_pred.min()) >= spread:
                ways[t_max] -= 1
                ways[donor] += 1
                break
            pred = new_pred
        return self._validate(ways)

    def reset(self) -> None:
        self.bank.reset()
        self._intervals_seen = 0
