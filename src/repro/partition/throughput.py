"""Throughput-oriented baseline (paper §IV-B and Fig. 21).

Prior inter-application partitioning schemes (Suh et al. and followers)
assign cache to whichever thread *best utilises* it, maximising aggregate
throughput — equivalently, minimising the total number of misses across
all sharers.  Applied inside one application (the comparison the paper
makes in Fig. 21), this is exactly the wrong objective: it happily speeds
up already-fast, cache-friendly threads while the critical-path thread
starves.

Implementation: the same runtime model bank as the paper's scheme, but the
metric is per-thread misses-per-kilo-instruction (MPKI) and the decision
is a marginal-utility hill climb from the current assignment: move single
ways from the thread that loses least to the thread that gains most while
the predicted total miss count strictly improves.  Hill-climbing is
equivalent to the classic greedy allocation when the miss curves are
convex, which is the standard assumption of those schemes.

Bootstrap mirrors the paper's scheme for symmetry: equal partition first,
then miss-proportional partitioning while the models warm up.
"""

from __future__ import annotations

from repro.core.models import ThreadModelBank
from repro.core.records import IntervalObservation
from repro.mathx.rounding import largest_remainder_apportion
from repro.partition.base import PartitioningPolicy

__all__ = ["ThroughputOrientedPolicy", "greedy_min_total_misses"]


def greedy_min_total_misses(
    bank: ThreadModelBank,
    start_ways: list[int],
    total_ways: int,
    *,
    min_ways: int = 1,
) -> list[int]:
    """Single-way hill climb minimising the predicted MPKI sum.

    Starting from the *current* assignment, repeatedly move one way from
    the thread whose model predicts the smallest loss for giving one up to
    the thread whose model predicts the largest gain for receiving one,
    while the predicted total strictly improves.  Starting from the
    current point (rather than re-allocating from scratch) keeps the
    scheme honest about model quality: each thread's model is accurate
    near the way counts it actually runs at, which is also how a
    shadow-tag utility-monitor scheme behaves — it never teleports a
    thread to an operating point its monitor has no data for.
    """
    n = bank.n_threads
    ways = [int(w) for w in start_ways]
    if sum(ways) != total_ways:
        raise ValueError(f"start_ways {ways} do not sum to {total_ways}")
    models = [bank.model(t) for t in range(n)]
    for _ in range(total_ways + 1):
        best = None  # (net_gain, receiver, donor)
        for recv in range(n):
            gain = float(models[recv](float(ways[recv]))) - float(
                models[recv](float(ways[recv] + 1))
            )
            for donor in range(n):
                if donor == recv or ways[donor] <= min_ways:
                    continue
                loss = float(models[donor](float(ways[donor] - 1))) - float(
                    models[donor](float(ways[donor]))
                )
                net = gain - loss
                if best is None or net > best[0]:
                    best = (net, recv, donor)
        if best is None or best[0] <= 1e-12:
            break
        _, recv, donor = best
        ways[recv] += 1
        ways[donor] -= 1
    assert sum(ways) == total_ways
    return ways


class ThroughputOrientedPolicy(PartitioningPolicy):
    """Minimise total predicted misses, ignoring thread criticality."""

    def __init__(
        self,
        n_threads: int,
        total_ways: int,
        *,
        min_ways: int = 1,
        bootstrap_intervals: int = 2,
        alpha: float = 0.5,
    ) -> None:
        super().__init__(n_threads, total_ways, min_ways=min_ways)
        self.bootstrap_intervals = bootstrap_intervals
        self.bank = ThreadModelBank(n_threads, alpha=alpha)
        self._intervals_seen = 0

    @property
    def name(self) -> str:
        return "throughput"

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        mpki = []
        for t in range(self.n_threads):
            instr = obs.instructions[t]
            m = obs.l2.misses[t] / (instr / 1000.0) if instr > 0 else 0.0
            mpki.append(m)
            if instr > 0:
                self.bank.observe(t, obs.targets[t], m)
        self._intervals_seen += 1

        if self._intervals_seen <= self.bootstrap_intervals or any(
            self.bank.n_distinct(t) == 0 for t in range(self.n_threads)
        ):
            return self._validate(
                largest_remainder_apportion(mpki, self.total_ways, minimum=self.min_ways)
            )

        return self._validate(
            greedy_min_total_misses(
                self.bank, list(obs.targets), self.total_ways, min_ways=self.min_ways
            )
        )

    def reset(self) -> None:
        self.bank.reset()
        self._intervals_seen = 0
