"""Partitioning policy interface.

A policy is consulted by the runtime system at the end of every execution
interval with an :class:`~repro.core.records.IntervalObservation` and may
return a new list of per-thread way targets (summing to the cache's total
ways) or ``None`` to leave the partition untouched.

``enforce_partition`` distinguishes the unpartitioned-shared baseline
(global LRU, targets ignored) from everything else.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.records import IntervalObservation

__all__ = ["PartitioningPolicy", "equal_targets"]


def equal_targets(n_threads: int, total_ways: int) -> list[int]:
    """Equal split with remainder ways going to the lowest thread ids —
    the paper's first-interval initial condition."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if total_ways < n_threads:
        raise ValueError(f"{total_ways} ways cannot give {n_threads} threads one way each")
    base, extra = divmod(total_ways, n_threads)
    return [base + (1 if t < extra else 0) for t in range(n_threads)]


class PartitioningPolicy(ABC):
    """Base class for all cache-partitioning policies."""

    #: Whether the shared cache should enforce way partitions at all.
    enforce_partition: bool = True

    def __init__(self, n_threads: int, total_ways: int, *, min_ways: int = 1) -> None:
        if min_ways < 0:
            raise ValueError("min_ways must be >= 0")
        if self.enforce_partition and total_ways < min_ways * n_threads:
            raise ValueError(
                f"{total_ways} ways cannot give {n_threads} threads {min_ways} ways each"
            )
        self.n_threads = n_threads
        self.total_ways = total_ways
        self.min_ways = min_ways

    @property
    @abstractmethod
    def name(self) -> str:
        """Short identifier used in results and reports."""

    def initial_targets(self) -> list[int]:
        """Targets installed before the first interval (equal by default)."""
        return equal_targets(self.n_threads, self.total_ways)

    @abstractmethod
    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        """Partition decision at an interval boundary (None = keep)."""

    def reset(self) -> None:
        """Clear learned state so the policy can be reused for a new run."""

    def _validate(self, targets: list[int]) -> list[int]:
        if len(targets) != self.n_threads:
            raise ValueError(f"expected {self.n_threads} targets, got {len(targets)}")
        if sum(targets) != self.total_ways:
            raise ValueError(f"targets {targets} do not sum to {self.total_ways}")
        if any(w < self.min_ways for w in targets):
            raise ValueError(f"targets {targets} violate min_ways={self.min_ways}")
        return targets
