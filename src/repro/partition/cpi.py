"""CPI-proportional partitioning (paper Section VI-A, Fig. 12).

At the end of each interval the cache ways are split in proportion to the
observed per-thread CPIs::

    partition_t = CPI_t / sum(CPI_i) * TotalCacheWays

so the slowest (highest-CPI, critical-path) thread receives the largest
share.  The paper notes this scheme's weakness — it assumes every thread's
CPI responds to cache the same way — and uses it (a) as the simpler of its
two proposed schemes and (b) as the bootstrap for the model-based scheme's
first two intervals, because it cheaply generates a second, different
operating point for the curve fitter.
"""

from __future__ import annotations

from repro.core.records import IntervalObservation
from repro.mathx.rounding import largest_remainder_apportion
from repro.partition.base import PartitioningPolicy

__all__ = ["CPIProportionalPolicy"]


class CPIProportionalPolicy(PartitioningPolicy):
    """Ways proportional to per-thread CPI, largest-remainder rounded."""

    # Read by the telemetry layer when a decision changes the partition;
    # this policy has exactly one decision rule, so the trigger is static.
    last_trigger = "cpi-proportional"

    @property
    def name(self) -> str:
        return "cpi-proportional"

    def on_interval(self, obs: IntervalObservation) -> list[int] | None:
        return self._validate(
            largest_remainder_apportion(obs.cpi, self.total_ways, minimum=self.min_ways)
        )
