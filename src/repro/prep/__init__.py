"""repro.prep — content-addressed prepared-program artifact cache.

Program preparation (trace generation + the sequential L1 filter)
dominates the cold cost of a simulation job, and a sweep re-prepares the
same program in every worker process.  This package stores prepared
artifacts on disk as memory-mappable ``.npy`` bundles so a program is
generated once, ever, per ``(workload, trace params, machine front-end,
repro.__version__)`` — and every later job, in every process, maps the
shared pages instead of recomputing.

Layers (see DESIGN.md appendix D):

* :mod:`repro.prep.store` — the generic content-addressed bundle store
  (atomic publishes, in-process LRU, corruption recovery, telemetry);
* :mod:`repro.prep.artifacts` — encoding/decoding of the two bundle
  kinds (raw traces; compiled L2 streams + folded replay products);
* consumers — ``repro.trace.builder`` (trace bundles),
  ``repro.sim.driver`` (stream bundles) and ``repro.cache.fastpath``
  (fold products), all through the process-wide store installed by
  :func:`configure_prep` (CLI flag ``--prep-dir``).
"""

from repro.prep.artifacts import (
    StreamFold,
    compiled_from_bundle,
    program_from_bundle,
    stream_bundle,
    stream_key,
    trace_bundle,
    trace_key,
)
from repro.prep.store import (
    PrepBundle,
    PrepStore,
    configure_prep,
    get_prep_store,
    key_digest,
    set_prep_store,
)

__all__ = [
    "PrepBundle",
    "PrepStore",
    "StreamFold",
    "compiled_from_bundle",
    "configure_prep",
    "get_prep_store",
    "key_digest",
    "program_from_bundle",
    "set_prep_store",
    "stream_bundle",
    "stream_key",
    "trace_bundle",
    "trace_key",
]
