"""Content-addressed, on-disk prepared-program artifact store.

A *bundle* is a directory of memory-mappable ``.npy`` arrays plus a
``meta.json`` manifest, addressed by the SHA-256 of the canonical JSON of
its key (the same content-addressing discipline as
:class:`repro.exec.store.ResultStore`)::

    <root>/v<repro version>/<digest[:2]>/<digest>/
        meta.json
        <array>.npy ...

Three rules make the store safe to share between processes (a sweep's
worker pool all read and write the same root concurrently):

* **atomic publish** — a bundle is staged in a hidden temporary directory
  inside its shard and ``os.rename``-d into place; a reader never sees a
  partial bundle, and when two writers race the loser simply discards its
  staging directory (the bytes are identical by construction);
* **invalidation by version** — bundles live under ``v<version>`` and
  embed both the version and the full key, so a ``repro.__version__``
  bump orphans the namespace wholesale and a key collision can never
  alias distinct preparations;
* **corruption recovery** — an unreadable, mis-keyed or truncated bundle
  is deleted and reported as a miss (``prep.corrupt``), never an error:
  the worst case is one regeneration.

Arrays are opened with ``np.load(mmap_mode="r")``: the OS page cache
backs every mapping, so worker processes replaying the same program share
the clean pages instead of each materialising a private copy.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from collections import OrderedDict
from pathlib import Path

import numpy as np

import repro
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

DEFAULT_STALE_TTL_S = 3600.0
"""Staging directories older than this are presumed orphaned (a publisher
holds its staging dir for at most the few ms between mkdtemp and rename,
so anything this old belongs to a writer that was hard-killed)."""

__all__ = [
    "PrepBundle",
    "PrepStore",
    "configure_prep",
    "get_prep_store",
    "key_digest",
    "set_prep_store",
]

DEFAULT_LRU_LIMIT = 8
_META_NAME = "meta.json"


def key_digest(key: dict) -> str:
    """SHA-256 of the canonical JSON form of a bundle key."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class PrepBundle:
    """One materialised artifact bundle: mmapped arrays plus its manifest."""

    __slots__ = ("digest", "meta", "arrays", "nbytes")

    def __init__(self, digest: str, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        self.digest = digest
        self.meta = meta
        self.arrays = arrays
        self.nbytes = int(sum(a.nbytes for a in arrays.values()))


class PrepStore:
    """On-disk cache of prepared-program bundles with an in-process LRU.

    The LRU sits in front of the filesystem so that replaying the same
    program under many policies (the shape of every policy-comparison
    experiment) maps each bundle once per process, not once per job.
    Counters (``hits``, ``misses``, ``writes``, ``corrupt``, ``races``)
    accumulate over the store's lifetime; the CLI surfaces them under
    ``-v``.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        version: str | None = None,
        lru_limit: int = DEFAULT_LRU_LIMIT,
        stale_ttl_s: float = DEFAULT_STALE_TTL_S,
    ) -> None:
        if lru_limit < 1:
            raise ValueError("lru_limit must be >= 1")
        self.root = Path(root)
        self.version = version if version is not None else repro.__version__
        self.lru_limit = lru_limit
        self.stale_ttl_s = stale_ttl_s
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.races = 0
        self.stale_swept = 0
        self.fetched = 0
        # Optional remote source tried before a miss is final: a callable
        # ``key -> serialized bundle | None`` (see repro.dist.codec).  A
        # distributed worker installs one that asks its coordinator, so
        # prep artifacts ship lazily instead of requiring a shared
        # filesystem.  Fetched bytes are content-hash verified before
        # they are trusted.
        self.fetcher = None
        self._fetching = False
        self._lru: OrderedDict[str, PrepBundle] = OrderedDict()
        # Startup sweep: staging dirs orphaned by hard-killed publishers
        # must not accumulate across repeatedly crashed runs.
        self.sweep_stale()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, key: dict) -> Path:
        digest = key_digest(key)
        return self.version_dir / digest[:2] / digest

    def get(self, key: dict) -> PrepBundle | None:
        """Fetch the bundle for ``key``, or None on miss.

        A corrupt bundle (bad manifest, wrong version, key mismatch,
        missing or mis-shaped array) is deleted and counted in
        ``corrupt`` as well as ``misses``.
        """
        digest = key_digest(key)
        cached = self._lru.get(digest)
        if cached is not None:
            self._lru.move_to_end(digest)
            self._hit()
            return cached
        path = self.version_dir / digest[:2] / digest
        try:
            with (path / _META_NAME).open("r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except FileNotFoundError:
            fetched = self._fetch_remote(key)
            if fetched is None:
                self._miss()
            return fetched
        except (OSError, json.JSONDecodeError):
            return self._evict_corrupt(path)
        try:
            if meta["version"] != self.version or meta["key"] != key:
                return self._evict_corrupt(path)
            bundle = self._materialize(digest, path, meta)
        except Exception:  # noqa: BLE001 — any malformed bundle is corruption
            return self._evict_corrupt(path)
        self._remember(digest, bundle)
        self._hit()
        METRICS.counter("prep.bytes_mapped").inc(bundle.nbytes)
        return bundle

    def _fetch_remote(self, key: dict) -> PrepBundle | None:
        """Ask the installed :attr:`fetcher` for a missing bundle.

        The payload's arrays are verified against their SHA-256 content
        hashes before anything touches the store — a truncated or
        tampered transfer is dropped (``prep.fetch_rejected``), and the
        miss stands.  A verified bundle is published through the normal
        atomic :meth:`put` and re-read through the normal mmap path, so
        a fetched bundle is indistinguishable from a locally built one.
        """
        if self.fetcher is None or self._fetching:
            return None
        payload = self.fetcher(key)
        if payload is None:
            return None
        from repro.dist.codec import decode_prep_bundle

        try:
            arrays, extra = decode_prep_bundle(payload)
        except ValueError:
            METRICS.counter("prep.fetch_rejected").inc()
            return None
        self.put(key, arrays, extra)
        self.fetched += 1
        METRICS.counter("prep.fetched").inc()
        self._fetching = True
        try:
            return self.get(key)
        finally:
            self._fetching = False

    def _materialize(self, digest: str, path: Path, meta: dict) -> PrepBundle:
        """mmap every array the manifest lists, validating dtype/shape."""
        with get_tracer().span("prep.materialize"), METRICS.span("prep.materialize"):
            arrays: dict[str, np.ndarray] = {}
            for name, spec in meta["arrays"].items():
                arr = np.load(path / f"{name}.npy", mmap_mode="r", allow_pickle=False)
                if str(arr.dtype) != spec["dtype"] or list(arr.shape) != spec["shape"]:
                    raise ValueError(f"array {name!r} does not match its manifest")
                arrays[name] = arr
        return PrepBundle(digest, meta, arrays)

    def put(self, key: dict, arrays: dict[str, np.ndarray], extra: dict | None = None) -> Path:
        """Publish a bundle atomically; racing writers are benign.

        The bundle is staged in a hidden directory inside the shard and
        renamed into place.  If another process published the same digest
        first, the staging directory is discarded and the existing bundle
        (identical bytes, by content-addressing) wins.
        """
        digest = key_digest(key)
        path = self.version_dir / digest[:2] / digest
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "version": self.version,
            "key": key,
            "digest": digest,
            "arrays": {
                name: {"dtype": str(a.dtype), "shape": list(a.shape)}
                for name, a in arrays.items()
            },
            **(extra or {}),
        }
        tmp = tempfile.mkdtemp(dir=path.parent, prefix=f".stage-{digest[:8]}-")
        try:
            for name, a in arrays.items():
                np.save(os.path.join(tmp, f"{name}.npy"), np.ascontiguousarray(a))
            with open(os.path.join(tmp, _META_NAME), "w", encoding="utf-8") as fh:
                json.dump(meta, fh, separators=(",", ":"))
            os.rename(tmp, path)
        except OSError:
            # Renaming onto an existing non-empty directory fails — someone
            # else published this digest between our existence check and the
            # rename.  Their bytes are ours; stand down.
            shutil.rmtree(tmp, ignore_errors=True)
            if not (path / _META_NAME).is_file():
                raise
            self.races += 1
            return path
        except BaseException:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        self.writes += 1
        METRICS.counter("prep.writes").inc()
        from repro.exec.faults import maybe_corrupt_artifact

        maybe_corrupt_artifact(path / _META_NAME, digest)
        return path

    def sweep_stale(self, ttl_s: float | None = None) -> int:
        """Delete staging directories orphaned by publishers that died
        mid-``put`` (``.stage-*`` older than ``ttl_s``; default the
        store's ``stale_ttl_s``).  Live writers' staging dirs are
        younger than any sane TTL and survive.  Returns the count
        removed (also in ``stale_swept`` / the ``prep.stale_swept``
        metric)."""
        ttl = self.stale_ttl_s if ttl_s is None else ttl_s
        if not self.version_dir.is_dir():
            return 0
        cutoff = time.time() - ttl
        removed = 0
        for stale in self.version_dir.glob("*/.stage-*"):
            try:
                if stale.stat().st_mtime <= cutoff:
                    shutil.rmtree(stale, ignore_errors=True)
                    removed += 1
            except OSError:
                pass
        if removed:
            self.stale_swept += removed
            METRICS.counter("prep.stale_swept").inc(removed)
        return removed

    def __contains__(self, key: dict) -> bool:
        return (self.path_for(key) / _META_NAME).is_file()

    def __len__(self) -> int:
        """Number of bundles stored for the current version."""
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob(f"*/*/{_META_NAME}"))

    def clear(self) -> int:
        """Delete every bundle for the current version (plus abandoned
        staging directories); returns the bundle count removed."""
        removed = 0
        if not self.version_dir.is_dir():
            return 0
        for shard in self.version_dir.iterdir():
            if not shard.is_dir():
                continue
            for entry in shard.iterdir():
                is_bundle = not entry.name.startswith(".")
                shutil.rmtree(entry, ignore_errors=True)
                removed += is_bundle
        self._lru.clear()
        return removed

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "races": self.races,
            "stale_swept": self.stale_swept,
            "fetched": self.fetched,
        }

    def _remember(self, digest: str, bundle: PrepBundle) -> None:
        self._lru[digest] = bundle
        self._lru.move_to_end(digest)
        while len(self._lru) > self.lru_limit:
            self._lru.popitem(last=False)

    def _hit(self) -> None:
        self.hits += 1
        METRICS.counter("prep.hit").inc()

    def _miss(self) -> None:
        self.misses += 1
        METRICS.counter("prep.miss").inc()

    def _evict_corrupt(self, path: Path) -> None:
        self.corrupt += 1
        METRICS.counter("prep.corrupt").inc()
        self._miss()
        shutil.rmtree(path, ignore_errors=True)
        return None


# ----------------------------------------------------------------------
# Process-wide active store (the CLI and pool workers configure this).
# ----------------------------------------------------------------------

_ACTIVE: PrepStore | None = None


def get_prep_store() -> PrepStore | None:
    """The process-wide prep store, or None when prep caching is off."""
    return _ACTIVE


def set_prep_store(store: PrepStore | None) -> PrepStore | None:
    """Install ``store`` as the process-wide prep store; returns the
    previous one (tests restore it)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    return previous


def configure_prep(
    root: str | Path | None,
    *,
    version: str | None = None,
    lru_limit: int = DEFAULT_LRU_LIMIT,
) -> PrepStore | None:
    """Point the process-wide store at ``root`` (None disables caching)."""
    store = PrepStore(root, version=version, lru_limit=lru_limit) if root else None
    set_prep_store(store)
    return store
