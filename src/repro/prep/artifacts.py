"""Encode/decode prepared-program artifacts for :mod:`repro.prep.store`.

Two bundle kinds, one per preparation level:

``trace``
    The generated per-(section, thread) ``(addrs, gaps)`` arrays of a
    :class:`~repro.sync.program.SyntheticProgram`, concatenated
    section-major/thread-minor with a ``(sections, threads)`` length
    table.  Keyed by the workload identity and every
    :func:`~repro.trace.builder.build_program` parameter; independent of
    the machine model, so one trace serves every L1/timing variant.

``streams``
    The L1-filtered :class:`~repro.cpu.streams.L2Stream` arrays of a
    :class:`~repro.cpu.streams.CompiledProgram` *plus* the fastpath's
    folded replay products — hit cost (``d_cycles + l2_hit_cycles``),
    miss cost (``d_cycles + miss_cycles``) and the exclusive instruction
    prefix sums.  Keyed by the trace key plus the L1 geometry and timing
    model, because the L1 filter and the cost folds depend on both.  A
    hit skips trace generation *and* the (dominant) L1 filtering cost.

Equivalence argument: every array round-trips ``.npy`` bit-exactly
(int64/int32/float64 are stored verbatim), reconstruction slices the
concatenated arrays back into views with the original lengths, and every
scalar is recovered with ``int()``/``float()`` — so a rebuilt program or
compiled stream is value-identical to the one that was stored, and the
fold products are the same IEEE-754 results the replay kernel would
recompute.  The differential suite pins this byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import numpy as np

from repro.cpu.streams import CompiledProgram, L2Stream
from repro.cpu.timing import TimingModel
from repro.prep.store import PrepBundle
from repro.sync.program import Section, SyntheticProgram, ThreadWork
from repro.trace.workloads import WorkloadProfile

__all__ = [
    "StreamFold",
    "compiled_from_bundle",
    "program_from_bundle",
    "stream_bundle",
    "stream_key",
    "trace_bundle",
    "trace_key",
]


def _profile_fingerprint(profile: WorkloadProfile) -> str:
    """Content hash of a profile's behaviours/phases.

    The key must identify the *workload*, not just its name: a
    user-constructed profile reusing a registered name must not alias the
    registered traces.  Dataclass reprs of ints/floats are deterministic
    across processes, unlike ``hash(str)``.
    """
    body = repr((profile.base_behaviors, profile.phases))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


def trace_key(
    profile: WorkloadProfile,
    *,
    n_threads: int,
    n_intervals: int,
    interval_instructions: int,
    sections_per_interval: int,
    seed: int,
    line_bytes: int,
    work_jitter: float,
) -> dict:
    """Content-address key for a generated (pre-L1) trace bundle."""
    return {
        "kind": "trace",
        "app": profile.name,
        "profile_fp": _profile_fingerprint(profile),
        "n_threads": n_threads,
        "n_intervals": n_intervals,
        "interval_instructions": interval_instructions,
        "sections_per_interval": sections_per_interval,
        "seed": seed,
        "line_bytes": line_bytes,
        "work_jitter": work_jitter,
    }


def stream_key(profile: WorkloadProfile, config) -> dict:
    """Content-address key for a compiled (post-L1) stream bundle.

    ``config`` is a :class:`repro.sim.SystemConfig`; only the fields that
    shape the compiled streams participate — the L2 geometry, ``min_ways``
    and backend select *replay* behaviour, not preparation, and keying on
    them would shatter the cache across a policy/geometry sweep.
    """
    key = trace_key(
        profile,
        n_threads=config.n_threads,
        n_intervals=config.n_intervals,
        interval_instructions=config.interval_instructions,
        sections_per_interval=config.sections_per_interval,
        seed=config.seed,
        line_bytes=config.line_bytes,
        work_jitter=0.05,  # build_program default; the builder owns traces
    )
    key["kind"] = "streams"
    key["l1_geometry"] = config.l1_geometry.to_dict()
    key["timing"] = config.timing.to_dict()
    return key


# ----------------------------------------------------------------------
# Trace bundles
# ----------------------------------------------------------------------


def trace_bundle(program: SyntheticProgram) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten a program's traces into concatenated arrays + manifest."""
    works = [w for sec in program.sections for w in sec.works]
    lens = np.array(
        [[w.addrs.size for w in sec.works] for sec in program.sections], dtype=np.int64
    )
    arrays = {
        "addrs": np.concatenate([w.addrs for w in works]),
        "gaps": np.concatenate([w.gaps for w in works]),
        "lens": lens,
    }
    meta = {
        "name": program.name,
        "n_sections": len(program.sections),
        "n_threads": program.n_threads,
        "program_meta": dict(program.meta),
    }
    return arrays, meta


def program_from_bundle(bundle: PrepBundle) -> SyntheticProgram:
    """Rebuild a :class:`SyntheticProgram` from a trace bundle.

    Thread works are zero-copy views into the mmapped concatenations, so
    a warm program costs page mappings, not allocation or generation.
    """
    meta = bundle.meta
    addrs = bundle.arrays["addrs"]
    gaps = bundle.arrays["gaps"]
    lens = bundle.arrays["lens"]
    n_sections, n_threads = int(meta["n_sections"]), int(meta["n_threads"])
    bounds = np.concatenate(([0], np.cumsum(lens.ravel())))
    sections = []
    k = 0
    for _ in range(n_sections):
        works = []
        for _ in range(n_threads):
            o0, o1 = int(bounds[k]), int(bounds[k + 1])
            works.append(ThreadWork(addrs=addrs[o0:o1], gaps=gaps[o0:o1]))
            k += 1
        sections.append(Section(works=tuple(works)))
    return SyntheticProgram(
        name=meta["name"], sections=tuple(sections), meta=dict(meta["program_meta"])
    )


# ----------------------------------------------------------------------
# Stream bundles
# ----------------------------------------------------------------------

_SCALAR_FIELDS = (
    ("tail_instructions", np.int64),
    ("tail_cycles", np.float64),
    ("total_instructions", np.int64),
    ("l1_accesses", np.int64),
    ("l1_hits", np.int64),
)


def stream_bundle(
    compiled: CompiledProgram, timing: TimingModel, offset_bits: int
) -> tuple[dict[str, np.ndarray], dict]:
    """Flatten compiled L2 streams plus their folded replay products."""
    streams = [s for sec in compiled.sections for s in sec]
    lens = np.array(
        [[s.n_l2_accesses for s in sec] for sec in compiled.sections], dtype=np.int64
    )
    d_cycles = np.concatenate([s.d_cycles for s in streams])
    miss_cycles = np.concatenate([s.miss_cycles for s in streams])
    # cum is per-stream exclusive prefix sums (n+1 entries each) — exactly
    # what the replay kernel folds on a cold prep, stored so a warm prep
    # is a slice + tolist.
    cums = []
    for s in streams:
        di = s.d_instructions
        cum = np.empty(di.size + 1, dtype=di.dtype)
        cum[0] = 0
        np.cumsum(di, out=cum[1:])
        cums.append(cum)
    arrays = {
        "addresses": np.concatenate([s.addresses for s in streams]),
        "d_instructions": np.concatenate([s.d_instructions for s in streams]),
        "d_cycles": d_cycles,
        "miss_cycles": miss_cycles,
        "hit_cost": d_cycles + timing.l2_hit_cycles,
        "miss_cost": d_cycles + miss_cycles,
        "cum_instructions": np.concatenate(cums),
        "lens": lens,
    }
    for name, dtype in _SCALAR_FIELDS:
        arrays[name] = np.array(
            [[getattr(s, name) for s in sec] for sec in compiled.sections], dtype=dtype
        )
    meta = {
        "name": compiled.name,
        "n_sections": len(compiled.sections),
        "n_threads": compiled.n_threads,
        "l2_hit_cycles": timing.l2_hit_cycles,
        "offset_bits": offset_bits,
        "program_meta": dict(compiled.meta),
    }
    return arrays, meta


class StreamFold:
    """Replay-prep provider backed by a stream bundle's fold products.

    ``repro.cache.fastpath`` duck-types this through
    ``CompiledProgram.fold_source``: when :meth:`matches` confirms the
    bundle was folded for the same line offset and L2 hit latency, a
    section's per-thread kernel tuples come from mmapped slices instead
    of being recomputed from the stream arrays.  Both routes produce the
    same lists — the stored vectors *are* the cold fold's outputs.
    """

    __slots__ = ("_bundle", "_bounds", "_cum_bounds", "_n_threads")

    def __init__(self, bundle: PrepBundle) -> None:
        self._bundle = bundle
        flat = bundle.arrays["lens"].ravel()
        self._bounds = np.concatenate(([0], np.cumsum(flat)))
        self._cum_bounds = np.concatenate(([0], np.cumsum(flat + 1)))
        self._n_threads = int(bundle.meta["n_threads"])

    def matches(self, offset_bits: int, l2_hit_cycles) -> bool:
        meta = self._bundle.meta
        return meta["offset_bits"] == offset_bits and meta["l2_hit_cycles"] == l2_hit_cycles

    def section_prep(self, si: int) -> list[tuple]:
        """Kernel tuples for section ``si`` in fastpath ``prep()`` order."""
        arrs = self._bundle.arrays
        addresses = arrs["addresses"]
        hit_cost = arrs["hit_cost"]
        miss_cost = arrs["miss_cost"]
        d_instructions = arrs["d_instructions"]
        cum = arrs["cum_instructions"]
        tc = arrs["tail_cycles"]
        ti = arrs["tail_instructions"]
        off = int(self._bundle.meta["offset_bits"])
        out = []
        for t in range(self._n_threads):
            k = si * self._n_threads + t
            o0, o1 = int(self._bounds[k]), int(self._bounds[k + 1])
            c0, c1 = int(self._cum_bounds[k]), int(self._cum_bounds[k + 1])
            out.append((
                (addresses[o0:o1] >> off).tolist(),
                hit_cost[o0:o1].tolist(),
                miss_cost[o0:o1].tolist(),
                d_instructions[o0:o1].tolist(),
                cum[c0:c1].tolist(),
                o1 - o0,
                float(tc[si, t]),
                int(ti[si, t]),
            ))
        return out


def compiled_from_bundle(bundle: PrepBundle) -> CompiledProgram:
    """Rebuild a :class:`CompiledProgram` from a stream bundle.

    Stream arrays are zero-copy views into the mmapped concatenations and
    the returned program carries a :class:`StreamFold` so the fastpath
    replays straight off the stored fold products.
    """
    meta = bundle.meta
    arrs = bundle.arrays
    n_sections, n_threads = int(meta["n_sections"]), int(meta["n_threads"])
    bounds = np.concatenate(([0], np.cumsum(arrs["lens"].ravel())))
    scalars = {name: arrs[name] for name, _ in _SCALAR_FIELDS}
    sections = []
    k = 0
    for s in range(n_sections):
        row = []
        for t in range(n_threads):
            o0, o1 = int(bounds[k]), int(bounds[k + 1])
            row.append(
                L2Stream(
                    addresses=arrs["addresses"][o0:o1],
                    d_instructions=arrs["d_instructions"][o0:o1],
                    d_cycles=arrs["d_cycles"][o0:o1],
                    miss_cycles=arrs["miss_cycles"][o0:o1],
                    tail_instructions=int(scalars["tail_instructions"][s, t]),
                    tail_cycles=float(scalars["tail_cycles"][s, t]),
                    total_instructions=int(scalars["total_instructions"][s, t]),
                    l1_accesses=int(scalars["l1_accesses"][s, t]),
                    l1_hits=int(scalars["l1_hits"][s, t]),
                )
            )
            k += 1
        sections.append(tuple(row))
    compiled = CompiledProgram(
        name=meta["name"],
        n_threads=n_threads,
        sections=tuple(sections),
        meta=dict(meta["program_meta"]),
    )
    return replace(compiled, fold_source=StreamFold(bundle))
