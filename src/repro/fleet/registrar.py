"""Worker discovery: the registrar endpoint and the file-based registry.

``repro.dist`` assumes someone hands the coordinator a worker list; this
module is where that list comes from.  Two discovery mechanisms share one
membership contract — ``addresses() -> [(host, port), ...]`` — which is
exactly what :class:`~repro.dist.engine.RemoteEngine` polls to admit
workers mid-sweep:

* :class:`FleetRegistrar` — a small frame-protocol TCP endpoint (same
  length-prefixed canonical-JSON frames as the job wire, same
  hello/welcome handshake) the coordinator or the serve process hosts.
  Workers ``register`` themselves on start and ``deregister`` on clean
  exit; a background liveness sweep pings members with the existing
  :func:`~repro.dist.registry.ping_worker` probe and evicts the
  unreachable, so a SIGKILLed worker leaves the view within a few probe
  intervals rather than never.
* :class:`FileRegistry` — single-box discovery with no extra socket: one
  JSON file per worker under a shared directory, liveness by
  ``os.kill(pid, 0)``.  Good for laptop sweeps and tests; useless across
  machines, which is what the registrar is for.

:class:`RegistrarClient` is both the worker-side announcement client and
a remote membership view (``addresses()`` with a short TTL cache, so an
engine polling every quarter second does not hammer the registrar).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.dist.protocol import (
    HandshakeError,
    ProtocolError,
    check_hello,
    hello_frame,
    recv_frame,
    send_frame,
)
from repro.dist.registry import format_address, parse_worker_address, ping_worker
from repro.obs.events import WorkerEvictedEvent, WorkerRegisteredEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["FileRegistry", "FleetRegistrar", "RegistrarClient"]


def _emit_registered(worker: str, address: str, pid: int) -> None:
    METRICS.counter("fleet.registered").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(WorkerRegisteredEvent(worker=worker, address=address, pid=pid))


def _emit_evicted(worker: str, address: str, reason: str) -> None:
    METRICS.counter("fleet.evicted").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(WorkerEvictedEvent(worker=worker, address=address, reason=reason))


class FleetRegistrar:
    """The membership authority one fleet shares.

    Frames (after the standard hello/welcome handshake):

    * ``{"type": "register", "host", "port", "worker_id", "pid", "caps"}``
      → ``{"type": "registered", "members": N}``
    * ``{"type": "deregister", "host", "port"}``
      → ``{"type": "deregistered", "removed": bool}``
    * ``{"type": "members"}`` → ``{"type": "members", "workers": [...]}``
    * ``ping``/``pong``, ``bye`` — as on the job wire.

    A worker that registers as ``0.0.0.0``/``::`` gets its host rewritten
    to the peer address of the registering connection — the bind-all
    address is reachable for the worker, not for anyone else.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        probe_interval_s: float = 2.0,
        probe_timeout_s: float = 2.0,
    ) -> None:
        self.probe_interval_s = probe_interval_s
        self.probe_timeout_s = probe_timeout_s
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._members: dict[str, dict] = {}
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._sweep_thread: threading.Thread | None = None
        self.registered = 0
        self.evicted = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "FleetRegistrar":
        self._accept_thread = threading.Thread(
            target=self._serve_forever, name=f"registrar-{self.address[1]}", daemon=True
        )
        self._accept_thread.start()
        if self.probe_interval_s > 0:
            self._sweep_thread = threading.Thread(
                target=self._sweep_forever, name="registrar-sweep", daemon=True
            )
            self._sweep_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in (self._accept_thread, self._sweep_thread):
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=5.0)

    def __enter__(self) -> "FleetRegistrar":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- membership (local API, also used by the wire handlers) --------

    def register(self, address, *, worker_id: str = "?", pid: int = 0, caps=()) -> int:
        address = parse_worker_address(address)
        key = format_address(address)
        with self._lock:
            fresh = key not in self._members
            self._members[key] = {
                "host": address[0],
                "port": address[1],
                "worker_id": worker_id,
                "pid": int(pid),
                "caps": list(caps),
            }
            count = len(self._members)
            if fresh:
                self.registered += 1
                METRICS.gauge("fleet.members").set(count)
        if fresh:
            _emit_registered(worker_id, key, int(pid))
        return count

    def deregister(self, address, *, reason: str = "deregistered") -> bool:
        key = format_address(parse_worker_address(address))
        with self._lock:
            info = self._members.pop(key, None)
            if info is None:
                return False
            self.evicted += 1
            METRICS.gauge("fleet.members").set(len(self._members))
        _emit_evicted(info["worker_id"], key, reason)
        return True

    def members(self) -> list[dict]:
        with self._lock:
            return [dict(info) for info in self._members.values()]

    def addresses(self) -> list[tuple[str, int]]:
        with self._lock:
            return [(info["host"], info["port"]) for info in self._members.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    # -- liveness ------------------------------------------------------

    def sweep_once(self) -> list[str]:
        """Ping every member; evict the unreachable.  Returns evictions."""
        gone: list[str] = []
        for info in self.members():
            address = (info["host"], info["port"])
            try:
                ping_worker(address, timeout_s=self.probe_timeout_s)
            except HandshakeError:
                continue  # alive but incompatible: the engine's problem
            except OSError as exc:
                if self.deregister(address, reason=f"liveness probe failed: {exc}"):
                    gone.append(format_address(address))
        return gone

    def _sweep_forever(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            self.sweep_once()

    # -- wire service --------------------------------------------------

    def _serve_forever(self) -> None:
        while not self._stop.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break
            threading.Thread(
                target=self._serve_connection, args=(conn, peer), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket, peer) -> None:
        try:
            self._connection_loop(conn, peer)
        except (ProtocolError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _connection_loop(self, conn: socket.socket, peer) -> None:
        hello = recv_frame(conn)
        if hello is None:
            return
        refusal = check_hello(hello)
        if refusal is not None:
            send_frame(conn, {"type": "error", "error": refusal})
            return
        send_frame(
            conn,
            {
                "type": "welcome",
                "protocol": hello["protocol"],
                "version": hello["version"],
                "worker_id": f"registrar-{self.address[1]}",
                "pid": os.getpid(),
                "caps": ["registrar"],
            },
        )
        while True:
            frame = recv_frame(conn)
            if frame is None or frame["type"] == "bye":
                return
            if frame["type"] == "ping":
                send_frame(conn, {"type": "pong"})
            elif frame["type"] == "register":
                host = str(frame.get("host", ""))
                if host in ("", "0.0.0.0", "::"):
                    host = peer[0]
                count = self.register(
                    (host, int(frame["port"])),
                    worker_id=str(frame.get("worker_id", "?")),
                    pid=int(frame.get("pid", 0)),
                    caps=frame.get("caps") or (),
                )
                send_frame(conn, {"type": "registered", "members": count})
            elif frame["type"] == "deregister":
                removed = self.deregister((str(frame["host"]), int(frame["port"])))
                send_frame(conn, {"type": "deregistered", "removed": removed})
            elif frame["type"] == "members":
                send_frame(conn, {"type": "members", "workers": self.members()})
            else:
                send_frame(
                    conn,
                    {"type": "error", "error": f"unexpected frame {frame['type']!r}"},
                )
                return


class RegistrarClient:
    """Talk to a :class:`FleetRegistrar` over the wire.

    One short-lived connection per call — registration traffic is rare
    and a membership poll is one round-trip, so connection reuse would
    buy latency nobody needs at the cost of a liveness-ambiguous cached
    socket.  ``addresses()`` caches its answer for ``cache_ttl_s`` and
    falls back to the last good snapshot when the registrar is briefly
    unreachable, so an engine mid-batch never sees the fleet flap to
    empty because of one dropped poll.
    """

    def __init__(self, address, *, timeout_s: float = 5.0, cache_ttl_s: float = 1.0) -> None:
        self.address = parse_worker_address(address)
        self.timeout_s = timeout_s
        self.cache_ttl_s = cache_ttl_s
        self._cached: list[tuple[str, int]] = []
        self._cached_at = 0.0
        self._lock = threading.Lock()

    def _call(self, frame: dict) -> dict:
        with socket.create_connection(self.address, timeout=self.timeout_s) as sock:
            sock.settimeout(self.timeout_s)
            send_frame(sock, hello_frame(None, None))
            welcome = recv_frame(sock)
            if welcome is None or welcome.get("type") != "welcome":
                error = (welcome or {}).get("error", "registrar closed during handshake")
                raise HandshakeError(error)
            send_frame(sock, frame)
            reply = recv_frame(sock)
            if reply is None:
                raise ProtocolError("registrar closed mid-request")
            if reply.get("type") == "error":
                raise ProtocolError(str(reply.get("error")))
            send_frame(sock, {"type": "bye"})
            return reply

    def register(self, worker_address, *, worker_id: str = "?", pid: int = 0, caps=()) -> int:
        host, port = parse_worker_address(worker_address)
        reply = self._call(
            {
                "type": "register",
                "host": host,
                "port": port,
                "worker_id": worker_id,
                "pid": int(pid),
                "caps": list(caps),
            }
        )
        return int(reply.get("members", 0))

    def deregister(self, worker_address) -> bool:
        host, port = parse_worker_address(worker_address)
        reply = self._call({"type": "deregister", "host": host, "port": port})
        return bool(reply.get("removed"))

    def members(self) -> list[dict]:
        reply = self._call({"type": "members"})
        return list(reply.get("workers") or ())

    def addresses(self) -> list[tuple[str, int]]:
        with self._lock:
            if time.monotonic() - self._cached_at < self.cache_ttl_s:
                return list(self._cached)
        try:
            fresh = [(m["host"], m["port"]) for m in self.members()]
        except (OSError, ProtocolError, HandshakeError):
            with self._lock:
                return list(self._cached)
        with self._lock:
            self._cached = fresh
            self._cached_at = time.monotonic()
            return list(fresh)


class FileRegistry:
    """Single-box discovery: one JSON file per worker in a shared dir.

    ``announce`` publishes atomically (tmp + ``os.replace``, same
    discipline as the result store); ``members`` prunes entries whose pid
    no longer exists, so a SIGKILLed worker disappears from the view on
    the next read without any sweeper thread.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, address) -> Path:
        key = format_address(parse_worker_address(address))
        safe = key.replace(":", "_").replace("[", "").replace("]", "")
        return self.root / f"{safe}.json"

    def announce(self, address, *, worker_id: str = "?", pid: int | None = None, caps=()) -> Path:
        address = parse_worker_address(address)
        pid = os.getpid() if pid is None else int(pid)
        path = self._path_for(address)
        payload = {
            "host": address[0],
            "port": address[1],
            "worker_id": worker_id,
            "pid": pid,
            "caps": list(caps),
        }
        tmp = path.with_suffix(f".tmp-{pid}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        _emit_registered(worker_id, format_address(address), pid)
        return path

    def withdraw(self, address) -> bool:
        try:
            self._path_for(address).unlink()
            return True
        except OSError:
            return False

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        if pid <= 0:
            return True  # unknown pid: no liveness claim either way
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:
            return True  # exists, owned by someone else
        return True

    def members(self) -> list[dict]:
        out: list[dict] = []
        for path in sorted(self.root.glob("*.json")):
            try:
                info = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not self._pid_alive(int(info.get("pid", 0))):
                _emit_evicted(
                    str(info.get("worker_id", "?")),
                    format_address((info.get("host", "?"), info.get("port", 0))),
                    f"pid {info.get('pid')} is gone",
                )
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            out.append(info)
        return out

    def addresses(self) -> list[tuple[str, int]]:
        return [(info["host"], info["port"]) for info in self.members()]
