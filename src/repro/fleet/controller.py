"""Backlog-driven autoscaling with hysteresis.

The serve layer already measures demand — ``serve.queue.depth`` is the
scheduler's live backlog and ``serve.sweeps.rejected`` counts admission
turn-aways — so the controller is a pure poll loop over signals that
exist anyway, in the spirit of reacting to observed load rather than
static configuration.  Each poll classifies the moment as *pressure*
(queued cells, or new rejections since the last poll) or *idle*, and
only a **sustained** run of same-direction polls moves the fleet:
``up_after`` consecutive pressure polls add one worker, ``down_after``
consecutive idle polls retire one, always clamped to
``[min_workers, max_workers]``.  One worker per decision plus the two
counters *is* the hysteresis — a backlog blip cannot thrash the fleet,
and scale-down is deliberately slower than scale-up (the asymmetry every
load-shedding controller wants).

:meth:`FleetController.step` is deterministic given the signal values,
so the decision table is unit-testable without threads or clocks; the
background loop in :meth:`start` just calls it on a timer.
"""

from __future__ import annotations

import threading

from repro.obs.events import FleetScaleEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["FleetController"]


def _default_backlog() -> int:
    return int(METRICS.gauge("serve.queue.depth").value)


def _default_rejected() -> int:
    return int(METRICS.counter("serve.sweeps.rejected").value)


class FleetController:
    """Scale a :class:`~repro.fleet.launcher.WorkerLauncher` fleet between
    bounds, driven by the admission backlog.

    Parameters
    ----------
    launcher:
        Where workers come from; the controller owns every handle it
        launched and stops them all on :meth:`stop`.
    min_workers / max_workers:
        Fleet bounds.  The floor is enforced immediately (one launch per
        poll, no hysteresis — a fleet below minimum is a config
        violation, not a load signal); the ceiling caps scale-up.
    up_after / down_after:
        Consecutive same-direction polls required before acting.
    backlog_fn / rejected_fn:
        Signal sources; default to the serve layer's ``serve.queue.depth``
        gauge and ``serve.sweeps.rejected`` counter.  Injectable for the
        deterministic decision-table tests.
    """

    def __init__(
        self,
        launcher,
        *,
        min_workers: int = 0,
        max_workers: int = 2,
        poll_s: float = 1.0,
        up_after: int = 2,
        down_after: int = 5,
        backlog_fn=None,
        rejected_fn=None,
    ) -> None:
        if min_workers < 0 or max_workers < 1 or min_workers > max_workers:
            raise ValueError(
                f"fleet bounds must satisfy 0 <= min <= max with max >= 1, "
                f"got [{min_workers}, {max_workers}]"
            )
        if up_after < 1 or down_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1")
        self.launcher = launcher
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.poll_s = poll_s
        self.up_after = up_after
        self.down_after = down_after
        self.backlog_fn = backlog_fn or _default_backlog
        self.rejected_fn = rejected_fn or _default_rejected
        self.handles: list = []
        self.scale_ups = 0
        self.scale_downs = 0
        self.worker_deaths = 0
        self._hot = 0
        self._cold = 0
        self._last_rejected: int | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- the control loop ----------------------------------------------

    def step(self) -> int:
        """One poll: prune the dead, read the signals, maybe act.

        Returns +1 (launched a worker), -1 (retired one) or 0.
        """
        with self._lock:
            live = [h for h in self.handles if h.alive]
            died = len(self.handles) - len(live)
            self.handles = live
            if died:
                self.worker_deaths += died
                METRICS.counter("fleet.worker_deaths").inc(died)

            backlog = self._read(self.backlog_fn)
            rejected = self._read(self.rejected_fn)
            new_rejections = (
                0 if self._last_rejected is None else max(rejected - self._last_rejected, 0)
            )
            self._last_rejected = rejected
            pressure = backlog > 0 or new_rejections > 0
            workers = len(self.handles)

            action = 0
            if workers < self.min_workers:
                # Below the floor: repair immediately, no hysteresis.
                action = 1
            elif pressure and workers < self.max_workers:
                self._hot += 1
                self._cold = 0
                if self._hot >= self.up_after:
                    action = 1
            elif not pressure and workers > self.min_workers:
                self._cold += 1
                self._hot = 0
                if self._cold >= self.down_after:
                    action = -1
            else:
                self._hot = self._cold = 0

            if action == 1:
                self._hot = 0
                self.handles.append(self.launcher.launch())
                self.scale_ups += 1
                METRICS.counter("fleet.scale_up").inc()
            elif action == -1:
                self._cold = 0
                handle = self.handles.pop()
                self.scale_downs += 1
                METRICS.counter("fleet.scale_down").inc()
            METRICS.gauge("fleet.workers").set(len(self.handles))

        if action == -1:
            handle.stop()  # outside the lock: stop() may block on wait()
        if action:
            direction = "up" if action == 1 else "down"
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    FleetScaleEvent(
                        direction=direction,
                        workers_before=workers,
                        workers_after=workers + action,
                        backlog=backlog,
                        reason=(
                            "below minimum"
                            if action == 1 and workers < self.min_workers
                            else f"{'sustained backlog' if action == 1 else 'sustained idle'}"
                        ),
                    )
                )
        return action

    @staticmethod
    def _read(fn) -> int:
        try:
            return int(fn())
        except Exception:
            return 0  # a broken signal must idle the controller, not kill it

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "FleetController":
        self._thread = threading.Thread(
            target=self._run, name="fleet-controller", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.poll_s):
            self.step()

    def stop(self) -> None:
        """Stop the loop and terminate every fleet-owned worker."""
        self._stop.set()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)
        with self._lock:
            handles, self.handles = self.handles, []
            METRICS.gauge("fleet.workers").set(0)
        for handle in handles:
            handle.stop()

    def describe(self) -> dict:
        """JSON-safe snapshot for ``/v1/stats`` and the CLI."""
        with self._lock:
            return {
                "min_workers": self.min_workers,
                "max_workers": self.max_workers,
                "workers": [
                    {"pid": h.pid, "alive": h.alive} for h in self.handles
                ],
                "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs,
                "worker_deaths": self.worker_deaths,
            }
