"""Worker provisioning: how the autoscaler actually gets a worker.

The controller decides *when* to scale; a :class:`WorkerLauncher` knows
*how*.  The shipped :class:`SubprocessLauncher` starts ``repro worker``
processes on this box and points them at the registrar (or file
registry) so they self-announce — the launcher never needs to learn the
worker's port, which is what lets every worker bind port 0.  External
provisioners (a cloud API, a cluster scheduler) implement the same
two-method interface and plug into the controller unchanged.

:class:`InProcessLauncher` runs :class:`~repro.dist.worker.WorkerServer`
threads inside the current process and registers them directly — the
deterministic test double, also handy for laptop-scale sweeps where a
process per worker is overkill.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from abc import ABC, abstractmethod

from repro.dist.registry import format_address, parse_worker_address
from repro.obs.metrics import METRICS

__all__ = [
    "InProcessLauncher",
    "SubprocessLauncher",
    "WorkerHandle",
    "WorkerLauncher",
]


class WorkerHandle(ABC):
    """One launched worker the controller can check on and stop."""

    @property
    @abstractmethod
    def pid(self) -> int:
        """Process id (0 when the worker has no process of its own)."""

    @property
    @abstractmethod
    def alive(self) -> bool: ...

    @abstractmethod
    def stop(self) -> None:
        """Terminate the worker; idempotent."""


class WorkerLauncher(ABC):
    """The provisioning seam: ``launch`` one worker, hand back a handle."""

    @abstractmethod
    def launch(self) -> WorkerHandle: ...


class SubprocessWorkerHandle(WorkerHandle):
    def __init__(self, proc: subprocess.Popen) -> None:
        self.proc = proc

    @property
    def pid(self) -> int:
        return self.proc.pid

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def stop(self) -> None:
        if not self.alive:
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=5.0)


class SubprocessLauncher(WorkerLauncher):
    """``repro worker`` subprocesses on this machine.

    Workers bind port 0 and announce themselves via ``--registrar`` /
    ``--registry-dir``; ``--store-proxy`` and ``--prep-dir`` pass through
    when the fleet publishes results or shares prepared programs.  The
    child inherits this process's environment (so ``PYTHONPATH`` and
    friends keep working under test runners and CI).
    """

    def __init__(
        self,
        *,
        registrar=None,
        registry_dir=None,
        store_proxy=None,
        prep_dir=None,
        host: str = "127.0.0.1",
        extra_args=(),
    ) -> None:
        if registrar is None and registry_dir is None:
            raise ValueError(
                "SubprocessLauncher needs a registrar address or a registry dir "
                "(an unannounced worker is undiscoverable)"
            )
        self.registrar = None if registrar is None else parse_worker_address(registrar)
        self.registry_dir = registry_dir
        self.store_proxy = None if store_proxy is None else parse_worker_address(store_proxy)
        self.prep_dir = prep_dir
        self.host = host
        self.extra_args = list(extra_args)

    def launch(self) -> SubprocessWorkerHandle:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--host",
            self.host,
            "--port",
            "0",
        ]
        if self.registrar is not None:
            argv += ["--registrar", format_address(self.registrar)]
        if self.registry_dir is not None:
            argv += ["--registry-dir", str(self.registry_dir)]
        if self.store_proxy is not None:
            argv += ["--store-proxy", format_address(self.store_proxy)]
        if self.prep_dir is not None:
            argv += ["--prep-dir", str(self.prep_dir)]
        argv += self.extra_args
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=os.environ.copy(),
        )
        METRICS.counter("fleet.launched").inc()
        return SubprocessWorkerHandle(proc)


class InProcessWorkerHandle(WorkerHandle):
    def __init__(self, server, registrar) -> None:
        self.server = server
        self.registrar = registrar
        self._stopped = threading.Event()

    @property
    def pid(self) -> int:
        return os.getpid()

    @property
    def alive(self) -> bool:
        return not self._stopped.is_set() and self.server.running

    def stop(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self.registrar is not None:
            try:
                self.registrar.deregister(self.server.address)
            except Exception:
                pass
        self.server.stop()


class InProcessLauncher(WorkerLauncher):
    """Thread-backed workers registered straight into a registrar object
    (anything with ``register``/``deregister`` — a
    :class:`~repro.fleet.registrar.FleetRegistrar` or its client)."""

    def __init__(self, registrar=None, *, job_runner=None, publish_store=None) -> None:
        self.registrar = registrar
        self.job_runner = job_runner
        self.publish_store = publish_store
        self.launched: list[InProcessWorkerHandle] = []

    def launch(self) -> InProcessWorkerHandle:
        from repro.dist.worker import WorkerServer

        server = WorkerServer(
            job_runner=self.job_runner, publish_store=self.publish_store
        ).start()
        if self.registrar is not None:
            self.registrar.register(
                server.address,
                worker_id=server.worker_id,
                pid=os.getpid(),
                caps=server.caps(),
            )
        METRICS.counter("fleet.launched").inc()
        handle = InProcessWorkerHandle(server, self.registrar)
        self.launched.append(handle)
        return handle
