"""repro.fleet — operating a worker fleet instead of naming one.

``repro.dist`` (DESIGN.md §G) runs a sweep over workers someone listed
by hand; this package (DESIGN.md §J) closes the loop around *where those
workers come from and how many there should be*:

* **discovery** (:mod:`repro.fleet.registrar`): workers announce
  themselves to a :class:`FleetRegistrar` frame-protocol endpoint (or a
  :class:`FileRegistry` directory for single-box use); the registrar
  keeps an authoritative membership view with liveness sweeps, and
  :class:`~repro.dist.engine.RemoteEngine` polls it to admit late
  joiners mid-sweep.
* **provisioning** (:mod:`repro.fleet.launcher`): the
  :class:`WorkerLauncher` seam — subprocess workers shipped, external
  provisioners pluggable.
* **autoscaling** (:mod:`repro.fleet.controller`): a
  :class:`FleetController` polls the serve layer's admission backlog and
  scales between min/max bounds with hysteresis.

Wired together by ``repro serve --registrar-port ... --fleet-max N`` and
``repro sweep --registrar HOST:PORT`` (see README, "Operating a fleet").
"""

from repro.fleet.controller import FleetController
from repro.fleet.launcher import (
    InProcessLauncher,
    SubprocessLauncher,
    WorkerHandle,
    WorkerLauncher,
)
from repro.fleet.registrar import FileRegistry, FleetRegistrar, RegistrarClient

__all__ = [
    "FileRegistry",
    "FleetController",
    "FleetRegistrar",
    "InProcessLauncher",
    "RegistrarClient",
    "SubprocessLauncher",
    "WorkerHandle",
    "WorkerLauncher",
]
