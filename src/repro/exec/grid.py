"""Canonical sweep-grid construction, shared by every entry point.

A sweep grid — apps × policies × seeds × thread-counts over a scaled
:class:`~repro.sim.config.SystemConfig` — used to be assembled three
times: by the ``sweep`` CLI from argparse flags, by the serve layer from
a JSON submission, and implicitly by every script that shelled out to
either.  :class:`SweepGrid` is the one builder all of them (and the
declarative specs in :mod:`repro.spec`) now share, so defaulting,
validation, cell ordering and the grid's content address are decided in
exactly one place.  The contract the rest of the system leans on:

* **purity** — a :class:`SweepGrid` is a frozen value object; the same
  grid always compiles to the same :meth:`specs` list (same
  :attr:`~repro.exec.jobs.JobSpec.digest` sequence, order included),
  which is what makes spec-driven and flag-driven sweeps byte-identical
  and lets ``repro compare-runs`` diff two result stores cell-by-cell;
* **validation with field paths** — :meth:`SweepGrid.build` rejects bad
  axes with a :class:`GridError` whose message names the offending field
  (``grid.thread_counts[2]: expected int >= 1``), the error style the
  spec schema and the CLI both surface verbatim;
* **identity** — :meth:`grid_key` / :attr:`digest` are the same values
  ``repro sweep --journal`` stamps into journal headers and the serve
  layer uses as the sweep id, so grids built anywhere agree on identity.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.sim.config import SystemConfig

__all__ = ["DEFAULT_POLICIES", "GridError", "POLICY_ALIASES", "SweepGrid"]

DEFAULT_POLICIES = ("shared", "static-equal", "throughput", "model-based")
"""The grid swept when no policies are named (the paper's headline four)."""

# Short spellings accepted anywhere a policy name is; shared by the CLI's
# argparse hook and the spec schema so both entry points normalise alike.
POLICY_ALIASES = {"model": "model-based", "cpi": "cpi-proportional", "equal": "static-equal"}

CACHE_BACKENDS = ("fast", "reference", "batch")


class GridError(ValueError):
    """A grid that cannot be built; ``path`` names the offending field
    (``grid.seeds[1]``) so callers can surface actionable messages."""

    def __init__(self, path: str, problem: str) -> None:
        self.path = path
        self.problem = problem
        super().__init__(f"{path}: {problem}")


def _require_axis(values: object, path: str, kind: type, describe: str) -> tuple:
    if not isinstance(values, (list, tuple)) or not values:
        raise GridError(path, f"expected a non-empty list of {describe}")
    out = []
    for index, value in enumerate(values):
        if not isinstance(value, kind) or isinstance(value, bool):
            raise GridError(f"{path}[{index}]", f"expected {describe[:-1]}, got {value!r}")
        out.append(value)
    return tuple(out)


@dataclass(frozen=True)
class SweepGrid:
    """One validated sweep grid (pure data; compile with :meth:`specs`).

    Construct through :meth:`build` — the direct constructor performs no
    validation or defaulting and exists for already-checked callers.
    """

    apps: tuple[str, ...]
    policies: tuple[str, ...]
    seeds: tuple[int, ...] = (1,)
    thread_counts: tuple[int, ...] = (4,)
    baseline: str = "shared"
    intervals: int = 50
    interval_instructions: int = 20_000
    cache_backend: str = "fast"

    @classmethod
    def build(
        cls,
        *,
        apps: Sequence[str] | None = None,
        policies: Sequence[str] | None = None,
        seeds: Sequence[int] | None = None,
        thread_counts: Sequence[int] | None = None,
        baseline: str | None = None,
        intervals: int = 50,
        interval_instructions: int = 20_000,
        cache_backend: str = "fast",
        path: str = "grid",
    ) -> "SweepGrid":
        """Default, normalise and validate one grid.

        ``None`` axes take their documented defaults (all workloads, the
        four headline policies, seed 1, four threads).  Policy aliases
        are normalised.  Any violation raises :class:`GridError` with a
        ``path``-rooted field path.
        """
        from repro.partition import POLICY_REGISTRY
        from repro.trace.workloads import list_workloads

        known_apps = list_workloads()
        apps = tuple(known_apps) if apps is None else _require_axis(
            apps, f"{path}.apps", str, "workload names"
        )
        for index, app in enumerate(apps):
            if app not in known_apps:
                raise GridError(
                    f"{path}.apps[{index}]",
                    f"unknown workload {app!r} (known: {', '.join(known_apps)})",
                )
        if policies is None:
            policies = DEFAULT_POLICIES
        else:
            policies = _require_axis(policies, f"{path}.policies", str, "policy names")
            policies = tuple(POLICY_ALIASES.get(p, p) for p in policies)
        for index, policy in enumerate(policies):
            if policy not in POLICY_REGISTRY:
                raise GridError(
                    f"{path}.policies[{index}]",
                    f"unknown policy {policy!r} "
                    f"(known: {', '.join(sorted(POLICY_REGISTRY))})",
                )
        seeds = (1,) if seeds is None else _require_axis(
            seeds, f"{path}.seeds", int, "integers"
        )
        if thread_counts is None:
            thread_counts = (4,)
        else:
            thread_counts = _require_axis(
                thread_counts, f"{path}.thread_counts", int, "integers"
            )
            for index, count in enumerate(thread_counts):
                if count < 1:
                    raise GridError(f"{path}.thread_counts[{index}]", "expected int >= 1")
        if baseline is None:
            baseline = "shared" if "shared" in policies else policies[0]
        else:
            if not isinstance(baseline, str):
                raise GridError(f"{path}.baseline", f"expected a policy name, got {baseline!r}")
            baseline = POLICY_ALIASES.get(baseline, baseline)
            if baseline not in policies:
                raise GridError(
                    f"{path}.baseline",
                    f"{baseline!r} is not among the swept policies: {', '.join(policies)}",
                )
        for name, value in (
            ("intervals", intervals),
            ("interval_instructions", interval_instructions),
        ):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise GridError(f"{path}.{name}", f"expected int >= 1, got {value!r}")
        if cache_backend not in CACHE_BACKENDS:
            raise GridError(
                f"{path}.cache_backend",
                f"expected one of {', '.join(CACHE_BACKENDS)}, got {cache_backend!r}",
            )
        return cls(
            apps=apps,
            policies=policies,
            seeds=tuple(int(s) for s in seeds),
            thread_counts=tuple(int(t) for t in thread_counts),
            baseline=baseline,
            intervals=int(intervals),
            interval_instructions=int(interval_instructions),
            cache_backend=cache_backend,
        )

    # -- compilation ----------------------------------------------------

    def config(self) -> SystemConfig:
        """The base config the grid varies (``seed`` / ``n_threads`` are
        overridden per cell) — identical across every entry point so cell
        digests, store keys and coalescing agree."""
        return SystemConfig.default().with_(
            n_intervals=self.intervals,
            interval_instructions=self.interval_instructions,
            cache_backend=self.cache_backend,
        )

    def grid_key(self) -> dict:
        """Journal/serve identity of this grid (includes the simulator
        version; see :func:`repro.exec.sweep.grid_key`)."""
        from repro.exec.sweep import grid_key

        return grid_key(
            self.apps, self.policies, self.seeds, self.thread_counts,
            self.baseline, self.config(),
        )

    @cached_property
    def digest(self) -> str:
        """SHA-256 of the canonical grid key — the sweep/journal id."""
        from repro.exec.journal import grid_digest

        return grid_digest(self.grid_key())

    def specs(self) -> list:
        """The grid expanded to :class:`~repro.exec.jobs.JobSpec`\\ s in
        canonical sweep order — a pure function of this grid's fields."""
        from repro.exec.sweep import expand_grid

        return expand_grid(
            self.apps, self.policies, self.seeds, self.thread_counts, self.config()
        )

    @property
    def n_cells(self) -> int:
        return (
            len(self.apps) * len(self.policies) * len(self.seeds) * len(self.thread_counts)
        )

    def to_dict(self) -> dict:
        """Fully-defaulted JSON form; ``SweepGrid.build(**d)`` round-trips."""
        return {
            "apps": list(self.apps),
            "policies": list(self.policies),
            "seeds": list(self.seeds),
            "thread_counts": list(self.thread_counts),
            "baseline": self.baseline,
            "intervals": self.intervals,
            "interval_instructions": self.interval_instructions,
            "cache_backend": self.cache_backend,
        }
