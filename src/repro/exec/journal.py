"""Crash-safe sweep journal: append-only JSONL of cell outcomes.

A sweep that dies — worker OOM, SIGKILL, power loss — must not throw away
completed cells.  The journal records every cell outcome *as it is
finalised* (one JSON line per cell, flushed and fsynced per append), so
after any crash the file holds exactly the work that finished.
``repro sweep --resume`` replays it: completed cells are restored without
recomputation and only the remainder is fanned back out.

File format::

    {"kind": "sweep_header", "version": ..., "grid_digest": ..., "grid": {...}}
    {"kind": "cell", "key": <spec digest>, "app": ..., "policy": ..., ...}
    ...

Resume key semantics: a cell's ``key`` is its
:attr:`repro.exec.jobs.JobSpec.digest` — the SHA-256 of the canonical
JSON of ``(app, policy, config)``, the same content address the result
store files the full RunResult under.  The header's ``grid_digest``
content-addresses the whole grid (apps x policies x seeds x
thread-counts, baseline, base config, ``repro.__version__``); a resume
against a journal whose grid digest differs is refused
(:class:`JournalMismatchError`) rather than silently mixing sweeps.

Durability discipline mirrors the stores' atomic-publish rule, adapted to
an append-only file: every record is one complete ``write()`` of a
``\\n``-terminated line followed by flush + ``os.fsync``, so a reader
(or a resume after SIGKILL) sees a prefix of whole records plus at most
one torn tail line — which :func:`SweepJournal.load` drops (counted in
``torn_lines``), costing at worst the one in-flight cell.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.obs.metrics import METRICS

__all__ = ["JournalEntry", "JournalMismatchError", "SweepJournal", "grid_digest"]

_HEADER_KIND = "sweep_header"
_CELL_KIND = "cell"


class JournalMismatchError(ValueError):
    """The journal on disk was written by a different grid (or is not a
    sweep journal at all) — resuming it would mix incompatible cells."""


def grid_digest(grid_key: dict) -> str:
    """SHA-256 of the canonical JSON of the grid identity."""
    canonical = json.dumps(grid_key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalEntry:
    """One journaled cell outcome (the durable form of a SweepCell)."""

    key: str  # JobSpec.digest — the resume key
    app: str
    policy: str
    seed: int
    n_threads: int
    total_cycles: float | None
    source: str  # "store" | "run" (preserved across resume)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "kind": _CELL_KIND,
            "key": self.key,
            "app": self.app,
            "policy": self.policy,
            "seed": self.seed,
            "n_threads": self.n_threads,
            "total_cycles": self.total_cycles,
            "source": self.source,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JournalEntry":
        return cls(
            key=payload["key"],
            app=payload["app"],
            policy=payload["policy"],
            seed=int(payload["seed"]),
            n_threads=int(payload["n_threads"]),
            total_cycles=payload["total_cycles"],
            source=payload["source"],
            error=payload.get("error"),
        )


class SweepJournal:
    """Writer/reader for one sweep's journal file.

    Use :meth:`begin` to start a fresh journal (truncates; writes the
    header) or :meth:`resume` to reopen an existing one for appending
    after validating its grid digest.  ``entries`` after ``resume`` maps
    cell key -> :class:`JournalEntry`, last record winning, so a cell
    re-run after an earlier failure is represented by its latest outcome.
    """

    def __init__(self, path: str | Path, grid_key: dict) -> None:
        self.path = Path(path)
        self.grid_key = grid_key
        self.digest = grid_digest(grid_key)
        self.entries: dict[str, JournalEntry] = {}
        self.torn_lines = 0
        self._fh = None

    # -- construction ---------------------------------------------------

    @classmethod
    def begin(cls, path: str | Path, grid_key: dict) -> "SweepJournal":
        """Start a fresh journal at ``path`` (any prior content is gone)."""
        journal = cls(path, grid_key)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        journal._fh = journal.path.open("w", encoding="utf-8")
        journal._write_record(
            {
                "kind": _HEADER_KIND,
                "version": repro.__version__,
                "grid_digest": journal.digest,
                "grid": grid_key,
            }
        )
        return journal

    @classmethod
    def resume(cls, path: str | Path, grid_key: dict) -> "SweepJournal":
        """Reopen ``path`` for appending, restoring completed entries.

        A missing file degrades to :meth:`begin` (resuming a sweep that
        never started is just starting it); a grid mismatch raises
        :class:`JournalMismatchError`.
        """
        path = Path(path)
        if not path.is_file():
            return cls.begin(path, grid_key)
        journal = cls(path, grid_key)
        header, entries, torn = cls._read(path)
        if header is None:
            raise JournalMismatchError(f"{path} is not a sweep journal (no header)")
        if header.get("grid_digest") != journal.digest:
            raise JournalMismatchError(
                f"{path} was written by a different sweep grid "
                f"(journal {str(header.get('grid_digest'))[:12]}…, "
                f"this sweep {journal.digest[:12]}…); refusing to mix them"
            )
        journal.entries = entries
        journal.torn_lines = torn
        journal._fh = path.open("a", encoding="utf-8")
        # A crash mid-append can leave a torn, unterminated tail line; a
        # bare append would weld the next record onto it (losing both).
        # Terminate the tail so it becomes its own dropped line instead.
        with path.open("rb") as fh:
            fh.seek(0, os.SEEK_END)
            if fh.tell() > 0:
                fh.seek(-1, os.SEEK_END)
                ends_with_newline = fh.read(1) == b"\n"
        if not ends_with_newline:
            journal._fh.write("\n")
            journal._fh.flush()
        return journal

    @classmethod
    def load(cls, path: str | Path) -> tuple[dict | None, dict[str, JournalEntry], int]:
        """Read ``path`` without opening it for writing; returns
        ``(header, entries_by_key, torn_lines)``."""
        return cls._read(Path(path))

    @staticmethod
    def _read(path: Path) -> tuple[dict | None, dict[str, JournalEntry], int]:
        header: dict | None = None
        entries: dict[str, JournalEntry] = {}
        torn = 0
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    kind = record["kind"]
                    if kind == _HEADER_KIND and header is None:
                        header = record
                    elif kind == _CELL_KIND:
                        entry = JournalEntry.from_dict(record)
                        entries[entry.key] = entry
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # A torn record (crash mid-append) costs its one cell.
                    torn += 1
        return header, entries, torn

    # -- writing --------------------------------------------------------

    def append(self, entry: JournalEntry) -> None:
        """Durably record one cell outcome (write + flush + fsync)."""
        if self._fh is None:
            raise ValueError("journal is closed")
        self.entries[entry.key] = entry
        self._write_record(entry.to_dict())
        METRICS.counter("sweep.journal.cells").inc()

    def _write_record(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
