"""Job records: what to simulate and what happened when we did.

A :class:`JobSpec` names one simulation — ``(app, policy, config)`` with a
string policy, so the job is pure data and can cross process boundaries or
be content-addressed on disk.  Its :meth:`JobSpec.digest` is the SHA-256 of
the canonical JSON of those three fields and is the key under which
:class:`repro.exec.store.ResultStore` files the result.

A :class:`JobOutcome` is what an engine hands back: either a
:class:`~repro.core.records.RunResult` or an error string, plus how many
attempts it took and how long the successful attempt ran.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from functools import cached_property

from repro.core.records import RunResult
from repro.sim.config import SystemConfig

__all__ = ["JobOutcome", "JobSpec"]


@dataclass(frozen=True)
class JobSpec:
    """One simulation request: a workload under a named policy and config.

    Only *named* policies are representable — a pre-built policy object
    carries state, cannot be content-addressed, and must go through
    :func:`repro.sim.run_application` directly.
    """

    app: str
    policy: str
    config: SystemConfig

    def canonical(self) -> dict:
        """Canonical dict form — the content that is addressed."""
        return {"app": self.app, "policy": self.policy, "config": self.config.to_dict()}

    def canonical_json(self) -> str:
        """Deterministic JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))

    @cached_property
    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` — the store key.

        Cached: the spec is frozen, and hot paths (store lookups, journal
        keys, the service's admission count) ask repeatedly.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable id for logs and error messages."""
        return f"{self.app}/{self.policy}"


@dataclass
class JobOutcome:
    """Result of attempting one :class:`JobSpec` on an engine.

    Exactly one of ``result`` / ``error`` is set — unless the worker
    *published* the result to a shared store itself, in which case
    ``result`` is None and ``published_cycles`` carries the one number the
    sweep journal needs.  ``attempts`` counts every
    try including the successful one; ``duration_s`` is the wall-clock time
    of the successful attempt (0.0 on failure).  ``engine`` names the engine
    that produced the outcome — a pool engine that degraded to serial
    reports that in the name (e.g. ``"process-pool→serial"``).
    """

    spec: JobSpec
    result: RunResult | None = None
    error: str | None = None
    attempts: int = 1
    duration_s: float = 0.0
    engine: str = ""
    published_cycles: float | None = None

    @property
    def ok(self) -> bool:
        return self.error is None and (
            self.result is not None or self.published_cycles is not None
        )

    @property
    def published(self) -> bool:
        """True when the worker filed the result itself (store-publish cap)
        and only the per-cell summary travelled back to the coordinator."""
        return self.result is None and self.published_cycles is not None

    @property
    def total_cycles(self) -> float | None:
        """The per-cell summary every aggregate is built from — present for
        both relayed and published outcomes, ``None`` on failure."""
        if self.result is not None:
            return self.result.total_cycles
        return self.published_cycles
