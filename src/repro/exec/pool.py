"""Multiprocessing execution engine.

Fans jobs out over a ``concurrent.futures.ProcessPoolExecutor`` in bounded
chunks.  Fault model:

* a job that **raises** in a worker consumes an attempt and is retried
  (bounded, exponential backoff between rounds) in a later round;
* a job that exceeds the **per-job timeout** consumes an attempt; the
  executor that may still be wedged on it is abandoned (workers are not
  interruptible) and a fresh pool is built for the next round;
* a **dead worker** (``BrokenProcessPool`` — e.g. the OOM killer or a
  crash in native code) degrades the engine gracefully: every unfinished
  job finishes in-process via the serial retry path, so a sweep always
  completes with an outcome per job.

Simulations are deterministic in ``(app, policy, config)``, so serial and
pool execution produce identical :class:`~repro.core.records.RunResult`s —
the engines are interchangeable, only wall-clock differs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import weakref
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.core.records import RunResult
from repro.exec.engine import EngineOptions, ExecutionEngine, OnOutcome
from repro.exec.faults import (
    FaultPlan,
    announce_faults,
    fire_job_faults,
    get_fault_plan,
    set_fault_plan,
)
from repro.exec.jobs import JobOutcome, JobSpec
from repro.obs.events import JobEndEvent, JobStartEvent, RetryEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["ProcessPoolEngine"]

_IndexedSpec = tuple[int, JobSpec]


def _timed_call(job_runner: Callable[[JobSpec], RunResult], spec: JobSpec, attempt: int):
    """Worker-side wrapper: run one job and report its wall-clock cost.

    Fault injectors execute here (the worker inherited the plan through
    the pool initializer) but are *announced* by the parent — the
    worker's tracer and metrics are invisible to it, and the plan is
    deterministic in ``(job_key, attempt)``, so both sides agree on what
    fires without any cross-process signalling.
    """
    if get_fault_plan() is not None:
        fire_job_faults(spec.label, attempt, announce=False)
    start = time.perf_counter()
    result = job_runner(spec)
    return result, time.perf_counter() - start


def _timed_batch_call(specs: list[JobSpec]):
    """Worker-side wrapper for one batch unit: every lane in one pass.

    Fault plans never coexist with batching (the planner gates on them),
    so unlike :func:`_timed_call` there is nothing to fire here.
    """
    from repro.exec.batch import execute_batch

    start = time.perf_counter()
    results = execute_batch(specs)
    return results, time.perf_counter() - start


def _worker_init(prep_key, fault_plan: FaultPlan | None) -> None:
    """Pool-worker initializer: install the shared prep store and the
    active fault plan.

    The prep store runs once per worker process, so every job the worker
    executes opens prepared-program artifacts via
    ``np.load(mmap_mode="r")`` — the same on-disk pages as its siblings,
    shared through the OS page cache rather than regenerated per process.
    """
    if prep_key is not None:
        from repro.prep import configure_prep

        prep_root, prep_version, prep_lru = prep_key
        configure_prep(prep_root, version=prep_version, lru_limit=prep_lru)
    set_fault_plan(fault_plan)


def _shutdown_pool(holder: list) -> None:
    """Finalizer for an engine's warm pool (must not reference the engine)."""
    while holder:
        holder.pop().shutdown(wait=False, cancel_futures=True)


class ProcessPoolEngine(ExecutionEngine):
    """Executes jobs across worker processes.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to ``os.cpu_count()``.  With
        ``jobs <= 1`` (or a single-job batch) the engine short-circuits to
        the in-process serial path — no pool is spawned, so
        ``get_result``-style single lookups pay no fork cost.
    chunk_size:
        Jobs submitted to the pool per wave, bounding the backlog of
        pickled results held in flight.  Defaults to ``2 × jobs`` so
        every worker has a next job queued while the engine drains the
        current wave.  Workers are long-lived across chunks *and* across
        ``run()`` invocations (the pool stays warm until :meth:`close`),
        so per-process caches — the compiled-program memo, mmapped prep
        artifacts — amortise over a whole sweep.
    timeout_s:
        Per-job cap on the wall-clock wait for that job's result once the
        engine starts waiting on it; ``None`` waits forever.
    mp_context:
        Optional ``multiprocessing`` context (e.g. ``get_context("spawn")``).
    """

    name = "process-pool"

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_size: int | None = None,
        timeout_s: float | None = None,
        options: EngineOptions | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
        backoff_cap_s: float | None = None,
        backoff_budget_s: float | None = None,
        job_runner: Callable[[JobSpec], RunResult] | None = None,
        mp_context=None,
    ) -> None:
        super().__init__(
            options=options,
            max_retries=max_retries,
            backoff_s=backoff_s,
            backoff_cap_s=backoff_cap_s,
            backoff_budget_s=backoff_budget_s,
            job_runner=job_runner,
        )
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.chunk_size = chunk_size if chunk_size is not None else 2 * self.jobs
        self.timeout_s = timeout_s
        self.mp_context = mp_context or multiprocessing.get_context()
        # Warm pool: [executor] while one is alive.  The finalizer closes
        # a leaked pool when the engine is garbage-collected; tests and
        # the CLI should call close() (or use the engine as a context
        # manager) for deterministic teardown.
        self._pool_holder: list[ProcessPoolExecutor] = []
        self._pool_prep_key: tuple | None = None
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool_holder)

    @staticmethod
    def _prep_key() -> tuple | None:
        """Identity of the active prep-store config (pool rebuild trigger)."""
        from repro.prep import get_prep_store

        store = get_prep_store()
        if store is None:
            return None
        return (str(store.root), store.version, store.lru_limit)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """Return the warm pool, (re)building it on first use or when the
        prep-store / fault-plan configuration changed since it was
        forked (workers receive both through the initializer)."""
        key = (self._prep_key(), get_fault_plan())
        if self._pool_holder and self._pool_prep_key != key:
            self._discard_pool(wait=True)
        if not self._pool_holder:
            self._pool_holder.append(
                ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=self.mp_context,
                    initializer=_worker_init,
                    initargs=key,
                )
            )
            self._pool_prep_key = key
        return self._pool_holder[0]

    def _discard_pool(self, *, wait: bool) -> None:
        while self._pool_holder:
            self._pool_holder.pop().shutdown(wait=wait, cancel_futures=not wait)

    def close(self) -> None:
        """Shut the warm pool down (the engine stays usable; the next
        ``run()`` forks a fresh pool)."""
        self._discard_pool(wait=True)

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(
        self, specs: Sequence[JobSpec], *, on_outcome: OnOutcome | None = None
    ) -> list[JobOutcome]:
        specs = list(specs)
        if not specs:
            return []
        self._reset_backoff()
        units = self._plan_units(specs)
        batch_units = [u for u in units if len(u) >= 2]
        if not batch_units:
            return self._run_singles(specs, on_outcome)
        # Batched units go through the pool first (one future per unit);
        # a unit that fails decomposes into singles, which then share the
        # ordinary pooled path — and its retry/degradation machinery —
        # with the cells that were never batchable.
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        singles = [i for u in units if len(u) == 1 for i in u]
        if self.jobs <= 1:
            for unit in batch_units:
                for idx, outcome in zip(
                    unit,
                    self._run_batch_inline(
                        [specs[i] for i in unit], engine_name=self.name
                    ),
                ):
                    outcomes[idx] = outcome
                    if on_outcome is not None:
                        on_outcome(outcome)
        else:
            try:
                singles += self._run_batches_pooled(
                    specs, batch_units, outcomes, on_outcome
                )
            except (KeyboardInterrupt, SystemExit):
                self._discard_pool(wait=False)
                raise
        singles.sort()
        if singles:
            single_outcomes = self._run_singles(
                [specs[i] for i in singles], on_outcome
            )
            for idx, outcome in zip(singles, single_outcomes):
                outcomes[idx] = outcome
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def _run_singles(
        self, specs: list[JobSpec], on_outcome: OnOutcome | None
    ) -> list[JobOutcome]:
        """The per-job path: pooled, or in-process when a pool buys
        nothing (``jobs <= 1`` or a single job)."""
        if not specs:
            return []
        if self.jobs <= 1 or len(specs) == 1:
            # A pool buys nothing here; keep the exact serial semantics.
            outcomes = []
            for spec in specs:
                outcome = self._execute_with_retry(spec, engine_name=self.name)
                if on_outcome is not None:
                    on_outcome(outcome)
                outcomes.append(outcome)
            return outcomes
        try:
            return self._run_pooled(specs, on_outcome)
        except (KeyboardInterrupt, SystemExit):
            # Interrupt protocol: never leave a warm pool (and its worker
            # processes) behind when the batch is being torn down.
            self._discard_pool(wait=False)
            raise

    def _run_batches_pooled(
        self,
        specs: list[JobSpec],
        units: list[tuple[int, ...]],
        outcomes: list[JobOutcome | None],
        on_outcome: OnOutcome | None,
    ) -> list[int]:
        """Execute multi-lane units on the warm pool; fill ``outcomes``
        for cells that succeeded and return the indices of cells whose
        unit failed (they fall back to the per-job path, budget intact).

        The per-job timeout scales by lane count — a unit is N cells of
        work.  A wedged or broken pool is discarded exactly like in
        :meth:`_pool_round`; the per-job path that follows rebuilds it.
        """
        leftover: list[int] = []
        try:
            executor = self._ensure_pool()
        except Exception as exc:  # noqa: BLE001 — any build failure decomposes
            METRICS.counter("batch.failed").inc(len(units))
            del exc  # the singles path will surface the pool problem loudly
            return [i for u in units for i in u]
        abandoned = False
        waves = [
            (unit, executor.submit(_timed_batch_call, [specs[i] for i in unit]))
            for unit in units
        ]
        try:
            for unit, future in waves:
                if abandoned:
                    future.cancel()
                    leftover.extend(unit)
                    continue
                timeout = None if self.timeout_s is None else self.timeout_s * len(unit)
                try:
                    results, duration = future.result(timeout=timeout)
                except FutureTimeoutError:
                    METRICS.counter("batch.failed").inc()
                    leftover.extend(unit)
                    abandoned = True  # the worker may still be wedged on it
                    continue
                except BrokenExecutor:
                    METRICS.counter("batch.failed").inc()
                    leftover.extend(unit)
                    abandoned = True
                    continue
                except Exception:  # noqa: BLE001 — unit failure decomposes
                    METRICS.counter("batch.failed").inc()
                    leftover.extend(unit)
                    continue
                per_cell = duration / len(unit)
                for idx, result in zip(unit, results):
                    METRICS.timer("exec.job").observe(per_cell)
                    METRICS.counter("exec.jobs_ok").inc()
                    outcome = JobOutcome(
                        spec=specs[idx],
                        result=result,
                        attempts=1,
                        duration_s=per_cell,
                        engine=self.name,
                    )
                    outcomes[idx] = outcome
                    if on_outcome is not None:
                        on_outcome(outcome)
        finally:
            if abandoned:
                self._discard_pool(wait=False)
        return leftover

    def _run_pooled(
        self, specs: list[JobSpec], on_outcome: OnOutcome | None
    ) -> list[JobOutcome]:
        tracer = get_tracer()
        if tracer.enabled:
            # Workers cannot reach this process's tracer, so job lifecycle
            # is narrated from here: every job starts now (they are all
            # queued for the first round), and ends when its outcome is
            # finalised below.
            for spec in specs:
                tracer.emit(
                    JobStartEvent(
                        label=spec.label, app=spec.app, policy=spec.policy, engine=self.name
                    )
                )

        def finalize(outcome: JobOutcome) -> JobOutcome:
            if outcome.ok:
                METRICS.timer("exec.job").observe(outcome.duration_s)
                METRICS.counter("exec.jobs_ok").inc()
            else:
                METRICS.counter("exec.jobs_failed").inc()
            if tracer.enabled:
                tracer.emit(
                    JobEndEvent(
                        label=outcome.spec.label,
                        app=outcome.spec.app,
                        policy=outcome.spec.policy,
                        engine=outcome.engine,
                        ok=outcome.ok,
                        attempts=outcome.attempts,
                        duration_s=outcome.duration_s,
                        error=outcome.error,
                    )
                )
            if on_outcome is not None:
                on_outcome(outcome)
            return outcome

        outcomes: list[JobOutcome | None] = [None] * len(specs)
        attempts = [0] * len(specs)
        pending: list[_IndexedSpec] = list(enumerate(specs))
        failed_rounds = 0
        plan = get_fault_plan()

        def announce_attempt(idx: int) -> None:
            """An attempt was consumed: announce the faults that fired in
            the worker for it (deterministic replay of its decision)."""
            if plan is None:
                return
            rules = plan.planned_job_faults(specs[idx].label, attempts[idx])
            if rules:
                announce_faults(rules, specs[idx].label, attempts[idx])

        def record_success(idx: int, result: RunResult, duration: float) -> None:
            # Streamed from _pool_round as each future completes, so a
            # crash-safe consumer (the sweep journal) has durably recorded
            # every finished cell even if the process dies mid-round.
            attempts[idx] += 1
            announce_attempt(idx)
            outcomes[idx] = finalize(
                JobOutcome(
                    spec=specs[idx],
                    result=result,
                    attempts=attempts[idx],
                    duration_s=duration,
                    engine=self.name,
                )
            )

        while pending:
            if failed_rounds:
                self._backoff_sleep(failed_rounds)
            failures, remainder, degrade_reason = self._pool_round(
                pending, attempts, record_success
            )
            # Jobs in `remainder` were never dispatched (their pool went
            # away first); they keep their attempt budget.
            pending = list(remainder)
            for idx, error in failures:
                attempts[idx] += 1
                announce_attempt(idx)
                METRICS.counter("exec.retries").inc()
                if tracer.enabled:
                    tracer.emit(
                        RetryEvent(
                            label=specs[idx].label,
                            engine=self.name,
                            attempt=attempts[idx],
                            error=error,
                        )
                    )
                if attempts[idx] >= self.max_attempts:
                    outcomes[idx] = finalize(
                        JobOutcome(
                            spec=specs[idx], error=error, attempts=attempts[idx], engine=self.name
                        )
                    )
                else:
                    pending.append((idx, specs[idx]))
            if failures:
                failed_rounds += 1
            if degrade_reason is not None and pending:
                self._note_degraded(degrade_reason)
                pending.sort()
                for idx, spec in pending:
                    # The pool already announced these jobs, and the serial
                    # path emits its own job_end/metrics — no second
                    # job_start and no finalize() here.
                    outcomes[idx] = self._execute_with_retry(
                        spec,
                        attempts_used=attempts[idx],
                        engine_name=f"{self.name}→serial",
                        emit_start=False,
                    )
                    if on_outcome is not None:
                        on_outcome(outcomes[idx])
                pending = []

        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def _pool_round(
        self,
        items: Sequence[_IndexedSpec],
        attempts: Sequence[int],
        record_success: Callable[[int, RunResult, float], None],
    ):
        """One pass over ``items`` through the warm pool.

        Successes are streamed to ``record_success(index, result,
        duration)`` the moment their future completes — not batched until
        the round ends — so the caller can durably persist each one
        before the next is awaited.  Returns ``(failures, remainder,
        degrade_reason)`` where ``failures`` is ``(index, error)`` pairs
        that consumed an attempt, ``remainder`` holds never-dispatched
        items, and a non-None ``degrade_reason`` asks the caller to
        finish everything unfinished in-process.  The pool survives the
        round unless it was abandoned (wedged on a timed-out job, or
        broken by a worker death) — then it is discarded and the next
        round starts fresh.
        """
        failures: list[tuple[int, str]] = []
        remainder: list[_IndexedSpec] = []
        abandoned = False  # a wedged/broken pool must not be rejoined
        degrade_reason: str | None = None
        try:
            executor = self._ensure_pool()
        except Exception as exc:  # noqa: BLE001 — any build failure degrades
            # Cannot even build a pool: run everything serially.  This
            # used to be swallowed silently; the cause must surface.
            return [], list(items), f"pool build failed: {type(exc).__name__}: {exc}"

        try:
            for chunk_start in range(0, len(items), self.chunk_size):
                chunk = items[chunk_start : chunk_start + self.chunk_size]
                if abandoned:
                    remainder.extend(chunk)
                    continue
                waves = [
                    (
                        idx,
                        spec,
                        executor.submit(
                            _timed_call, self.job_runner, spec, attempts[idx] + 1
                        ),
                    )
                    for idx, spec in chunk
                ]
                for idx, spec, future in waves:
                    if abandoned:
                        # Salvage whatever already finished; everything else
                        # goes back untouched.
                        if future.done() and not future.cancelled():
                            exc = future.exception()
                            if exc is None:
                                result, duration = future.result()
                                record_success(idx, result, duration)
                            elif not isinstance(exc, BrokenExecutor):
                                failures.append((idx, f"{type(exc).__name__}: {exc}"))
                            else:
                                remainder.append((idx, spec))
                        else:
                            future.cancel()
                            remainder.append((idx, spec))
                        continue
                    try:
                        result, duration = future.result(timeout=self.timeout_s)
                        record_success(idx, result, duration)
                    except FutureTimeoutError:
                        failures.append(
                            (idx, f"job {spec.label} timed out after {self.timeout_s:g}s")
                        )
                        abandoned = True  # the worker may still be wedged on it
                    except BrokenExecutor:
                        failures.append((idx, f"pool worker died running {spec.label}"))
                        abandoned = True
                        degrade_reason = f"pool worker died running {spec.label}"
                    except Exception as exc:  # noqa: BLE001 — job failure is data
                        failures.append((idx, f"{type(exc).__name__}: {exc}"))
        finally:
            if abandoned:
                self._discard_pool(wait=False)
        return failures, remainder, degrade_reason
