"""Grid sweeps: apps × policies × seeds × thread-counts over an engine.

The paper's evaluation (and related work such as Com-CAS and LFOC) is a
large sweep over workload/policy/configuration combinations — exactly the
embarrassingly parallel shape the execution layer exists for.  A sweep

1. expands the grid into :class:`~repro.exec.jobs.JobSpec`s,
2. restores cells already completed by an interrupted run when resuming
   from a :class:`~repro.exec.journal.SweepJournal`,
3. resolves what it can from a :class:`~repro.exec.store.ResultStore`,
4. fans the misses out over an :class:`~repro.exec.engine.ExecutionEngine`,
   persisting every cell (store entry + journal record) *as it
   completes* so a crash loses at most in-flight work, and
5. aggregates per-policy speedups over a baseline policy across the grid.

Failures never abort a sweep: failed cells are reported and excluded from
the aggregates.  Grid points whose *baseline* cell failed are excluded
from every policy's speedup at that point (a speedup needs both runs) and
counted in ``baseline_missing`` so the report shows the reduced coverage
instead of silently averaging over fewer points.

Crash-safety contract: :meth:`SweepResult.aggregates` — the grid, the
per-cell outcomes and the per-policy mean speedups — is byte-identical
between an uninterrupted sweep and any kill/resume of the same grid
(``tests/test_chaos.py`` pins this under both engines, with and without
injected faults).  Bookkeeping that legitimately differs across a resume
(wall time, simulated/store-hit/resumed counts) lives only in
:meth:`SweepResult.to_dict` alongside the aggregates.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.exec.engine import ExecutionEngine, SerialEngine
from repro.exec.jobs import JobOutcome, JobSpec
from repro.exec.journal import JournalEntry, SweepJournal
from repro.exec.store import ResultStore
from repro.obs.metrics import METRICS
from repro.sim.config import SystemConfig

__all__ = ["SweepCell", "SweepResult", "expand_grid", "grid_key", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One grid point's summary (full RunResults stay in the store)."""

    app: str
    policy: str
    seed: int
    n_threads: int
    total_cycles: float | None
    source: str  # "store" | "run"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """Outcome of one grid sweep, with ``format()``/``to_dict()`` like every
    experiment runner."""

    apps: list[str]
    policies: list[str]
    seeds: list[int]
    thread_counts: list[int]
    baseline: str
    cells: list[SweepCell]
    engine: str
    wall_s: float
    simulated: int
    store_hits: int
    store_stats: dict | None = None
    failures: list[SweepCell] = field(default_factory=list)
    resumed: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.cells)

    def _cycles(self, app: str, policy: str, seed: int, n_threads: int) -> float | None:
        for cell in self.cells:
            if (cell.app, cell.policy, cell.seed, cell.n_threads) == (
                app, policy, seed, n_threads,
            ):
                return cell.total_cycles if cell.ok else None
        return None

    def speedups(self, app: str, policy: str) -> list[float]:
        """Speedups of ``policy`` over the baseline for ``app``, one per
        (seed, thread-count) grid point where both runs succeeded.

        A grid point whose baseline cell failed contributes to *no*
        policy's speedups (there is nothing to normalise by); it is
        counted in :attr:`baseline_missing` rather than silently
        shrinking the mean's denominator.
        """
        out = []
        for seed in self.seeds:
            for n_threads in self.thread_counts:
                cyc = self._cycles(app, policy, seed, n_threads)
                base = self._cycles(app, self.baseline, seed, n_threads)
                if cyc is not None and base:
                    out.append(base / cyc - 1.0)
        return out

    @property
    def baseline_missing(self) -> int:
        """Grid points (app × seed × thread-count) with no usable baseline
        cell — excluded from every per-policy speedup aggregate."""
        return sum(
            1
            for app in self.apps
            for seed in self.seeds
            for n_threads in self.thread_counts
            if not self._cycles(app, self.baseline, seed, n_threads)
        )

    def mean_speedup(self, app: str, policy: str) -> float | None:
        ss = self.speedups(app, policy)
        return sum(ss) / len(ss) if ss else None

    def policy_mean_speedup(self, policy: str) -> float | None:
        """Grand mean over every app's per-grid-point speedups."""
        ss = [s for app in self.apps for s in self.speedups(app, policy)]
        return sum(ss) / len(ss) if ss else None

    def format(self) -> str:
        from repro.experiments.reporting import format_table

        others = [p for p in self.policies if p != self.baseline]
        rows: list[list[object]] = []
        for app in self.apps:
            row: list[object] = [app]
            for policy in others:
                mean = self.mean_speedup(app, policy)
                row.append("n/a" if mean is None else f"{mean:+.1%}")
            rows.append(row)
        mean_row: list[object] = ["(mean)"]
        for policy in others:
            mean = self.policy_mean_speedup(policy)
            mean_row.append("n/a" if mean is None else f"{mean:+.1%}")
        rows.append(mean_row)
        table = format_table(
            ["app"] + [f"{p} vs {self.baseline}" for p in others],
            rows,
            title=(
                f"sweep: {len(self.apps)} apps x {len(self.policies)} policies x "
                f"{len(self.seeds)} seeds x {len(self.thread_counts)} thread-counts"
            ),
        )
        summary = (
            f"{self.n_jobs} jobs on {self.engine}: {self.simulated} simulated, "
            f"{self.store_hits} store hits, {self.resumed} resumed, "
            f"{len(self.failures)} failed, {self.wall_s:.2f}s wall"
        )
        if self.failures:
            failed = ", ".join(
                f"{c.app}/{c.policy}@s{c.seed}t{c.n_threads}" for c in self.failures
            )
            summary += f"\nfailed cells: {failed}"
        if self.baseline_missing:
            summary += (
                f"\nbaseline-missing grid points: {self.baseline_missing} "
                f"(no {self.baseline} run to normalise by; excluded from speedups)"
            )
        return f"{table}\n{summary}"

    def aggregates(self) -> dict:
        """The resume-invariant part of the result: grid identity, per-cell
        outcomes and speedup aggregates.  This dict — not the wall-clock
        and cache bookkeeping in :meth:`to_dict` — is what a kill/resume
        cycle must reproduce byte-for-byte."""
        return {
            "apps": self.apps,
            "policies": self.policies,
            "seeds": self.seeds,
            "thread_counts": self.thread_counts,
            "baseline": self.baseline,
            "n_failures": len(self.failures),
            "baseline_missing": self.baseline_missing,
            "cells": [
                {
                    "app": c.app,
                    "policy": c.policy,
                    "seed": c.seed,
                    "n_threads": c.n_threads,
                    "total_cycles": c.total_cycles,
                    "source": c.source,
                    "error": c.error,
                }
                for c in self.cells
            ],
            "mean_speedups": {
                policy: {
                    app: self.mean_speedup(app, policy)
                    for app in self.apps
                }
                for policy in self.policies
                if policy != self.baseline
            },
        }

    def to_dict(self) -> dict:
        return {
            **self.aggregates(),
            "engine": self.engine,
            "wall_s": self.wall_s,
            "simulated": self.simulated,
            "store_hits": self.store_hits,
            "resumed": self.resumed,
            "store_stats": self.store_stats,
        }


def grid_key(
    apps: Sequence[str],
    policies: Sequence[str],
    seeds: Sequence[int],
    thread_counts: Sequence[int],
    baseline: str,
    config: SystemConfig,
) -> dict:
    """Identity of a sweep for journal compatibility: everything that
    shapes the grid's JobSpecs, plus the simulator version (a version
    bump changes results, so resuming across one would mix outputs).

    ``repro.serve`` content-addresses whole sweeps by the digest of this
    key, so two clients submitting the same grid share one sweep.
    """
    return {
        "apps": list(apps),
        "policies": list(policies),
        "seeds": [int(s) for s in seeds],
        "thread_counts": [int(t) for t in thread_counts],
        "baseline": baseline,
        "config": config.to_dict(),
        "version": repro.__version__,
    }


def expand_grid(
    apps: Sequence[str],
    policies: Sequence[str],
    seeds: Sequence[int],
    thread_counts: Sequence[int],
    config: SystemConfig,
) -> list[JobSpec]:
    """Expand the grid into JobSpecs in the canonical sweep order
    (apps x policies x seeds x thread-counts, outermost first).  Every
    consumer of a grid — ``run_sweep`` and the serve layer — must use
    this expansion so cell ordering (and therefore aggregate bytes) is
    identical everywhere."""
    return [
        JobSpec(app, policy, config.with_(seed=seed, n_threads=n_threads))
        for app in apps
        for policy in policies
        for seed in seeds
        for n_threads in thread_counts
    ]


def run_sweep(
    apps: Sequence[str],
    policies: Sequence[str],
    *,
    seeds: Sequence[int] = (1,),
    thread_counts: Sequence[int] = (4,),
    config: SystemConfig | None = None,
    engine: ExecutionEngine | None = None,
    store: ResultStore | None = None,
    baseline: str | None = None,
    journal: SweepJournal | str | Path | None = None,
    resume: bool = False,
) -> SweepResult:
    """Run the full grid and aggregate speedups over ``baseline``.

    ``config`` supplies every parameter the grid does not vary; the grid
    overrides its ``seed`` and ``n_threads``.  ``baseline`` defaults to
    ``"shared"`` when present, else the first policy.

    ``journal`` (a path, or an already-open
    :class:`~repro.exec.journal.SweepJournal`) makes the sweep
    crash-safe: every cell outcome is durably appended as it completes.
    With ``resume=True`` the journal is replayed first — cells it
    records as completed are restored without recomputation (their
    count lands in ``SweepResult.resumed``) and only the remainder is
    fanned out.  Failed journaled cells are re-attempted.  An
    interrupt (KeyboardInterrupt) leaves the journal flushed and
    closed, ready for a later ``resume``.
    """
    if not apps or not policies:
        raise ValueError("sweep needs at least one app and one policy")
    config = config or SystemConfig.default()
    engine = engine or SerialEngine()
    if baseline is None:
        baseline = "shared" if "shared" in policies else policies[0]
    if baseline not in policies:
        raise ValueError(f"baseline {baseline!r} is not one of the swept policies")
    if resume and journal is None:
        raise ValueError("resume=True needs a journal to resume from")

    grid = expand_grid(apps, policies, seeds, thread_counts, config)

    owns_journal = journal is not None and not isinstance(journal, SweepJournal)
    if owns_journal:
        key = grid_key(apps, policies, seeds, thread_counts, baseline, config)
        journal = SweepJournal.resume(journal, key) if resume else SweepJournal.begin(journal, key)

    start = time.perf_counter()
    resolved: dict[JobSpec, SweepCell] = {}
    pending: list[JobSpec] = []
    resumed = 0
    store_hits = 0
    simulated = 0
    try:
        for spec in grid:
            if resume:
                entry = journal.entries.get(spec.digest)
                if entry is not None and entry.ok:
                    # Completed by the interrupted run: restore it verbatim
                    # (including its original source, so aggregates are
                    # byte-identical to an uninterrupted sweep's).
                    resolved[spec] = SweepCell(
                        app=entry.app,
                        policy=entry.policy,
                        seed=entry.seed,
                        n_threads=entry.n_threads,
                        total_cycles=entry.total_cycles,
                        source=entry.source,
                    )
                    resumed += 1
                    continue
            cached = store.get(spec) if store is not None else None
            if cached is not None:
                cell = _cell(spec, total_cycles=cached.total_cycles, source="store")
                resolved[spec] = cell
                store_hits += 1
                _journal_cell(journal, spec, cell)
            else:
                pending.append(spec)
        if resumed:
            METRICS.counter("sweep.resumed_cells").inc(resumed)

        def on_outcome(outcome: JobOutcome) -> None:
            # Completion-ordered persistence: by the time the engine moves
            # on, this cell is in the store and the journal — a crash now
            # costs only work still in flight.
            nonlocal simulated
            spec = outcome.spec
            if outcome.ok:
                # Published outcomes carry no result bytes — the worker
                # already filed them in the shared store; only the cell
                # summary needs journalling here.
                if store is not None and outcome.result is not None:
                    store.put(spec, outcome.result)
                cell = _cell(spec, total_cycles=outcome.total_cycles, source="run")
                simulated += 1
            else:
                cell = _cell(spec, total_cycles=None, source="run", error=outcome.error)
            resolved[spec] = cell
            _journal_cell(journal, spec, cell)

        outcomes = engine.run(pending, on_outcome=on_outcome) if pending else []
        for spec, outcome in zip(pending, outcomes, strict=True):
            if spec not in resolved:  # engine ignored on_outcome (custom impl)
                on_outcome(outcome)
    finally:
        if owns_journal:
            journal.close()
    wall_s = time.perf_counter() - start

    cells = [resolved[spec] for spec in grid]
    return SweepResult(
        apps=list(apps),
        policies=list(policies),
        seeds=list(seeds),
        thread_counts=list(thread_counts),
        baseline=baseline,
        cells=cells,
        engine=engine.name,
        wall_s=wall_s,
        simulated=simulated,
        store_hits=store_hits,
        store_stats=store.stats() if store is not None else None,
        failures=[c for c in cells if not c.ok],
        resumed=resumed,
    )


def _cell(
    spec: JobSpec, *, total_cycles: float | None, source: str, error: str | None = None
) -> SweepCell:
    return SweepCell(
        app=spec.app,
        policy=spec.policy,
        seed=spec.config.seed,
        n_threads=spec.config.n_threads,
        total_cycles=total_cycles,
        source=source,
        error=error,
    )


def _journal_cell(journal: SweepJournal | None, spec: JobSpec, cell: SweepCell) -> None:
    if journal is None:
        return
    journal.append(
        JournalEntry(
            key=spec.digest,
            app=cell.app,
            policy=cell.policy,
            seed=cell.seed,
            n_threads=cell.n_threads,
            total_cycles=cell.total_cycles,
            source=cell.source,
            error=cell.error,
        )
    )
