"""Grid sweeps: apps × policies × seeds × thread-counts over an engine.

The paper's evaluation (and related work such as Com-CAS and LFOC) is a
large sweep over workload/policy/configuration combinations — exactly the
embarrassingly parallel shape the execution layer exists for.  A sweep

1. expands the grid into :class:`~repro.exec.jobs.JobSpec`s,
2. resolves what it can from a :class:`~repro.exec.store.ResultStore`,
3. fans the misses out over an :class:`~repro.exec.engine.ExecutionEngine`
   (persisting fresh results back to the store), and
4. aggregates per-policy speedups over a baseline policy across the grid.

Failures never abort a sweep: failed cells are reported and excluded from
the aggregates.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.exec.engine import ExecutionEngine, SerialEngine
from repro.exec.jobs import JobOutcome, JobSpec
from repro.exec.store import ResultStore
from repro.sim.config import SystemConfig

__all__ = ["SweepCell", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One grid point's summary (full RunResults stay in the store)."""

    app: str
    policy: str
    seed: int
    n_threads: int
    total_cycles: float | None
    source: str  # "store" | "run"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepResult:
    """Outcome of one grid sweep, with ``format()``/``to_dict()`` like every
    experiment runner."""

    apps: list[str]
    policies: list[str]
    seeds: list[int]
    thread_counts: list[int]
    baseline: str
    cells: list[SweepCell]
    engine: str
    wall_s: float
    simulated: int
    store_hits: int
    store_stats: dict | None = None
    failures: list[SweepCell] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.cells)

    def _cycles(self, app: str, policy: str, seed: int, n_threads: int) -> float | None:
        for cell in self.cells:
            if (cell.app, cell.policy, cell.seed, cell.n_threads) == (
                app, policy, seed, n_threads,
            ):
                return cell.total_cycles if cell.ok else None
        return None

    def speedups(self, app: str, policy: str) -> list[float]:
        """Speedups of ``policy`` over the baseline for ``app``, one per
        (seed, thread-count) grid point where both runs succeeded."""
        out = []
        for seed in self.seeds:
            for n_threads in self.thread_counts:
                cyc = self._cycles(app, policy, seed, n_threads)
                base = self._cycles(app, self.baseline, seed, n_threads)
                if cyc and base:
                    out.append(base / cyc - 1.0)
        return out

    def mean_speedup(self, app: str, policy: str) -> float | None:
        ss = self.speedups(app, policy)
        return sum(ss) / len(ss) if ss else None

    def policy_mean_speedup(self, policy: str) -> float | None:
        """Grand mean over every app's per-grid-point speedups."""
        ss = [s for app in self.apps for s in self.speedups(app, policy)]
        return sum(ss) / len(ss) if ss else None

    def format(self) -> str:
        from repro.experiments.reporting import format_table

        others = [p for p in self.policies if p != self.baseline]
        rows: list[list[object]] = []
        for app in self.apps:
            row: list[object] = [app]
            for policy in others:
                mean = self.mean_speedup(app, policy)
                row.append("n/a" if mean is None else f"{mean:+.1%}")
            rows.append(row)
        mean_row: list[object] = ["(mean)"]
        for policy in others:
            mean = self.policy_mean_speedup(policy)
            mean_row.append("n/a" if mean is None else f"{mean:+.1%}")
        rows.append(mean_row)
        table = format_table(
            ["app"] + [f"{p} vs {self.baseline}" for p in others],
            rows,
            title=(
                f"sweep: {len(self.apps)} apps x {len(self.policies)} policies x "
                f"{len(self.seeds)} seeds x {len(self.thread_counts)} thread-counts"
            ),
        )
        summary = (
            f"{self.n_jobs} jobs on {self.engine}: {self.simulated} simulated, "
            f"{self.store_hits} store hits, {len(self.failures)} failed, "
            f"{self.wall_s:.2f}s wall"
        )
        if self.failures:
            failed = ", ".join(
                f"{c.app}/{c.policy}@s{c.seed}t{c.n_threads}" for c in self.failures
            )
            summary += f"\nfailed cells: {failed}"
        return f"{table}\n{summary}"

    def to_dict(self) -> dict:
        return {
            "apps": self.apps,
            "policies": self.policies,
            "seeds": self.seeds,
            "thread_counts": self.thread_counts,
            "baseline": self.baseline,
            "engine": self.engine,
            "wall_s": self.wall_s,
            "simulated": self.simulated,
            "store_hits": self.store_hits,
            "store_stats": self.store_stats,
            "n_failures": len(self.failures),
            "cells": [
                {
                    "app": c.app,
                    "policy": c.policy,
                    "seed": c.seed,
                    "n_threads": c.n_threads,
                    "total_cycles": c.total_cycles,
                    "source": c.source,
                    "error": c.error,
                }
                for c in self.cells
            ],
            "mean_speedups": {
                policy: {
                    app: self.mean_speedup(app, policy)
                    for app in self.apps
                }
                for policy in self.policies
                if policy != self.baseline
            },
        }


def run_sweep(
    apps: Sequence[str],
    policies: Sequence[str],
    *,
    seeds: Sequence[int] = (1,),
    thread_counts: Sequence[int] = (4,),
    config: SystemConfig | None = None,
    engine: ExecutionEngine | None = None,
    store: ResultStore | None = None,
    baseline: str | None = None,
) -> SweepResult:
    """Run the full grid and aggregate speedups over ``baseline``.

    ``config`` supplies every parameter the grid does not vary; the grid
    overrides its ``seed`` and ``n_threads``.  ``baseline`` defaults to
    ``"shared"`` when present, else the first policy.
    """
    if not apps or not policies:
        raise ValueError("sweep needs at least one app and one policy")
    config = config or SystemConfig.default()
    engine = engine or SerialEngine()
    if baseline is None:
        baseline = "shared" if "shared" in policies else policies[0]
    if baseline not in policies:
        raise ValueError(f"baseline {baseline!r} is not one of the swept policies")

    grid: list[JobSpec] = [
        JobSpec(app, policy, config.with_(seed=seed, n_threads=n_threads))
        for app in apps
        for policy in policies
        for seed in seeds
        for n_threads in thread_counts
    ]

    start = time.perf_counter()
    resolved: dict[JobSpec, SweepCell] = {}
    pending: list[JobSpec] = []
    for spec in grid:
        cached = store.get(spec) if store is not None else None
        if cached is not None:
            resolved[spec] = _cell(spec, total_cycles=cached.total_cycles, source="store")
        else:
            pending.append(spec)

    outcomes: list[JobOutcome] = engine.run(pending) if pending else []
    for spec, outcome in zip(pending, outcomes, strict=True):
        if outcome.ok:
            if store is not None:
                store.put(spec, outcome.result)
            resolved[spec] = _cell(
                spec, total_cycles=outcome.result.total_cycles, source="run"
            )
        else:
            resolved[spec] = _cell(spec, total_cycles=None, source="run", error=outcome.error)
    wall_s = time.perf_counter() - start

    cells = [resolved[spec] for spec in grid]
    return SweepResult(
        apps=list(apps),
        policies=list(policies),
        seeds=list(seeds),
        thread_counts=list(thread_counts),
        baseline=baseline,
        cells=cells,
        engine=engine.name,
        wall_s=wall_s,
        simulated=sum(1 for c in cells if c.source == "run" and c.ok),
        store_hits=sum(1 for c in cells if c.source == "store"),
        store_stats=store.stats() if store is not None else None,
        failures=[c for c in cells if not c.ok],
    )


def _cell(
    spec: JobSpec, *, total_cycles: float | None, source: str, error: str | None = None
) -> SweepCell:
    return SweepCell(
        app=spec.app,
        policy=spec.policy,
        seed=spec.config.seed,
        n_threads=spec.config.n_threads,
        total_cycles=total_cycles,
        source=source,
        error=error,
    )
