"""Batch planner: group sweep cells that share one prepared program.

A sweep grid replays the same prepared program — same app, seed, thread
count, L1 geometry, timing — once per policy/L2-geometry cell.  When the
grid opts in (``cache_backend: "batch"``), the planner groups such cells
into multi-lane *units* so an engine can execute the whole group through
:func:`repro.sim.run_batch` in one pass: one program prep, one stream
materialisation, N byte-identical per-cell results.

The planner is deliberately conservative — batching is a pure
performance transformation, so anything that relies on per-cell
execution keeps it:

* cells whose backend is not ``"batch"`` are untouched;
* an active fault plan disables batching entirely (deterministic fault
  replay is keyed on per-job attempts);
* an enabled tracer disables batching (job lifecycle narration is
  per-cell);
* a custom ``job_runner`` disables batching (the runner contract is
  ``spec -> RunResult``; only the default runner is batch-equivalent);
* a cell whose prep key is unique in the batch stays a 1-lane unit and
  executes through the ordinary per-job path — where the ``"batch"``
  backend falls through to the fastpath kernel (``batch.fallback``
  counter), so an ineligible cell pays zero batching overhead.

Engines fan a unit's results back out into per-cell
:class:`~repro.exec.jobs.JobOutcome`\\ s, so the journal, result store,
coalescer, and spec comparator never see batches.  A unit that fails as
a whole is *decomposed*: its cells re-enter the normal per-job retry
path with their full attempt budget (``batch.failed`` counter).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.core.records import RunResult
from repro.exec.jobs import JobSpec
from repro.obs.metrics import METRICS

__all__ = ["batch_key", "execute_batch", "plan_units"]

#: Config fields free to vary between lanes of one batch — everything
#: else shapes the prepared program (or is the program's identity).
_LANE_FIELDS = ("l2_geometry", "min_ways")


def batch_key(spec: JobSpec) -> tuple:
    """Prep-bundle identity of ``spec``: the app plus every config field
    that shapes the prepared program.  Cells with equal keys replay the
    same program and may share a batch."""
    cfg = spec.config.to_dict()
    for field in _LANE_FIELDS:
        cfg.pop(field, None)
    return (spec.app, json.dumps(cfg, sort_keys=True, separators=(",", ":")))


def plan_units(specs: Sequence[JobSpec]) -> list[tuple[int, ...]]:
    """Partition ``specs`` into execution units of spec indices.

    Cells opted into the ``"batch"`` backend group by :func:`batch_key`;
    everything else (and every unique-key cell) stays a 1-length unit.
    Units are ordered by their first cell's position and each unit keeps
    its cells in input order, so a batch-free plan degenerates to the
    identity ordering.
    """
    groups: dict[tuple, list[int]] = {}
    for i, spec in enumerate(specs):
        key = batch_key(spec) if spec.config.cache_backend == "batch" else ("solo", i)
        groups.setdefault(key, []).append(i)
    units = sorted((tuple(idxs) for idxs in groups.values()), key=lambda u: u[0])
    batched = [u for u in units if len(u) >= 2]
    if batched:
        METRICS.counter("batch.planned").inc(len(batched))
        METRICS.counter("batch.cells_batched").inc(sum(len(u) for u in batched))
    return units


def execute_batch(specs: Sequence[JobSpec]) -> list[RunResult]:
    """Default batch runner: one batched simulation of every spec.

    Module-level (picklable) so pool engines can ship it to workers,
    mirroring :func:`repro.exec.engine.execute_job`.  Results come back
    in spec order, each byte-identical to ``execute_job`` on that spec.
    """
    from repro.sim.driver import run_batch

    specs = list(specs)
    return run_batch(specs[0].app, [(s.policy, s.config) for s in specs])
