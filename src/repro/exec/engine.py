"""Execution engines: the ABC, the serial engine, and the shared retry loop.

An engine turns a batch of :class:`~repro.exec.jobs.JobSpec` into a batch
of :class:`~repro.exec.jobs.JobOutcome`, preserving order.  Engines never
raise for a failing *job* — a job that exhausts its retry budget comes back
as an outcome with ``error`` set, so one bad run cannot lose the results of
the rest of a sweep.

The actual simulation is performed by a *job runner* callable
(:func:`execute_job` by default); tests inject failing or sleeping runners
to exercise the retry/timeout machinery without a real simulation.  The
runner must be a picklable (module-level) callable so pool engines can ship
it to workers.
"""

from __future__ import annotations

import dataclasses
import random
import sys
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.records import RunResult
from repro.exec.faults import fire_job_faults, get_fault_plan
from repro.exec.jobs import JobOutcome, JobSpec
from repro.obs.events import EngineDegradedEvent, JobEndEvent, JobStartEvent, RetryEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["EngineOptions", "ExecutionEngine", "SerialEngine", "execute_job"]

OnOutcome = Callable[[JobOutcome], None]


@dataclass(frozen=True)
class EngineOptions:
    """Retry/backoff/degradation knobs shared by every engine.

    One frozen bag of semantics instead of per-engine kwargs, so the
    process-pool and remote engines degrade and retry identically:

    ``max_retries``
        How many times a failing job is retried (a job is attempted at
        most ``max_retries + 1`` times).
    ``backoff_s``
        Base delay before a retry round; doubles each round, jittered to
        a uniform fraction in [0.5, 1.0] of the nominal delay.  Zero
        disables the sleep.
    ``backoff_cap_s``
        Upper bound on any single backoff sleep.
    ``backoff_budget_s``
        Upper bound on the total time one batch may spend sleeping
        between retries; refilled at the start of each batch.
    """

    max_retries: int = 2
    backoff_s: float = 0.1
    backoff_cap_s: float = 2.0
    backoff_budget_s: float = 10.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if self.backoff_cap_s < 0 or self.backoff_budget_s < 0:
            raise ValueError("backoff_cap_s and backoff_budget_s must be >= 0")

    def replace(self, **overrides) -> "EngineOptions":
        """A copy with ``overrides`` applied (validated like any other)."""
        return dataclasses.replace(self, **overrides)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1


def execute_job(spec: JobSpec) -> RunResult:
    """Default job runner: one full simulation.

    Imported lazily so that engine/bookkeeping code stays importable in
    contexts (and subprocesses) that never simulate.
    """
    from repro.sim.driver import run_application

    return run_application(spec.app, spec.policy, spec.config)


class ExecutionEngine(ABC):
    """Runs batches of jobs; subclasses choose *where* the work happens.

    Parameters
    ----------
    options:
        An :class:`EngineOptions` with the retry/backoff knobs.  The
        individual keyword arguments below override the corresponding
        option field when given, so both styles compose:
        ``SerialEngine(max_retries=0)`` and
        ``SerialEngine(options=EngineOptions(max_retries=0))`` are the
        same engine.
    max_retries, backoff_s, backoff_cap_s, backoff_budget_s:
        Per-field overrides of ``options`` (see :class:`EngineOptions`
        for semantics).
    job_runner:
        Callable ``spec -> RunResult``; defaults to :func:`execute_job`.
    """

    name = "engine"

    def __init__(
        self,
        *,
        options: EngineOptions | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
        backoff_cap_s: float | None = None,
        backoff_budget_s: float | None = None,
        job_runner: Callable[[JobSpec], RunResult] | None = None,
    ) -> None:
        opts = options if options is not None else EngineOptions()
        overrides = {
            key: value
            for key, value in {
                "max_retries": max_retries,
                "backoff_s": backoff_s,
                "backoff_cap_s": backoff_cap_s,
                "backoff_budget_s": backoff_budget_s,
            }.items()
            if value is not None
        }
        if overrides:
            opts = opts.replace(**overrides)
        self.options = opts
        self.job_runner = job_runner or execute_job
        self._backoff_left = opts.backoff_budget_s
        # Every degradation to serial, in order — surfaced by the CLI's
        # -v line and asserted on by tests; never reset implicitly.
        self.degraded_reasons: list[str] = []

    # The knobs stay readable as plain attributes — long-standing API for
    # tests and callers that predate EngineOptions.
    @property
    def max_retries(self) -> int:
        return self.options.max_retries

    @property
    def backoff_s(self) -> float:
        return self.options.backoff_s

    @property
    def backoff_cap_s(self) -> float:
        return self.options.backoff_cap_s

    @property
    def backoff_budget_s(self) -> float:
        return self.options.backoff_budget_s

    @property
    def max_attempts(self) -> int:
        return self.options.max_attempts

    def _note_degraded(self, reason: str) -> None:
        """A degradation to serial is a loud warning, never silent: count
        it, trace it, and keep the cause for ``-v`` reporting."""
        self.degraded_reasons.append(reason)
        METRICS.counter("exec.degraded_to_serial").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(EngineDegradedEvent(engine=self.name, reason=reason))
        print(f"warning: {self.name} degraded to serial: {reason}", file=sys.stderr)

    @abstractmethod
    def run(
        self, specs: Sequence[JobSpec], *, on_outcome: OnOutcome | None = None
    ) -> list[JobOutcome]:
        """Execute every job, returning outcomes in input order.

        ``on_outcome`` is invoked once per job *as its outcome is
        finalised* (success, or failure after the last retry) — the hook
        crash-safe consumers (the sweep journal, incremental store
        writes) use to persist completed work before the batch ends.
        Callback order is completion order, not input order.
        """

    def run_one(self, spec: JobSpec) -> JobOutcome:
        return self.run([spec])[0]

    def _reset_backoff(self) -> None:
        """Refill the backoff budget; called at the start of each batch."""
        self._backoff_left = self.backoff_budget_s

    def _backoff_sleep(self, failed_rounds: int) -> float:
        """Jittered, capped exponential backoff; returns seconds slept.

        The nominal delay doubles per failed round but is clamped to
        ``backoff_cap_s`` per sleep and to the batch's remaining
        ``backoff_budget_s`` overall, then scaled by a uniform jitter in
        [0.5, 1.0] — so one flaky job can delay a sweep by at most the
        budget, and never serialises concurrent retriers on a beat.
        """
        if self.backoff_s <= 0 or self._backoff_left <= 0:
            return 0.0
        nominal = min(
            self.backoff_s * (2 ** (failed_rounds - 1)),
            self.backoff_cap_s,
            self._backoff_left,
        )
        delay = nominal * (0.5 + 0.5 * random.random())
        self._backoff_left -= delay
        time.sleep(delay)
        return delay

    def _execute_with_retry(
        self,
        spec: JobSpec,
        *,
        attempts_used: int = 0,
        engine_name: str | None = None,
        emit_start: bool = True,
    ) -> JobOutcome:
        """In-process attempt loop shared by the serial engine and by pool
        engines degrading to serial: ``attempts_used`` carries over attempts
        a job already consumed elsewhere (e.g. in a broken pool), in which
        case the pool already announced the job and ``emit_start`` is False.
        """
        name = engine_name if engine_name is not None else self.name
        tracer = get_tracer()
        if tracer.enabled and emit_start:
            tracer.emit(
                JobStartEvent(label=spec.label, app=spec.app, policy=spec.policy, engine=name)
            )
        attempts = attempts_used
        error = "no attempts made"
        while attempts < max(self.max_attempts, attempts_used + 1):
            if attempts > attempts_used:
                self._backoff_sleep(attempts - attempts_used)
            attempts += 1
            start = time.perf_counter()
            try:
                if get_fault_plan() is not None:
                    fire_job_faults(spec.label, attempts)
                result = self.job_runner(spec)
            except Exception as exc:  # noqa: BLE001 — a job failure is data
                error = f"{type(exc).__name__}: {exc}"
                METRICS.counter("exec.retries").inc()
                if tracer.enabled:
                    tracer.emit(
                        RetryEvent(label=spec.label, engine=name, attempt=attempts, error=error)
                    )
                continue
            duration = time.perf_counter() - start
            METRICS.timer("exec.job").observe(duration)
            METRICS.counter("exec.jobs_ok").inc()
            if tracer.enabled:
                tracer.emit(
                    JobEndEvent(
                        label=spec.label,
                        app=spec.app,
                        policy=spec.policy,
                        engine=name,
                        ok=True,
                        attempts=attempts,
                        duration_s=duration,
                    )
                )
            return JobOutcome(
                spec=spec,
                result=result,
                attempts=attempts,
                duration_s=duration,
                engine=name,
            )
        METRICS.counter("exec.jobs_failed").inc()
        if tracer.enabled:
            tracer.emit(
                JobEndEvent(
                    label=spec.label,
                    app=spec.app,
                    policy=spec.policy,
                    engine=name,
                    ok=False,
                    attempts=attempts,
                    duration_s=0.0,
                    error=error,
                )
            )
        return JobOutcome(spec=spec, error=error, attempts=attempts, engine=name)

    # -- batched execution (repro.exec.batch) ---------------------------

    def _batching_enabled(self) -> bool:
        """Batching is a pure perf transformation; anything that depends
        on per-cell execution — fault replay keyed on per-job attempts,
        per-job trace narration, a custom runner — keeps cells single."""
        return (
            self.job_runner is execute_job
            and get_fault_plan() is None
            and not get_tracer().enabled
        )

    def _plan_units(self, specs: Sequence[JobSpec]) -> list[tuple[int, ...]]:
        """Index units for ``specs``: multi-lane groups when the batch
        planner applies, else the identity plan (one unit per job)."""
        if not self._batching_enabled():
            return [(i,) for i in range(len(specs))]
        from repro.exec.batch import plan_units

        return plan_units(specs)

    def _run_batch_inline(
        self, specs: list[JobSpec], *, engine_name: str | None = None
    ) -> list[JobOutcome]:
        """One in-process attempt at a whole batch unit.

        A failing batch is decomposed, not retried as a batch: every cell
        re-enters the per-job retry path with its full attempt budget, so
        batching can never cost a cell its retries.  Wall clock is
        attributed evenly across lanes (lanes run back-to-back over
        shared state; finer attribution would charge the shared prep to
        whichever lane went first).
        """
        from repro.exec.batch import execute_batch

        name = engine_name if engine_name is not None else self.name
        start = time.perf_counter()
        try:
            results = execute_batch(specs)
        except Exception as exc:  # noqa: BLE001 — decompose, don't fail cells
            METRICS.counter("batch.failed").inc()
            METRICS.counter("exec.retries").inc()
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(
                    RetryEvent(
                        label=f"batch[{specs[0].label}+{len(specs) - 1}]",
                        engine=name,
                        attempt=1,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            return [self._execute_with_retry(spec, engine_name=name) for spec in specs]
        per_cell = (time.perf_counter() - start) / len(specs)
        outcomes = []
        for spec, result in zip(specs, results):
            METRICS.timer("exec.job").observe(per_cell)
            METRICS.counter("exec.jobs_ok").inc()
            outcomes.append(
                JobOutcome(
                    spec=spec,
                    result=result,
                    attempts=1,
                    duration_s=per_cell,
                    engine=name,
                )
            )
        return outcomes


class SerialEngine(ExecutionEngine):
    """Runs every job in the calling process, one after another.

    This is the default engine: zero overhead, exactly the behaviour the
    harness had before the execution layer existed — plus retries.  Cells
    grouped by the batch planner (``cache_backend: "batch"``) execute as
    one multi-lane replay, fanned back out into per-cell outcomes.
    """

    name = "serial"

    def run(
        self, specs: Sequence[JobSpec], *, on_outcome: OnOutcome | None = None
    ) -> list[JobOutcome]:
        self._reset_backoff()
        specs = list(specs)
        outcomes: list[JobOutcome | None] = [None] * len(specs)
        for unit in self._plan_units(specs):
            if len(unit) == 1:
                unit_outcomes = [self._execute_with_retry(specs[unit[0]])]
            else:
                unit_outcomes = self._run_batch_inline([specs[i] for i in unit])
            for idx, outcome in zip(unit, unit_outcomes):
                outcomes[idx] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]
