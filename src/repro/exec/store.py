"""Persistent, content-addressed result store.

Layout (one JSON file per result, fanned out over 256 shard directories to
keep directory listings small)::

    <root>/v<repro version>/<digest[:2]>/<digest>.json

``digest`` is :attr:`repro.exec.jobs.JobSpec.digest` — the SHA-256 of the
canonical JSON of ``(app, policy, config)``.  Addressing by content means
there is no index to maintain or corrupt: a lookup is a single ``open``.

Three rules keep the store safe to share between invocations (and between
processes writing concurrently):

* **atomic publish** — payloads are written to a temporary file in the
  shard directory and ``os.replace``-d into place, so a reader never sees
  a half-written file and concurrent writers of the same key simply race
  to publish identical bytes;
* **invalidation by version** — entries live under a ``v<version>``
  directory and embed the version; any change to ``repro.__version__``
  orphans the old namespace wholesale (stale results can never leak
  across simulator changes);
* **corruption recovery** — an unreadable, mis-keyed or truncated entry is
  deleted and reported as a miss, never an error: the worst case is one
  recomputation.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import repro
from repro.core.records import RunResult
from repro.exec.faults import maybe_corrupt_artifact
from repro.exec.jobs import JobSpec
from repro.obs.events import StoreHitEvent, StoreMissEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["DEFAULT_STALE_TTL_S", "ResultStore"]

DEFAULT_STALE_TTL_S = 3600.0
"""Staging files older than this are presumed orphaned by a dead writer.

Generous on purpose: a live ``put`` holds its staging file for
milliseconds, so anything this old can only be the residue of a process
that was SIGKILLed mid-publish."""


class ResultStore:
    """On-disk cache of :class:`~repro.core.records.RunResult` by job digest.

    Counters (``hits``, ``misses``, ``writes``, ``corrupt``) accumulate over
    the store's lifetime; the CLI surfaces them under ``-v`` so a warm run
    can be *verified* to have simulated nothing.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        version: str | None = None,
        stale_ttl_s: float = DEFAULT_STALE_TTL_S,
    ) -> None:
        self.root = Path(root)
        self.version = version if version is not None else repro.__version__
        self.stale_ttl_s = stale_ttl_s
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.stale_swept = 0
        # Startup sweep: repeated hard-killed runs must not fill the disk
        # with orphaned staging files (a put that died between mkstemp
        # and os.replace leaves one behind).
        self.sweep_stale()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def path_for(self, spec: JobSpec) -> Path:
        digest = spec.digest
        return self.version_dir / digest[:2] / f"{digest}.json"

    def get(self, spec: JobSpec) -> RunResult | None:
        """Fetch the stored result for ``spec``, or None on miss.

        A corrupt entry (bad JSON, wrong version, digest/spec mismatch) is
        unlinked and counted in ``corrupt`` as well as ``misses``.
        """
        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            METRICS.counter("store.misses").inc()
            self._trace_miss(spec)
            return None
        except (OSError, json.JSONDecodeError):
            return self._evict_corrupt(path, spec)
        try:
            if payload["version"] != self.version or payload["spec"] != spec.canonical():
                return self._evict_corrupt(path, spec)
            result = RunResult.from_dict(payload["result"])
        except Exception:  # noqa: BLE001 — any malformed payload is corruption
            return self._evict_corrupt(path, spec)
        self.hits += 1
        METRICS.counter("store.hits").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(StoreHitEvent(label=spec.label, digest=spec.digest))
        return result

    @METRICS.timed("store.put")
    def put(self, spec: JobSpec, result: RunResult) -> Path:
        """Persist ``result`` under ``spec``'s digest (atomic publish).

        Safe under concurrent writers of the same key: every writer
        stages into its *own* ``mkstemp`` file (a dot-prefixed name no
        reader globs) and ``os.replace``-s it over the final path, so
        the entry atomically holds one writer's complete payload —
        identical bytes whoever wins.  If another process ``clear()``-s
        the shard between staging and publish, the rename is retried
        once after recreating the directory.
        """
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.version,
            "spec": spec.canonical(),
            "digest": spec.digest,
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".put-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            try:
                os.replace(tmp_name, path)
            except FileNotFoundError:
                # The shard directory vanished (concurrent clear/rmtree);
                # the staged payload is gone with it, so restage.
                path.parent.mkdir(parents=True, exist_ok=True)
                fd2, tmp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=".put-", suffix=".tmp"
                )
                with os.fdopen(fd2, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, separators=(",", ":"))
                os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1
        maybe_corrupt_artifact(path, spec.label)
        return path

    def sweep_stale(self, ttl_s: float | None = None) -> int:
        """Delete staging files orphaned by writers that died mid-``put``.

        Only files older than ``ttl_s`` (default: the store's
        ``stale_ttl_s``) go — a *live* concurrent writer's staging file
        is at most milliseconds old and is left alone.  Returns the
        count removed (also accumulated in ``stale_swept`` and the
        ``store.stale_swept`` metric).
        """
        ttl = self.stale_ttl_s if ttl_s is None else ttl_s
        if not self.version_dir.is_dir():
            return 0
        cutoff = time.time() - ttl
        removed = 0
        for stale in self.version_dir.glob("*/.put-*.tmp"):
            try:
                if stale.stat().st_mtime <= cutoff:
                    stale.unlink()
                    removed += 1
            except OSError:
                pass
        if removed:
            self.stale_swept += removed
            METRICS.counter("store.stale_swept").inc(removed)
        return removed

    def __contains__(self, spec: JobSpec) -> bool:
        return self.path_for(spec).is_file()

    def __len__(self) -> int:
        """Number of entries stored for the current version."""
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry for the current version; returns the count.

        Also sweeps staging files abandoned by writers that died mid-put
        (they are invisible to readers but would otherwise accumulate).
        """
        removed = 0
        if self.version_dir.is_dir():
            for entry in self.version_dir.glob("*/*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for stale in self.version_dir.glob("*/.put-*.tmp"):
                try:
                    stale.unlink()
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "stale_swept": self.stale_swept,
        }

    def _trace_miss(self, spec: JobSpec, *, corrupt: bool = False) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(StoreMissEvent(label=spec.label, digest=spec.digest, corrupt=corrupt))

    def _evict_corrupt(self, path: Path, spec: JobSpec) -> None:
        self.corrupt += 1
        self.misses += 1
        METRICS.counter("store.misses").inc()
        METRICS.counter("store.corrupt").inc()
        self._trace_miss(spec, corrupt=True)
        try:
            path.unlink()
        except OSError:
            pass
        return None
