"""Persistent, content-addressed result store.

Layout (one JSON blob per result, fanned out over 256 shard namespaces to
keep directory listings small)::

    <root>/v<repro version>/<digest[:2]>/<digest>.json

``digest`` is :attr:`repro.exec.jobs.JobSpec.digest` — the SHA-256 of the
canonical JSON of ``(app, policy, config)``.  Addressing by content means
there is no index to maintain or corrupt: a lookup is a single read.

The store's *persistence* is a pluggable :class:`repro.exec.backend
.StoreBackend` — the default :class:`~repro.exec.backend.LocalDirBackend`
keeps the historical on-disk layout byte-for-byte, while distributed
workers plug in a proxied backend that ships the same keys over a socket.
Three rules keep any backend safe to share between invocations (and
between processes writing concurrently):

* **atomic publish** — the backend's ``write`` is atomic, so a reader
  never sees a half-written payload and concurrent writers of the same
  key simply race to publish identical bytes;
* **invalidation by version** — entries live under a ``v<version>``
  namespace and embed the version; any change to ``repro.__version__``
  orphans the old namespace wholesale (stale results can never leak
  across simulator changes);
* **corruption recovery** — an unreadable, mis-keyed or truncated entry is
  deleted and reported as a miss, never an error: the worst case is one
  recomputation.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import repro
from repro.core.records import RunResult
from repro.exec.backend import LocalDirBackend, StoreBackend
from repro.exec.faults import maybe_corrupt_blob
from repro.exec.jobs import JobSpec
from repro.obs.events import StoreHitEvent, StoreMissEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = ["DEFAULT_STALE_TTL_S", "ResultStore"]

DEFAULT_STALE_TTL_S = 3600.0
"""Staging files older than this are presumed orphaned by a dead writer.

Generous on purpose: a live ``put`` holds its staging file for
milliseconds, so anything this old can only be the residue of a process
that was SIGKILLed mid-publish."""


class ResultStore:
    """Cache of :class:`~repro.core.records.RunResult` by job digest.

    Counters (``hits``, ``misses``, ``writes``, ``corrupt``) accumulate over
    the store's lifetime; the CLI surfaces them under ``-v`` so a warm run
    can be *verified* to have simulated nothing.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        version: str | None = None,
        stale_ttl_s: float = DEFAULT_STALE_TTL_S,
        backend: StoreBackend | None = None,
    ) -> None:
        self.root = Path(os.fspath(root))
        self.backend = backend if backend is not None else LocalDirBackend(self.root)
        self.version = version if version is not None else repro.__version__
        self.stale_ttl_s = stale_ttl_s
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.stale_swept = 0
        # Startup sweep: repeated hard-killed runs must not fill the disk
        # with orphaned staging files (a put that died between staging
        # and publish leaves one behind).
        self.sweep_stale()

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{self.version}"

    def key_for(self, spec: JobSpec) -> str:
        """The backend key for ``spec`` — relative POSIX path, version-
        namespaced, sharded by the digest's first byte."""
        digest = spec.digest
        return f"v{self.version}/{digest[:2]}/{digest}.json"

    def path_for(self, spec: JobSpec) -> Path:
        """Where a local-dir backend files ``spec`` (path arithmetic only;
        proxied backends have no local file here)."""
        digest = spec.digest
        return self.version_dir / digest[:2] / f"{digest}.json"

    def get(self, spec: JobSpec) -> RunResult | None:
        """Fetch the stored result for ``spec``, or None on miss.

        A corrupt entry (bad JSON, wrong version, digest/spec mismatch) is
        deleted and counted in ``corrupt`` as well as ``misses``.
        """
        key = self.key_for(spec)
        try:
            data = self.backend.read(key)
        except OSError:
            return self._evict_corrupt(key, spec)
        if data is None:
            self.misses += 1
            METRICS.counter("store.misses").inc()
            self._trace_miss(spec)
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
            if payload["version"] != self.version or payload["spec"] != spec.canonical():
                return self._evict_corrupt(key, spec)
            result = RunResult.from_dict(payload["result"])
        except Exception:  # noqa: BLE001 — any malformed payload is corruption
            return self._evict_corrupt(key, spec)
        self.hits += 1
        METRICS.counter("store.hits").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(StoreHitEvent(label=spec.label, digest=spec.digest))
        return result

    @METRICS.timed("store.put")
    def put(self, spec: JobSpec, result: RunResult) -> Path:
        """Persist ``result`` under ``spec``'s digest (atomic publish).

        Safe under concurrent writers of the same key: the backend's
        write is atomic and every writer of one digest carries identical
        bytes, so the entry holds one writer's complete payload whoever
        wins.  Returns where a local backend filed it (nominal for
        proxied backends).
        """
        payload = {
            "version": self.version,
            "spec": spec.canonical(),
            "digest": spec.digest,
            "result": result.to_dict(),
        }
        key = self.key_for(spec)
        self.backend.write(key, json.dumps(payload, separators=(",", ":")).encode("utf-8"))
        self.writes += 1
        maybe_corrupt_blob(self.backend, key, spec.label)
        return self.path_for(spec)

    def sweep_stale(self, ttl_s: float | None = None) -> int:
        """Delete staging files orphaned by writers that died mid-``put``.

        Only files older than ``ttl_s`` (default: the store's
        ``stale_ttl_s``) go — a *live* concurrent writer's staging file
        is at most milliseconds old and is left alone.  Returns the
        count removed (also accumulated in ``stale_swept`` and the
        ``store.stale_swept`` metric).  Backends without staging residue
        (memory, proxied) always report zero.
        """
        ttl = self.stale_ttl_s if ttl_s is None else ttl_s
        removed = self.backend.sweep_stale(f"v{self.version}", ttl)
        if removed:
            self.stale_swept += removed
            METRICS.counter("store.stale_swept").inc(removed)
        return removed

    def __contains__(self, spec: JobSpec) -> bool:
        return self.backend.exists(self.key_for(spec))

    def __len__(self) -> int:
        """Number of entries stored for the current version."""
        return sum(
            1 for key in self.backend.list(f"v{self.version}") if key.endswith(".json")
        )

    def clear(self) -> int:
        """Delete every entry for the current version; returns the count.

        Also sweeps staging files abandoned by writers that died mid-put
        (they are invisible to readers but would otherwise accumulate).
        """
        removed = 0
        for key in self.backend.list(f"v{self.version}"):
            name = key.rsplit("/", 1)[-1]
            if key.endswith(".json"):
                if self.backend.delete(key):
                    removed += 1
            elif name.startswith(".put-"):
                self.backend.delete(key)
        return removed

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "stale_swept": self.stale_swept,
        }

    def _trace_miss(self, spec: JobSpec, *, corrupt: bool = False) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(StoreMissEvent(label=spec.label, digest=spec.digest, corrupt=corrupt))

    def _evict_corrupt(self, key: str, spec: JobSpec) -> None:
        self.corrupt += 1
        self.misses += 1
        METRICS.counter("store.misses").inc()
        METRICS.counter("store.corrupt").inc()
        self._trace_miss(spec, corrupt=True)
        self.backend.delete(key)
        return None
