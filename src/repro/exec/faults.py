"""Deterministic, seeded fault injection for the execution layer.

Every degradation path in the execution layer — retry on job exception,
pool abandonment on timeout, degradation to serial on worker death,
corrupt-artifact eviction in the stores — exists to survive events that
are hard to produce on demand.  This module makes them drivable: a
:class:`FaultPlan` decides, as a *pure function* of ``(seed, kind,
job_key, attempt)``, whether a fault fires at each hook point, so the
same plan injects the same faults whatever the engine, process layout or
execution order.  That determinism is what lets the chaos suite assert
byte-identical aggregates across serial/pool runs and across
kill/resume boundaries.

Injector kinds
--------------
``delay``
    Sleep ``delay_s`` before the job attempt runs (drives timeout and
    backoff-budget paths).
``job-exception``
    Raise :class:`InjectedFault` inside the job runner (drives the retry
    loop; the attempt is consumed).
``worker-death``
    ``os._exit(3)`` inside a pool worker (drives ``BrokenProcessPool``
    abandonment and degradation to serial).  In-process engines cannot
    lose their process, so there the injector falls back to raising
    :class:`InjectedFault` — documented, still consuming the attempt.
``artifact-corruption``
    Truncate a just-published store entry (ResultStore payload or
    PrepStore manifest), driving the corrupt-evict-regenerate path on
    the next read.

Network kinds (fired by :mod:`repro.dist` at its socket hook points; the
in-process engines never roll them):

``slow-link``
    Sleep ``delay_s`` before a job frame is sent to a worker (drives
    dispatch latency without consuming an attempt).
``conn-drop``
    Close the worker connection after shipping the job — the attempt is
    consumed, the coordinator reconnects and retries.
``partition``
    The link silently eats the job frame: the attempt is consumed and
    retried, the socket survives.
``worker-vanish``
    The worker process exits mid-job (``os._exit(3)``), driving the
    worker-lost / redistribute path.  In-thread test workers emulate the
    vanish by closing their sockets instead of killing the test process.

Zero overhead when disabled: the process-wide plan slot defaults to
``None`` and every hook site guards with one ``is None`` check before
doing any work.  Pool engines ship the active plan to their workers
through the pool initializer (it is a frozen, picklable dataclass), and
— because decisions are deterministic — the *parent* announces each
planned job fault as an obs event/counter at submission time, so
injections stay visible even when they fire in a worker process whose
tracer and metrics the parent cannot see.
"""

from __future__ import annotations

import fnmatch
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from repro.obs.events import FaultInjectedEvent
from repro.obs.metrics import METRICS
from repro.obs.tracer import get_tracer

__all__ = [
    "FAULT_KINDS",
    "NET_FAULT_KINDS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "get_fault_plan",
    "set_fault_plan",
]

FAULT_KINDS = (
    "delay",
    "job-exception",
    "worker-death",
    "artifact-corruption",
    "slow-link",
    "conn-drop",
    "partition",
    "worker-vanish",
)

_JOB_KINDS = ("delay", "job-exception", "worker-death")

NET_FAULT_KINDS = ("slow-link", "conn-drop", "partition", "worker-vanish")


class InjectedFault(RuntimeError):
    """Raised by a ``job-exception`` (or in-process ``worker-death``)
    injector; engines treat it like any other job failure."""


@dataclass(frozen=True)
class FaultRule:
    """One injector: fire ``kind`` on matching ``(job_key, attempt)``.

    ``match`` is an ``fnmatch`` pattern over the job key (a job's
    ``spec.label`` such as ``"swim/model-based"``; an artifact's digest
    for ``artifact-corruption``).  ``attempts`` restricts the rule to
    specific attempt numbers (1-based) — ``(1,)`` makes a job fail once
    and succeed on retry; ``None`` fires on every attempt, which is how
    a perpetually-failing job is expressed.  ``rate`` thins the rule to
    a deterministic pseudo-random fraction of matching keys (seeded by
    the plan, so the *same* keys are chosen every run).
    """

    kind: str
    match: str = "*"
    rate: float = 1.0
    attempts: tuple[int, ...] | None = None
    delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(int(a) for a in self.attempts))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "match": self.match,
            "rate": self.rate,
            "attempts": None if self.attempts is None else list(self.attempts),
            "delay_s": self.delay_s,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s; pure data, safe to pickle
    into pool workers and to compare for pool-rebuild decisions."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        rules = tuple(
            FaultRule(
                kind=r["kind"],
                match=r.get("match", "*"),
                rate=r.get("rate", 1.0),
                attempts=None if r.get("attempts") is None else tuple(r["attempts"]),
                delay_s=r.get("delay_s", 0.25),
            )
            for r in payload.get("rules", ())
        )
        return cls(seed=int(payload.get("seed", 0)), rules=rules)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [r.to_dict() for r in self.rules]}

    def _roll(self, kind: str, key: str, attempt: int) -> float:
        """Deterministic uniform in [0, 1) for one ``(kind, key, attempt)``."""
        token = f"{self.seed}:{kind}:{key}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def select(self, kind: str, key: str, attempt: int) -> FaultRule | None:
        """First rule of ``kind`` that fires for ``(key, attempt)``, if any."""
        for rule in self.rules:
            if rule.kind != kind:
                continue
            if rule.attempts is not None and attempt not in rule.attempts:
                continue
            if not fnmatch.fnmatchcase(key, rule.match):
                continue
            if rule.rate >= 1.0 or self._roll(kind, key, attempt) < rule.rate:
                return rule
        return None

    def planned_job_faults(self, key: str, attempt: int) -> tuple[FaultRule, ...]:
        """Every job-scoped fault that will fire for ``(key, attempt)`` —
        computable anywhere, which is what lets the pool parent announce
        faults its workers will execute."""
        out = []
        for kind in _JOB_KINDS:
            rule = self.select(kind, key, attempt)
            if rule is not None:
                out.append(rule)
        return tuple(out)

    def planned_net_faults(self, key: str, attempt: int) -> tuple[FaultRule, ...]:
        """Every network fault that will fire when ``(key, attempt)`` is
        shipped to a worker.  Deterministic in the same roll as every
        other kind, so coordinator and worker agree on what the wire
        does without speaking — the property that keeps remote sweeps
        byte-identical under chaos."""
        out = []
        for kind in NET_FAULT_KINDS:
            rule = self.select(kind, key, attempt)
            if rule is not None:
                out.append(rule)
        return tuple(out)


# ----------------------------------------------------------------------
# Process-wide active plan (None = injection disabled, the default).
# ----------------------------------------------------------------------

_PLAN: FaultPlan | None = None


def get_fault_plan() -> FaultPlan | None:
    """The process-wide fault plan, or None when injection is off."""
    return _PLAN


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan (tests
    restore it)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def announce_faults(rules: tuple[FaultRule, ...], key: str, attempt: int) -> None:
    """Record planned injections in obs (counter per kind + trace event)."""
    tracer = get_tracer()
    for rule in rules:
        METRICS.counter(f"faults.injected.{rule.kind}").inc()
        if tracer.enabled:
            tracer.emit(FaultInjectedEvent(fault=rule.kind, key=key, attempt=attempt))


def execute_job_faults(rules: tuple[FaultRule, ...], key: str, attempt: int) -> None:
    """Carry planned job faults out, in deterministic order: delay first
    (so a delayed job can still subsequently fail), then exception, then
    worker death.  Raises :class:`InjectedFault` / never returns on the
    fatal kinds."""
    for rule in rules:
        if rule.kind == "delay":
            time.sleep(rule.delay_s)
    for rule in rules:
        if rule.kind == "job-exception":
            raise InjectedFault(f"injected job-exception for {key} (attempt {attempt})")
    for rule in rules:
        if rule.kind == "worker-death":
            if multiprocessing.parent_process() is not None:
                os._exit(3)
            # An in-process engine cannot lose its worker without losing
            # the whole run; degrade the injector to a consumed attempt.
            raise InjectedFault(f"injected worker-death for {key} (attempt {attempt})")


def fire_job_faults(key: str, attempt: int, *, announce: bool = True) -> None:
    """Hook for job-attempt sites (serial retry loop, pool worker shim).

    ``announce=False`` is the pool-worker spelling: the parent already
    announced at submission time, the worker only executes.
    """
    plan = _PLAN
    if plan is None:
        return
    rules = plan.planned_job_faults(key, attempt)
    if not rules:
        return
    if announce:
        announce_faults(rules, key, attempt)
    execute_job_faults(rules, key, attempt)


def maybe_corrupt_artifact(path, key: str) -> bool:
    """Hook for store publish sites: truncate the file at ``path`` to half
    its size when the active plan selects ``(key, attempt=0)`` for
    ``artifact-corruption``.  Returns True when the artifact was bitten
    (the caller's next read exercises its corrupt-evict path)."""
    plan = _PLAN
    if plan is None:
        return False
    rule = plan.select("artifact-corruption", key, 0)
    if rule is None:
        return False
    announce_faults((rule,), key, 0)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(size // 2)
    return True


def maybe_corrupt_blob(backend, key: str, label: str) -> bool:
    """Backend-flavoured :func:`maybe_corrupt_artifact`: rewrite the blob
    at ``key`` truncated to half, whatever the backend's medium.  Same
    roll (``artifact-corruption``, attempt 0), same observable effect —
    the next read parses garbage and takes the corrupt-evict path."""
    plan = _PLAN
    if plan is None:
        return False
    rule = plan.select("artifact-corruption", label, 0)
    if rule is None:
        return False
    announce_faults((rule,), label, 0)
    data = backend.read(key)
    if data is None:
        return False
    backend.write(key, data[: len(data) // 2])
    return True
