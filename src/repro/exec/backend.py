"""Pluggable blob backends for the content-addressed stores.

:class:`~repro.exec.store.ResultStore` historically *was* a directory
layout; distributing sweeps across machines means a worker's store writes
must be able to travel over a socket instead of a shared filesystem path.
This module is the seam: a :class:`StoreBackend` maps **relative POSIX
path keys** (``v<version>/<digest[:2]>/<digest>.json``) to opaque byte
blobs, and the store logic above it (keying, payload validation,
corruption eviction, metrics) is backend-agnostic.

Backends shipped here:

* :class:`LocalDirBackend` — the original on-disk layout, byte-for-byte:
  atomic publish via a ``.put-*.tmp`` staging file + ``os.replace``,
  restage when a concurrent ``clear()`` removes the shard directory
  mid-publish, stale-staging sweep by mtime.
* :class:`MemoryBackend` — a thread-safe dict; the unit-test double and
  the in-process half of the distributed store proxy.
* :class:`ShardedBackend` — N child backends keyed by a stable hash of
  the store key, so result traffic (and directory fan-out) spreads
  across shards while the store logic above stays single-backend.

The client/server-proxied backend lives in :mod:`repro.dist.storeproxy`
(it needs the wire protocol); an object-store backend slots in later
behind the same five methods.

Contract notes:

* ``read`` returns ``None`` for a *missing* key and raises ``OSError``
  for an unreadable one — callers treat the latter as corruption, not a
  miss, so the distinction must survive the abstraction.
* ``write`` is an atomic publish: a concurrent reader sees the old blob
  or the new blob, never a torn one.  Writers racing on one key are
  content-addressed, so last-writer-wins is correct.
* ``list`` returns every key under a prefix (including staging residue,
  which callers filter), sorted, so iteration order is deterministic.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
import zlib
from abc import ABC, abstractmethod
from pathlib import Path, PurePosixPath

__all__ = ["LocalDirBackend", "MemoryBackend", "ShardedBackend", "StoreBackend"]


def _check_key(key: str) -> str:
    """Reject keys that could escape a backend's namespace.

    Keys come from digests today, but the proxied backend accepts them
    off a socket — a traversal like ``../../etc/cron.d/x`` must die at
    the boundary, not in a path join.
    """
    pure = PurePosixPath(key)
    if pure.is_absolute() or not key or any(part in ("..", "") for part in pure.parts):
        raise ValueError(f"invalid store key {key!r}")
    return key


class StoreBackend(ABC):
    """Keyed blob storage: the persistence seam under the stores."""

    name = "backend"

    @abstractmethod
    def read(self, key: str) -> bytes | None:
        """The blob at ``key``; ``None`` if missing.  Raises ``OSError``
        for a present-but-unreadable blob (callers evict as corrupt)."""

    @abstractmethod
    def write(self, key: str, data: bytes) -> None:
        """Atomically publish ``data`` at ``key`` (creating parents)."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; True if something was removed."""

    @abstractmethod
    def list(self, prefix: str = "") -> list[str]:
        """Every key under ``prefix`` (a directory-like namespace), sorted."""

    def exists(self, key: str) -> bool:
        return self.read(key) is not None

    def sweep_stale(self, prefix: str, ttl_s: float) -> int:
        """Reclaim staging residue older than ``ttl_s`` under ``prefix``.

        Only meaningful for backends whose atomic publish stages through
        files a dead writer can orphan; others inherit this no-op.
        """
        return 0


class LocalDirBackend(StoreBackend):
    """The on-disk layout the stores have always used.

    Publish is mkstemp-into-the-shard + ``os.replace``: a reader never
    sees a half-written file, and concurrent writers of one key race to
    publish identical bytes.  If a concurrent ``clear()`` rmtree-s the
    shard between staging and publish, the staged file went with it —
    the write restages once into a recreated directory.
    """

    name = "local-dir"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / _check_key(key)

    def read(self, key: str) -> bytes | None:
        try:
            return self.path_for(key).read_bytes()
        except FileNotFoundError:
            return None

    def write(self, key: str, data: bytes) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".put-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            try:
                os.replace(tmp_name, path)
            except FileNotFoundError:
                # The shard directory vanished (concurrent clear/rmtree);
                # the staged payload is gone with it, so restage.
                path.parent.mkdir(parents=True, exist_ok=True)
                fd2, tmp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=".put-", suffix=".tmp"
                )
                with os.fdopen(fd2, "wb") as fh:
                    fh.write(data)
                os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def exists(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def list(self, prefix: str = "") -> list[str]:
        base = self.root / _check_key(prefix) if prefix else self.root
        if not base.is_dir():
            return []
        return sorted(
            str(p.relative_to(self.root).as_posix())
            for p in base.rglob("*")
            if p.is_file()
        )

    def sweep_stale(self, prefix: str, ttl_s: float) -> int:
        base = self.root / _check_key(prefix) if prefix else self.root
        if not base.is_dir():
            return 0
        cutoff = time.time() - ttl_s
        removed = 0
        for stale in base.glob("*/.put-*.tmp"):
            try:
                if stale.stat().st_mtime <= cutoff:
                    stale.unlink()
                    removed += 1
            except OSError:
                pass
        return removed


class MemoryBackend(StoreBackend):
    """Thread-safe in-memory blobs — the test double, and what a worker's
    store proxy drains into before shipping results home."""

    name = "memory"

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def read(self, key: str) -> bytes | None:
        with self._lock:
            return self._blobs.get(_check_key(key))

    def write(self, key: str, data: bytes) -> None:
        with self._lock:
            self._blobs[_check_key(key)] = bytes(data)

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._blobs.pop(_check_key(key), None) is not None

    def list(self, prefix: str = "") -> list[str]:
        if prefix:
            _check_key(prefix)
            head = prefix.rstrip("/") + "/"
        else:
            head = ""
        with self._lock:
            return sorted(k for k in self._blobs if k.startswith(head))


class ShardedBackend(StoreBackend):
    """Partition one keyspace over N child backends by a stable key hash.

    Keys embed the result digest, so hashing the whole key spreads cells
    evenly and deterministically: the same key always lands on the same
    shard, across processes and runs (CRC-32 is stable; ``hash()`` is
    not).  Point ops route to one shard; ``list`` is a sorted merge over
    all of them so the store's iteration order is indistinguishable from
    a single backend's.

    The intended deployment is one :class:`LocalDirBackend` per spindle
    or one proxied backend per store server — either way the coordinator
    stops being the single durability funnel for every result byte.
    """

    name = "sharded"

    def __init__(self, shards) -> None:
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("ShardedBackend needs at least one shard")

    @classmethod
    def local(cls, root: str | Path, n: int) -> "ShardedBackend":
        """N ``LocalDirBackend`` shards under ``root/shard-NN``."""
        if n < 1:
            raise ValueError("shard count must be >= 1")
        root = Path(root)
        return cls(LocalDirBackend(root / f"shard-{i:02d}") for i in range(n))

    def shard_for(self, key: str) -> StoreBackend:
        index = zlib.crc32(_check_key(key).encode("utf-8")) % len(self.shards)
        return self.shards[index]

    def read(self, key: str) -> bytes | None:
        return self.shard_for(key).read(key)

    def write(self, key: str, data: bytes) -> None:
        self.shard_for(key).write(key, data)

    def delete(self, key: str) -> bool:
        return self.shard_for(key).delete(key)

    def exists(self, key: str) -> bool:
        return self.shard_for(key).exists(key)

    def list(self, prefix: str = "") -> list[str]:
        merged: list[str] = []
        for shard in self.shards:
            merged.extend(shard.list(prefix))
        return sorted(merged)

    def sweep_stale(self, prefix: str, ttl_s: float) -> int:
        return sum(shard.sweep_stale(prefix, ttl_s) for shard in self.shards)
