"""Execution layer: parallel engines and a persistent result store.

Every paper figure replays ``(app, policy, config)`` simulations; this
package is the layer between the simulator and every harness entry point
that makes those replays cheap:

* :class:`JobSpec` / :class:`JobOutcome` — the unit of work and its
  recorded outcome (result or error, attempts, duration).
* :class:`ExecutionEngine` — how jobs run: :class:`SerialEngine`
  (in-process), :class:`ProcessPoolEngine` (multiprocessing fan-out
  with chunked submission, per-job timeouts, bounded retry with backoff
  and graceful degradation to serial when a pool worker dies) or
  :class:`~repro.dist.engine.RemoteEngine` (TCP worker fleet; lives in
  :mod:`repro.dist`).  All three share one :class:`EngineOptions`
  retry/backoff configuration.
* :class:`ResultStore` — a content-addressed cache of
  :class:`~repro.core.records.RunResult` that persists across harness
  invocations (key = SHA-256 of the job's canonical JSON, atomic
  write-then-rename, invalidated by ``repro.__version__``), persisted
  through a pluggable :class:`StoreBackend` (:class:`LocalDirBackend`
  on disk, :class:`MemoryBackend` in tests,
  :class:`~repro.dist.storeproxy.ProxyBackend` over the wire).
* :func:`run_sweep` — fan a grid of apps × policies × seeds ×
  thread-counts out over an engine and aggregate speedups.
* :class:`SweepJournal` — append-only, fsynced record of completed sweep
  cells; ``run_sweep(..., journal=..., resume=True)`` restores them
  after a crash instead of recomputing.
* :class:`FaultPlan` — deterministic, seeded fault injection (worker
  death, job exceptions, artifact corruption, delays, plus the network
  kinds in ``NET_FAULT_KINDS``: slow links, dropped connections,
  partitions, vanishing workers) threaded through every engine and
  store behind a zero-overhead-when-disabled hook.

See DESIGN.md §A (execution appendix) for the key scheme and the
invalidation-by-version rule, §E for crash safety and fault
injection, and §G for distributed execution.
"""

from repro.exec.backend import LocalDirBackend, MemoryBackend, StoreBackend
from repro.exec.engine import EngineOptions, ExecutionEngine, SerialEngine, execute_job
from repro.exec.faults import (
    NET_FAULT_KINDS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    get_fault_plan,
    set_fault_plan,
)
from repro.exec.grid import DEFAULT_POLICIES, POLICY_ALIASES, GridError, SweepGrid
from repro.exec.jobs import JobOutcome, JobSpec
from repro.exec.journal import JournalEntry, JournalMismatchError, SweepJournal
from repro.exec.pool import ProcessPoolEngine
from repro.exec.store import ResultStore
from repro.exec.sweep import SweepResult, expand_grid, grid_key, run_sweep

__all__ = [
    "DEFAULT_POLICIES",
    "EngineOptions",
    "ExecutionEngine",
    "FaultPlan",
    "FaultRule",
    "GridError",
    "InjectedFault",
    "JobOutcome",
    "JobSpec",
    "JournalEntry",
    "JournalMismatchError",
    "LocalDirBackend",
    "MemoryBackend",
    "NET_FAULT_KINDS",
    "POLICY_ALIASES",
    "ProcessPoolEngine",
    "ResultStore",
    "SerialEngine",
    "StoreBackend",
    "SweepGrid",
    "SweepJournal",
    "SweepResult",
    "execute_job",
    "expand_grid",
    "get_fault_plan",
    "grid_key",
    "run_sweep",
    "set_fault_plan",
]
