"""repro — reproduction of "Intra-Application Cache Partitioning" (IPDPS 2010).

A trace-driven chip-multiprocessor simulator plus the paper's dynamic,
runtime-system-based scheme for partitioning a shared L2 cache among the
threads of a single multithreaded application, speeding up the
critical-path thread at each execution interval.

Quick start::

    from repro import SystemConfig, run_application

    config = SystemConfig.default()
    dynamic = run_application("swim", "model-based", config)
    shared = run_application("swim", "shared", config)
    print(f"speedup over shared cache: {dynamic.speedup_over(shared):+.1%}")

Public surface:

* :func:`repro.run_application` / :class:`repro.SystemConfig` — run the simulator.
* :mod:`repro.partition` — all partitioning policies (``POLICY_REGISTRY``).
* :mod:`repro.trace` — the nine synthetic workload profiles (``WORKLOADS``).
* :mod:`repro.experiments` — one runner per paper figure/table.
* :mod:`repro.exec` — parallel execution engines and the persistent,
  content-addressed result store (``--jobs`` / ``--cache-dir``).
* :mod:`repro.dist` — distributed sweeps: ``repro worker`` processes,
  :class:`~repro.dist.engine.RemoteEngine` (``--engine remote
  --workers host:port,...``) and the store proxy (DESIGN.md §G).
"""

# Defined before any subpackage import: repro.exec and repro.prep read it
# during package initialisation (both stores namespace entries by version).
__version__ = "1.9.0"

from repro.cache import (
    CacheGeometry,
    FastPartitionedSharedCache,
    PartitionedSharedCache,
    PrivateCache,
    make_shared_cache,
)
from repro.core import IntervalObservation, RunResult, RuntimeSystem, ThreadModelBank
from repro.cpu import CMPEngine, TimingModel, compile_program
from repro.exec import (
    ExecutionEngine,
    JobOutcome,
    JobSpec,
    ProcessPoolEngine,
    ResultStore,
    SerialEngine,
    run_sweep,
)
from repro.partition import (
    POLICY_REGISTRY,
    CPIProportionalPolicy,
    FairnessOrientedPolicy,
    ModelBasedPolicy,
    PartitioningPolicy,
    SharedCachePolicy,
    StaticEqualPolicy,
    StaticPolicy,
    ThroughputOrientedPolicy,
)
from repro.prep import PrepStore, configure_prep, get_prep_store, set_prep_store
from repro.sim import SystemConfig, prepare_program, run_application
from repro.trace import WORKLOADS, ThreadBehavior, WorkloadProfile, get_workload, list_workloads

__all__ = [
    "CMPEngine",
    "CPIProportionalPolicy",
    "CacheGeometry",
    "ExecutionEngine",
    "FairnessOrientedPolicy",
    "FastPartitionedSharedCache",
    "IntervalObservation",
    "JobOutcome",
    "JobSpec",
    "ModelBasedPolicy",
    "POLICY_REGISTRY",
    "PartitionedSharedCache",
    "PartitioningPolicy",
    "PrepStore",
    "PrivateCache",
    "ProcessPoolEngine",
    "ResultStore",
    "RunResult",
    "RuntimeSystem",
    "SerialEngine",
    "SharedCachePolicy",
    "StaticEqualPolicy",
    "StaticPolicy",
    "SystemConfig",
    "ThreadBehavior",
    "ThreadModelBank",
    "ThroughputOrientedPolicy",
    "TimingModel",
    "WORKLOADS",
    "WorkloadProfile",
    "__version__",
    "compile_program",
    "configure_prep",
    "get_prep_store",
    "get_workload",
    "list_workloads",
    "make_shared_cache",
    "prepare_program",
    "run_application",
    "run_sweep",
    "set_prep_store",
]
