"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate one application under one policy
compare    run all policies on one or more applications
figure     regenerate a paper figure/table by id (fig3, fig20, ...)
sweep      fan a grid of apps x policies x seeds x thread-counts out
report     summarize a telemetry trace written by ``--trace``
list       list workloads, policies and experiments

Every simulating command accepts ``--jobs N`` (simulate on N worker
processes), ``--cache-dir DIR`` (persist results in a content-addressed
on-disk store, reused by later invocations), ``--trace PATH`` (write
telemetry events to PATH; ``--trace-format chrome`` emits a Chrome
``trace_event`` file loadable in Perfetto instead of JSONL) and ``-v``
(print execution/cache counters to stderr).

Examples
--------
    python -m repro run swim --policy model-based --trace swim.jsonl
    python -m repro report swim.jsonl
    python -m repro compare swim cg --intervals 30 --jobs 4
    python -m repro figure fig20 --cache-dir ~/.cache/repro
    python -m repro sweep --apps swim cg --seeds 1 2 3 --jobs 4 -v
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from repro.exec import (
    FaultPlan,
    JournalMismatchError,
    ProcessPoolEngine,
    ResultStore,
    SerialEngine,
    run_sweep,
    set_fault_plan,
)
from repro.experiments import EXPERIMENTS, speedup_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    configure,
    execution_stats,
    get_result,
    reset_execution_stats,
)
from repro.obs import (
    METRICS,
    InterruptEvent,
    JsonlTracer,
    MetricsEvent,
    RecordingTracer,
    get_tracer,
    read_events,
    set_tracer,
    summarize,
    write_chrome_trace,
)
from repro.partition import POLICY_REGISTRY
from repro.prep import configure_prep, get_prep_store
from repro.sim.config import SystemConfig
from repro.trace.workloads import list_workloads

__all__ = ["build_parser", "main"]

# Short spellings accepted anywhere a policy name is: normalised by the
# argparse ``type`` hook *before* the ``choices`` check runs.
POLICY_ALIASES = {"model": "model-based", "cpi": "cpi-proportional", "equal": "static-equal"}


def _positive_int(value: str) -> int:
    """argparse type for counts that must be >= 1 (exit 2 on violation)."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {value!r}") from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _policy_name(value: str) -> str:
    return POLICY_ALIASES.get(value, value)


def _fault_plan(value: str) -> FaultPlan:
    """argparse type for ``--faults``: inline JSON, or a path to a JSON
    file, describing ``{"seed": ..., "rules": [{"kind": ..., ...}]}``."""
    try:
        if value.lstrip().startswith("{"):
            payload = json.loads(value)
        else:
            payload = json.loads(Path(value).read_text(encoding="utf-8"))
        return FaultPlan.from_dict(payload)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise argparse.ArgumentTypeError(f"invalid fault plan: {exc}") from None


class _Interrupted(BaseException):
    """Raised by the sweep signal handlers; BaseException so an
    ``except Exception`` in job code cannot swallow the stop request."""

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(signal.Signals(signum).name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Intra-application cache partitioning simulator (IPDPS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--threads", type=int, default=4, help="number of cores/threads")
        p.add_argument("--intervals", type=int, default=50, help="execution intervals")
        p.add_argument(
            "--interval-instructions", type=int, default=20_000,
            help="instructions per thread per interval",
        )
        p.add_argument("--seed", type=int, default=1, help="workload seed")

    def add_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-backend", default="fast", choices=("fast", "reference"),
            help="shared-L2 implementation: fast (vectorized replay kernel, "
            "default) or reference (readable per-set model); outputs are "
            "byte-identical",
        )
        p.add_argument(
            "--jobs", type=_positive_int, default=1, metavar="N",
            help="worker processes for simulations (>= 1; 1 = serial, default)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist simulation results in a content-addressed store at DIR",
        )
        p.add_argument(
            "--prep-dir", default=None, metavar="DIR",
            help="cache prepared programs (traces + compiled L2 streams) as "
            "memory-mappable artifact bundles at DIR, shared across "
            "processes and invocations",
        )
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write telemetry events to PATH (summarize with `repro report`)",
        )
        p.add_argument(
            "--trace-format", default="jsonl", choices=("jsonl", "chrome"),
            help="trace file format: jsonl (default; `repro report` input) or "
            "chrome (trace_event JSON for Perfetto / chrome://tracing)",
        )
        p.add_argument(
            "--faults", default=None, metavar="JSON", type=_fault_plan,
            help="inject deterministic faults (chaos testing): inline JSON or a "
            'file, e.g. \'{"seed": 7, "rules": [{"kind": "job-exception", '
            '"rate": 0.3, "attempts": [1]}]}\'; kinds: delay, job-exception, '
            "worker-death, artifact-corruption",
        )
        p.add_argument(
            "-v", "--verbose", action="store_true",
            help="print execution-engine and result-store counters to stderr",
        )

    p_run = sub.add_parser("run", help="simulate one application under one policy")
    p_run.add_argument("app", help="workload name (see `repro list`)")
    p_run.add_argument(
        "--policy", default="model-based", type=_policy_name,
        choices=sorted(POLICY_REGISTRY),
        help="partitioning policy (aliases: %s)"
        % ", ".join(f"{k}={v}" for k, v in sorted(POLICY_ALIASES.items())),
    )
    p_run.add_argument("--json", action="store_true", help="emit the full result as JSON")
    add_config_args(p_run)
    add_exec_args(p_run)

    p_cmp = sub.add_parser("compare", help="all policies side by side")
    p_cmp.add_argument("apps", nargs="*", help="workloads (default: all nine)")
    add_config_args(p_cmp)
    add_exec_args(p_cmp)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    p_fig.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")
    p_fig.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    add_config_args(p_fig)
    add_exec_args(p_fig)

    p_sw = sub.add_parser(
        "sweep", help="fan a grid of apps x policies x seeds x thread-counts out"
    )
    p_sw.add_argument(
        "--apps", nargs="+", default=None, metavar="APP",
        help="workloads to sweep (default: all)",
    )
    p_sw.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        type=_policy_name, choices=sorted(POLICY_REGISTRY),
        help="policies to sweep (default: shared, static-equal, throughput, model-based)",
    )
    p_sw.add_argument(
        "--seeds", nargs="+", type=int, default=[1], metavar="SEED",
        help="workload seeds to sweep",
    )
    p_sw.add_argument(
        "--thread-counts", nargs="+", type=int, default=[4], metavar="N",
        help="core/thread counts to sweep",
    )
    p_sw.add_argument(
        "--baseline", default=None,
        help="policy speedups are measured against (default: shared if swept)",
    )
    p_sw.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal every completed cell to PATH (append-only JSONL, fsynced "
        "per cell) so a crashed or interrupted sweep can be resumed",
    )
    p_sw.add_argument(
        "--resume", action="store_true",
        help="resume from --journal: restore cells it records as completed and "
        "fan out only the remainder (requires --journal)",
    )
    p_sw.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    p_sw.add_argument("--intervals", type=int, default=50, help="execution intervals")
    p_sw.add_argument(
        "--interval-instructions", type=int, default=20_000,
        help="instructions per thread per interval",
    )
    add_exec_args(p_sw)

    p_rep = sub.add_parser("report", help="summarize a JSONL trace written by --trace")
    p_rep.add_argument("trace", help="path to a .jsonl trace file")
    p_rep.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="how many slowest jobs to list (default 5)",
    )

    sub.add_parser("list", help="list workloads, policies and experiments")
    return parser


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.default().with_(
        n_threads=args.threads,
        n_intervals=args.intervals,
        interval_instructions=args.interval_instructions,
        seed=args.seed,
        cache_backend=args.cache_backend,
    )


def _setup_execution(args: argparse.Namespace) -> None:
    """Install the engine/store/fault-plan selected by ``--jobs`` /
    ``--cache-dir`` / ``--prep-dir`` / ``--faults``."""
    set_fault_plan(args.faults)  # before the engine: pool workers inherit it
    engine = ProcessPoolEngine(args.jobs) if args.jobs > 1 else SerialEngine()
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    configure(engine=engine, store=store)
    configure_prep(args.prep_dir)
    reset_execution_stats()


def _report_execution(args: argparse.Namespace) -> None:
    """One stderr line of counters, so a warm-cache run can be *verified*
    to have simulated nothing (``simulated=0``)."""
    if not args.verbose:
        return
    stats = execution_stats()
    from repro.experiments.runner import current_engine

    line = (
        f"exec: engine={current_engine().name} jobs={args.jobs} "
        f"simulated={stats['simulated']} memo-hits={stats['memo_hits']} "
        f"store-hits={stats['store_hits']}"
    )
    if "store" in stats:
        s = stats["store"]
        line += (
            f" store-misses={s['misses']} store-writes={s['writes']}"
            f" store-corrupt={s['corrupt']}"
        )
    line += _prep_suffix()
    line += _crash_suffix()
    print(line, file=sys.stderr)


def _prep_suffix() -> str:
    """`` prep-hits=... ...`` fragment for verbose lines (empty when no
    prep store is configured)."""
    prep = get_prep_store()
    if prep is None:
        return ""
    p = prep.stats()
    return (
        f" prep-hits={p['hits']} prep-misses={p['misses']}"
        f" prep-writes={p['writes']} prep-corrupt={p['corrupt']}"
    )


def _crash_suffix() -> str:
    """`` degraded-to-serial=... faults-injected=...`` fragment for verbose
    lines — only the counters that are non-zero, so the common healthy
    run stays one short line."""
    counters = METRICS.snapshot().get("counters", {})
    parts = []
    degraded = counters.get("exec.degraded_to_serial", 0)
    if degraded:
        parts.append(f" degraded-to-serial={degraded}")
    faults = sum(v for k, v in counters.items() if k.startswith("faults.injected."))
    if faults:
        parts.append(f" faults-injected={faults}")
    stale = counters.get("store.stale_swept", 0) + counters.get("prep.stale_swept", 0)
    if stale:
        parts.append(f" stale-swept={stale}")
    return "".join(parts)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("workloads:  " + ", ".join(list_workloads()))
        print("policies:   " + ", ".join(sorted(POLICY_REGISTRY)))
        print("experiments:" + " " + ", ".join(EXPERIMENTS))
        return 0

    if args.command == "report":
        try:
            records = read_events(args.trace)
        except (OSError, ValueError) as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        print(summarize(records, top=args.top))
        return 0

    _setup_execution(args)

    if not args.trace:
        return _dispatch(args)

    # Chrome traces need the full event list to assemble counter tracks, so
    # they buffer in memory; JSONL streams to disk as events happen.
    tracer = JsonlTracer(args.trace) if args.trace_format == "jsonl" else RecordingTracer()
    previous = set_tracer(tracer)
    try:
        return _dispatch(args)
    finally:
        tracer.emit(MetricsEvent(snapshot=METRICS.snapshot()))
        tracer.close()
        if args.trace_format == "chrome":
            write_chrome_trace(args.trace, tracer.records)
        set_tracer(previous)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        if args.app not in list_workloads():
            print(
                f"unknown workload {args.app!r}; known: {', '.join(list_workloads())}",
                file=sys.stderr,
            )
            return 2
        config = _config(args)
        if args.trace:
            # A traced run must actually simulate — memo/store hits would
            # replay a stored RunResult and emit no interval events — so it
            # bypasses the lookup layers and drives the simulator directly
            # (the engines pick the tracer up from the process-wide slot).
            from repro.sim.driver import run_application

            result = run_application(args.app, args.policy, config)
        else:
            result = get_result(args.app, args.policy, config)
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2)
            print()
            _report_execution(args)
            return 0
        rows = [
            [f"thread {t}", f"{result.thread_cpi(t):.2f}", result.l2_totals.misses[t],
             f"{result.thread_stall_cycles[t] / result.total_cycles:.1%}"]
            for t in range(result.n_threads)
        ]
        print(format_table(
            ["thread", "busy CPI", "L2 misses", "slack"],
            rows,
            title=f"{args.app} under {args.policy}: {result.total_cycles / 1e6:.2f}M cycles",
        ))
        final = result.intervals[-1].observation if result.intervals else None
        if final is not None:
            print(f"\nfinal way partition: {list(final.targets)}")
        _report_execution(args)
        return 0

    if args.command == "compare":
        config = _config(args)
        apps = args.apps or list_workloads()
        unknown = [a for a in apps if a not in list_workloads()]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 2
        print(speedup_table(config, apps))
        _report_execution(args)
        return 0

    if args.command == "figure":
        config = _config(args)
        if args.name == "fig22" and config.n_threads < 8:
            config = config.with_(n_threads=8)
        result = EXPERIMENTS[args.name](config)
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2)
            print()
        else:
            print(result.format())
        _report_execution(args)
        return 0

    if args.command == "sweep":
        return _sweep_command(args)

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _sweep_command(args: argparse.Namespace) -> int:
    apps = args.apps or list_workloads()
    unknown = [a for a in apps if a not in list_workloads()]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    policies = args.policies or ["shared", "static-equal", "throughput", "model-based"]
    baseline = args.baseline
    if baseline is not None and baseline not in policies:
        print(
            f"baseline {baseline!r} is not among the swept policies: "
            f"{', '.join(policies)}",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.journal:
        print("--resume needs --journal PATH to resume from", file=sys.stderr)
        return 2
    config = SystemConfig.default().with_(
        n_intervals=args.intervals,
        interval_instructions=args.interval_instructions,
        cache_backend=args.cache_backend,
    )
    from repro.experiments.runner import current_engine, current_store

    # Interrupt protocol: SIGINT/SIGTERM stop the sweep *cleanly* — the
    # journal already holds every completed cell (flushed per append), so
    # the handlers only have to drain the warm pool, sweep staged temp
    # dirs, and exit 130 leaving the journal ready for --resume.
    def _stop(signum, frame):
        raise _Interrupted(signum)

    try:
        old_int = signal.signal(signal.SIGINT, _stop)
        old_term = signal.signal(signal.SIGTERM, _stop)
    except ValueError:  # pragma: no cover — not in the main thread
        old_int = old_term = None
    try:
        result = run_sweep(
            apps,
            policies,
            seeds=args.seeds,
            thread_counts=args.thread_counts,
            config=config,
            engine=current_engine(),
            store=current_store(),
            baseline=baseline,
            journal=args.journal,
            resume=args.resume,
        )
    except JournalMismatchError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    except (_Interrupted, KeyboardInterrupt) as exc:
        signame = exc.args[0] if isinstance(exc, _Interrupted) else "SIGINT"
        return _interrupted_sweep(args, signame)
    finally:
        if old_int is not None:
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)

    if args.json:
        json.dump(result.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(result.format())
    if args.verbose:
        # The sweep drives the engine/store itself, so report its own
        # counters rather than the runner-module ones.
        line = (
            f"exec: engine={result.engine} jobs={args.jobs} "
            f"simulated={result.simulated} store-hits={result.store_hits} "
            f"resumed={result.resumed}"
        )
        if result.store_stats is not None:
            s = result.store_stats
            line += (
                f" store-misses={s['misses']} store-writes={s['writes']}"
                f" store-corrupt={s['corrupt']}"
            )
        line += _prep_suffix()
        line += _crash_suffix()
        print(line, file=sys.stderr)
    return 0 if not result.failures else 1


def _interrupted_sweep(args: argparse.Namespace, signame: str) -> int:
    """Clean stop: drain the pool, sweep staged dirs, report, exit 130."""
    from repro.exec.journal import SweepJournal
    from repro.experiments.runner import current_engine, current_store

    engine = current_engine()
    if hasattr(engine, "close"):
        engine.close()  # drain the warm pool (workers exit, nothing leaks)
    # Our own writers are stopped, so staged temp dirs younger than any
    # TTL are still orphans — sweep them with ttl 0.
    for store in (current_store(), get_prep_store()):
        if store is not None:
            store.sweep_stale(0.0)
    completed = 0
    if args.journal and Path(args.journal).is_file():
        _, entries, _ = SweepJournal.load(args.journal)
        completed = sum(1 for e in entries.values() if e.ok)
    METRICS.counter("exec.interrupted").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(InterruptEvent(signal=signame, completed=completed))
    hint = (
        f"; {completed} completed cell(s) journaled — resume with --resume"
        if args.journal
        else " (no --journal: completed cells in this run are lost)"
    )
    print(f"sweep: interrupted by {signame}{hint}", file=sys.stderr)
    return 130


if __name__ == "__main__":
    raise SystemExit(main())
