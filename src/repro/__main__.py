"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate one application under one policy
compare    run all policies on one or more applications
figure     regenerate a paper figure/table by id (fig3, fig20, ...)
sweep      fan a grid of apps x policies x seeds x thread-counts out
run-spec   execute a checked-in YAML/JSON experiment spec: same grid
           machinery as ``sweep``, declared in a file (DESIGN.md §H)
compare-runs
           diff two sweep result stores cell by cell and exit non-zero
           on regression (the continuous-benchmarking gate)
serve      run the sweep service: accept grids over HTTP, coalesce
           duplicate work, stream progress (DESIGN.md §F)
submit     submit a sweep grid to a running ``repro serve`` and wait
worker     run a distributed-sweep worker; point ``--engine remote
           --workers host:port,...`` at a fleet of them (DESIGN.md §G)
report     summarize a telemetry trace written by ``--trace``
list       list workloads, policies and experiments

Every simulating command accepts ``--jobs N`` (simulate on N worker
processes), ``--engine remote --workers host:port,...`` (dispatch to a
``repro worker`` fleet instead), ``--cache-dir DIR`` (persist results in
a content-addressed on-disk store, reused by later invocations),
``--trace PATH`` (write telemetry events to PATH; ``--trace-format
chrome`` emits a Chrome ``trace_event`` file loadable in Perfetto
instead of JSONL) and ``-v`` (print execution/cache counters to
stderr).

Examples
--------
    python -m repro run swim --policy model-based --trace swim.jsonl
    python -m repro report swim.jsonl
    python -m repro compare swim cg --intervals 30 --jobs 4
    python -m repro figure fig20 --cache-dir ~/.cache/repro
    python -m repro sweep --apps swim cg --seeds 1 2 3 --jobs 4 -v
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path

from repro.exec import (
    DEFAULT_POLICIES,
    POLICY_ALIASES,
    FaultPlan,
    GridError,
    JournalMismatchError,
    ProcessPoolEngine,
    ResultStore,
    SerialEngine,
    SweepGrid,
    run_sweep,
    set_fault_plan,
)
from repro.experiments import EXPERIMENTS, speedup_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    configure,
    execution_stats,
    get_result,
    reset_execution_stats,
)
from repro.obs import (
    METRICS,
    InterruptEvent,
    JsonlTracer,
    MetricsEvent,
    RecordingTracer,
    get_tracer,
    read_events,
    set_tracer,
    summarize,
    write_chrome_trace,
)
from repro.partition import POLICY_REGISTRY
from repro.prep import configure_prep, get_prep_store
from repro.serve.protocol import DEFAULT_PORT
from repro.sim.config import SystemConfig
from repro.trace.workloads import list_workloads

__all__ = ["build_parser", "main"]


def _positive_int(value: str) -> int:
    """argparse type for counts that must be >= 1 (exit 2 on violation)."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {value!r}") from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _policy_name(value: str) -> str:
    return POLICY_ALIASES.get(value, value)


def _worker_list(value: str) -> list[tuple[str, int]]:
    """argparse type for ``--workers``: comma-separated ``host:port``."""
    from repro.dist import parse_worker_address

    try:
        addresses = [parse_worker_address(p) for p in value.split(",") if p.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    if not addresses:
        raise argparse.ArgumentTypeError("--workers needs at least one host:port")
    return addresses


def _fault_plan(value: str) -> FaultPlan:
    """argparse type for ``--faults``: inline JSON, or a path to a JSON
    file, describing ``{"seed": ..., "rules": [{"kind": ..., ...}]}``."""
    try:
        if value.lstrip().startswith("{"):
            payload = json.loads(value)
        else:
            payload = json.loads(Path(value).read_text(encoding="utf-8"))
        return FaultPlan.from_dict(payload)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise argparse.ArgumentTypeError(f"invalid fault plan: {exc}") from None


class _Interrupted(BaseException):
    """Raised by the sweep signal handlers; BaseException so an
    ``except Exception`` in job code cannot swallow the stop request."""

    def __init__(self, signum: int) -> None:
        self.signum = signum
        super().__init__(signal.Signals(signum).name)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Intra-application cache partitioning simulator (IPDPS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--threads", type=int, default=4, help="number of cores/threads")
        p.add_argument("--intervals", type=int, default=50, help="execution intervals")
        p.add_argument(
            "--interval-instructions", type=int, default=20_000,
            help="instructions per thread per interval",
        )
        p.add_argument("--seed", type=int, default=1, help="workload seed")

    def add_exec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-backend", default="fast", choices=("fast", "reference", "batch"),
            help="shared-L2 implementation: fast (vectorized replay kernel, "
            "default), reference (readable per-set model), or batch (cells "
            "sharing a prepared program replay together in one pass); "
            "outputs are byte-identical",
        )
        p.add_argument(
            "--jobs", type=_positive_int, default=1, metavar="N",
            help="worker processes for simulations (>= 1; 1 = serial, default)",
        )
        p.add_argument(
            "--engine", default=None, choices=("serial", "pool", "remote"),
            help="execution engine (default: inferred — remote if --workers "
            "is given, pool if --jobs > 1, else serial)",
        )
        p.add_argument(
            "--workers", default=None, metavar="HOST:PORT[,...]", type=_worker_list,
            help="comma-separated addresses of running `repro worker` "
            "processes to dispatch jobs to (implies --engine remote)",
        )
        p.add_argument(
            "--registrar", default=None, metavar="HOST:PORT",
            help="discover workers from a fleet registrar instead of (or in "
            "addition to) --workers; late joiners are admitted mid-sweep "
            "(implies --engine remote; DESIGN.md §J)",
        )
        p.add_argument(
            "--registry-dir", default=None, metavar="DIR",
            help="discover workers from a file-based registry directory "
            "(single-box fleets; implies --engine remote)",
        )
        p.add_argument(
            "--publish-results", action="store_true",
            help="ask workers advertising the store-publish cap to file "
            "results in their shared store themselves; only the per-cell "
            "summary travels back (sweep aggregates are unchanged)",
        )
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist simulation results in a content-addressed store at DIR",
        )
        p.add_argument(
            "--store-shards", type=_positive_int, default=1, metavar="N",
            help="shard the --cache-dir store across N subdirectories keyed "
            "by result digest (default 1: unsharded)",
        )
        p.add_argument(
            "--prep-dir", default=None, metavar="DIR",
            help="cache prepared programs (traces + compiled L2 streams) as "
            "memory-mappable artifact bundles at DIR, shared across "
            "processes and invocations",
        )
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write telemetry events to PATH (summarize with `repro report`)",
        )
        p.add_argument(
            "--trace-format", default="jsonl", choices=("jsonl", "chrome"),
            help="trace file format: jsonl (default; `repro report` input) or "
            "chrome (trace_event JSON for Perfetto / chrome://tracing)",
        )
        p.add_argument(
            "--faults", default=None, metavar="JSON", type=_fault_plan,
            help="inject deterministic faults (chaos testing): inline JSON or a "
            'file, e.g. \'{"seed": 7, "rules": [{"kind": "job-exception", '
            '"rate": 0.3, "attempts": [1]}]}\'; kinds: delay, job-exception, '
            "worker-death, artifact-corruption",
        )
        p.add_argument(
            "-v", "--verbose", action="store_true",
            help="print execution-engine and result-store counters to stderr",
        )

    p_run = sub.add_parser("run", help="simulate one application under one policy")
    p_run.add_argument("app", help="workload name (see `repro list`)")
    p_run.add_argument(
        "--policy", default="model-based", type=_policy_name,
        choices=sorted(POLICY_REGISTRY),
        help="partitioning policy (aliases: %s)"
        % ", ".join(f"{k}={v}" for k, v in sorted(POLICY_ALIASES.items())),
    )
    p_run.add_argument("--json", action="store_true", help="emit the full result as JSON")
    add_config_args(p_run)
    add_exec_args(p_run)

    p_cmp = sub.add_parser("compare", help="all policies side by side")
    p_cmp.add_argument("apps", nargs="*", help="workloads (default: all nine)")
    add_config_args(p_cmp)
    add_exec_args(p_cmp)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    p_fig.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")
    p_fig.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    add_config_args(p_fig)
    add_exec_args(p_fig)

    p_sw = sub.add_parser(
        "sweep", help="fan a grid of apps x policies x seeds x thread-counts out"
    )
    p_sw.add_argument(
        "--apps", nargs="+", default=None, metavar="APP",
        help="workloads to sweep (default: all)",
    )
    p_sw.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        type=_policy_name, choices=sorted(POLICY_REGISTRY),
        help="policies to sweep (default: shared, static-equal, throughput, model-based)",
    )
    p_sw.add_argument(
        "--seeds", nargs="+", type=int, default=[1], metavar="SEED",
        help="workload seeds to sweep",
    )
    p_sw.add_argument(
        "--thread-counts", nargs="+", type=int, default=[4], metavar="N",
        help="core/thread counts to sweep",
    )
    p_sw.add_argument(
        "--baseline", default=None,
        help="policy speedups are measured against (default: shared if swept)",
    )
    p_sw.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal every completed cell to PATH (append-only JSONL, fsynced "
        "per cell) so a crashed or interrupted sweep can be resumed",
    )
    p_sw.add_argument(
        "--resume", action="store_true",
        help="resume from --journal: restore cells it records as completed and "
        "fan out only the remainder (requires --journal)",
    )
    p_sw.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    p_sw.add_argument("--intervals", type=int, default=50, help="execution intervals")
    p_sw.add_argument(
        "--interval-instructions", type=int, default=20_000,
        help="instructions per thread per interval",
    )
    add_exec_args(p_sw)

    def _validate_sweep(args: argparse.Namespace) -> None:
        # Cross-argument checks argparse cannot express declaratively,
        # surfaced with usage + exit 2 like any other argument error.
        if args.resume and not args.journal:
            p_sw.error("--resume requires --journal PATH to resume from")
        if args.journal and Path(args.journal).is_dir():
            p_sw.error(
                f"--journal {args.journal!r} is a directory; pass a file path "
                "(the journal is one JSONL file per sweep)"
            )
        if args.resume and args.journal and Path(args.journal).is_file():
            # A resume against a foreign journal must fail *here* — before
            # the engine, pool workers or stores are constructed — with the
            # same field-path style a spec validation error would use.
            from repro.exec.journal import SweepJournal

            try:
                grid = SweepGrid.build(
                    apps=args.apps,
                    policies=args.policies,
                    seeds=args.seeds,
                    thread_counts=args.thread_counts,
                    baseline=args.baseline,
                    intervals=args.intervals,
                    interval_instructions=args.interval_instructions,
                    cache_backend=args.cache_backend,
                    path="sweep",
                )
            except GridError as exc:
                p_sw.error(str(exc))
            header, _, _ = SweepJournal.load(args.journal)
            if header is None:
                p_sw.error(
                    f"sweep.resume: {args.journal!r} is not a sweep journal (no header)"
                )
            if header.get("grid_digest") != grid.digest:
                p_sw.error(
                    f"sweep.resume: journal {args.journal!r} was written by a "
                    f"different sweep grid "
                    f"(journal {str(header.get('grid_digest'))[:12]}…, these "
                    f"flags {grid.digest[:12]}…); pass the grid the journal was "
                    "started with, or drop --resume to restart it"
                )

    p_sw.set_defaults(_validate=_validate_sweep)

    p_rs = sub.add_parser(
        "run-spec",
        help="execute a YAML/JSON experiment spec (specs/*.yaml; DESIGN.md §H)",
    )
    p_rs.add_argument(
        "spec", help="path to the spec file (.yaml/.yml needs PyYAML; .json always works)"
    )
    p_rs.add_argument(
        "--smoke", action="store_true",
        help="shrink the spec to a seconds-scale probe (first value of every "
        "grid axis, capped intervals) — exercises the same pipeline",
    )
    p_rs.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="override the spec's store_dir (results are filed here)",
    )
    p_rs.add_argument(
        "--prep-dir", default=None, metavar="DIR",
        help="override the spec's prep_dir (prepared-program cache)",
    )
    p_rs.add_argument(
        "--journal", default=None, metavar="PATH",
        help="override the spec's journal path",
    )
    p_rs.add_argument(
        "--no-expectations", action="store_true",
        help="run the sweep but skip the spec's expectations block",
    )
    p_rs.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write telemetry events to PATH (summarize with `repro report`)",
    )
    p_rs.add_argument(
        "--trace-format", default="jsonl", choices=("jsonl", "chrome"),
        help="trace file format: jsonl (default) or chrome",
    )
    p_rs.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    p_rs.add_argument(
        "-v", "--verbose", action="store_true",
        help="print execution counters and the resolved grid to stderr",
    )

    p_cr = sub.add_parser(
        "compare-runs",
        help="diff two sweep result stores cell by cell (DESIGN.md §H)",
    )
    p_cr.add_argument("store_a", help="reference result store (a --cache-dir of a past run)")
    p_cr.add_argument("store_b", help="candidate result store to compare against it")
    p_cr.add_argument(
        "--spec", default=None, metavar="FILE",
        help="scope the diff to this spec's grid cells and apply its "
        "expectations.tolerances (default: compare every cell both stores hold)",
    )
    p_cr.add_argument(
        "--tolerance", action="append", default=[], metavar="METRIC=REL",
        help="max relative delta per metric before a cell counts as changed, "
        "e.g. --tolerance total_cycles=0.01 (repeatable; overrides the spec)",
    )
    p_cr.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")

    p_srv = sub.add_parser(
        "serve", help="run the sweep service (HTTP on localhost; DESIGN.md §F)"
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address (default localhost)")
    p_srv.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    p_srv.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening (for scripts; "
        "pairs with --port 0)",
    )
    p_srv.add_argument(
        "--data-dir", default="serve-data", metavar="DIR",
        help="service state root: journals/ for crash-resumable sweeps, "
        "store/ for the shared result cache (default ./serve-data)",
    )
    p_srv.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for simulations (>= 1; 1 = serial, default)",
    )
    p_srv.add_argument(
        "--engine", default=None, choices=("serial", "pool", "remote"),
        help="execution engine (default: inferred — remote if --workers "
        "is given, pool if --jobs > 1, else serial)",
    )
    p_srv.add_argument(
        "--workers", default=None, metavar="HOST:PORT[,...]", type=_worker_list,
        help="comma-separated `repro worker` addresses: the service "
        "executes cells on a remote fleet (implies --engine remote)",
    )
    p_srv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store location (default: <data-dir>/store)",
    )
    p_srv.add_argument(
        "--prep-dir", default=None, metavar="DIR",
        help="prepared-program artifact cache shared with batch commands",
    )
    p_srv.add_argument(
        "--max-pending-cells", type=_positive_int, default=512, metavar="N",
        help="admission bound on queued+executing cells (default 512); "
        "submissions that would exceed it get 429 + Retry-After",
    )
    p_srv.add_argument(
        "--max-active-sweeps", type=_positive_int, default=64, metavar="N",
        help="global cap on concurrently running sweeps (default 64)",
    )
    p_srv.add_argument(
        "--max-sweeps-per-client", type=_positive_int, default=8, metavar="N",
        help="per-client concurrent sweep quota (default 8)",
    )
    p_srv.add_argument(
        "--batch-size", type=_positive_int, default=None, metavar="N",
        help="cells per engine batch (default: 2 x jobs; smaller batches "
        "drain faster on shutdown)",
    )
    p_srv.add_argument(
        "--retain", type=_positive_int, default=64, metavar="N",
        help="finished sweeps kept in memory for attach/replay (default 64; "
        "older sweeps fall back to their on-disk journals)",
    )
    p_srv.add_argument(
        "--registrar-port", type=int, default=None, metavar="PORT",
        help="host a fleet registrar on PORT (0 picks a free port): workers "
        "announce themselves and the service dispatches to the discovered "
        "fleet, admitting late joiners mid-sweep (DESIGN.md §J)",
    )
    p_srv.add_argument(
        "--registrar-port-file", default=None, metavar="PATH",
        help="write the registrar's bound port to PATH (pairs with "
        "--registrar-port 0)",
    )
    p_srv.add_argument(
        "--fleet-min", type=int, default=0, metavar="N",
        help="autoscaler floor: keep at least N subprocess workers (default 0)",
    )
    p_srv.add_argument(
        "--fleet-max", type=int, default=0, metavar="N",
        help="autoscaler ceiling: scale up to N subprocess workers on "
        "sustained backlog, down again with hysteresis (default 0: "
        "autoscaling off)",
    )
    p_srv.add_argument(
        "--fleet-poll", type=float, default=1.0, metavar="S",
        help="autoscaler poll interval in seconds (default 1.0)",
    )
    p_srv.add_argument(
        "--store-shards", type=_positive_int, default=1, metavar="N",
        help="shard the result store across N subdirectories keyed by "
        "result digest (default 1: unsharded)",
    )

    p_reg = sub.add_parser(
        "registrar", help="run a standalone fleet registrar (DESIGN.md §J)"
    )
    p_reg.add_argument("--host", default="127.0.0.1", help="bind address (default localhost)")
    p_reg.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    p_reg.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening (for scripts)",
    )
    p_reg.add_argument(
        "--probe-interval", type=float, default=2.0, metavar="S",
        help="liveness sweep interval in seconds (default 2.0; 0 disables "
        "the sweeper — members are only evicted on deregister)",
    )

    p_sub = sub.add_parser(
        "submit", help="submit a sweep grid to a running `repro serve` and wait"
    )
    p_sub.add_argument(
        "--server", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="HOST:PORT",
        help=f"service endpoint (default 127.0.0.1:{DEFAULT_PORT})",
    )
    p_sub.add_argument(
        "--client", default=None, metavar="NAME",
        help="client name for quotas/attribution (default: user@host)",
    )
    p_sub.add_argument(
        "--spec", default=None, metavar="FILE",
        help="take the whole grid from an experiment spec file; the grid "
        "flags below are ignored when this is given (DESIGN.md §H)",
    )
    p_sub.add_argument(
        "--apps", nargs="+", default=None, metavar="APP",
        help="workloads to sweep (default: all)",
    )
    p_sub.add_argument(
        "--policies", nargs="+", default=None, metavar="POLICY",
        type=_policy_name, choices=sorted(POLICY_REGISTRY),
        help="policies to sweep (default: shared, static-equal, throughput, model-based)",
    )
    p_sub.add_argument(
        "--seeds", nargs="+", type=int, default=[1], metavar="SEED",
        help="workload seeds to sweep",
    )
    p_sub.add_argument(
        "--thread-counts", nargs="+", type=int, default=[4], metavar="N",
        help="core/thread counts to sweep",
    )
    p_sub.add_argument(
        "--baseline", default=None,
        help="policy speedups are measured against (default: shared if swept)",
    )
    p_sub.add_argument("--intervals", type=int, default=50, help="execution intervals")
    p_sub.add_argument(
        "--interval-instructions", type=int, default=20_000,
        help="instructions per thread per interval",
    )
    p_sub.add_argument(
        "--cache-backend", default="fast", choices=("fast", "reference", "batch"),
        help="shared-L2 implementation (must match other submitters for "
        "coalescing: the backend is part of the cell identity)",
    )
    p_sub.add_argument(
        "--no-resume", action="store_true",
        help="start the sweep fresh even if the service holds a resumable "
        "journal for this grid",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="per-request socket timeout in seconds (default 600)",
    )
    p_sub.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    p_sub.add_argument(
        "-v", "--verbose", action="store_true",
        help="print the live event stream to stderr while waiting",
    )

    p_wk = sub.add_parser(
        "worker", help="run a distributed-sweep worker (DESIGN.md §G)"
    )
    p_wk.add_argument("--host", default="127.0.0.1", help="bind address (default localhost)")
    p_wk.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    p_wk.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH once listening (for scripts; "
        "pairs with --port 0)",
    )
    p_wk.add_argument(
        "--worker-id", default=None, metavar="NAME",
        help="name reported to coordinators (default host-pid)",
    )
    p_wk.add_argument(
        "--prep-dir", default=None, metavar="DIR",
        help="local prepared-program cache; misses are fetched from the "
        "coordinator over the job connection and verified by content hash",
    )
    p_wk.add_argument(
        "--registrar", default=None, metavar="HOST:PORT",
        help="announce this worker to a fleet registrar on start and "
        "withdraw on exit, so coordinators discover it (DESIGN.md §J)",
    )
    p_wk.add_argument(
        "--registry-dir", default=None, metavar="DIR",
        help="announce this worker in a file-based registry directory "
        "(single-box discovery)",
    )
    p_wk.add_argument(
        "--store-proxy", default=None, metavar="HOST:PORT",
        help="publish successful results directly to a store proxy server; "
        "advertised as the store-publish cap, used when the coordinator "
        "asks (it then stops relaying result bytes)",
    )
    p_wk.add_argument(
        "--ping", default=None, metavar="HOST:PORT",
        help="probe a running worker (handshake + ping) and exit: 0 alive, "
        "1 unreachable or incompatible",
    )

    p_rep = sub.add_parser("report", help="summarize a JSONL trace written by --trace")
    p_rep.add_argument("trace", help="path to a .jsonl trace file")
    p_rep.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="how many slowest jobs to list (default 5)",
    )

    sub.add_parser("list", help="list workloads, policies and experiments")
    return parser


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.default().with_(
        n_threads=args.threads,
        n_intervals=args.intervals,
        interval_instructions=args.interval_instructions,
        seed=args.seed,
        cache_backend=args.cache_backend,
    )


def _setup_execution(args: argparse.Namespace) -> str | None:
    """Install the engine/store/fault-plan selected by ``--jobs`` /
    ``--engine`` / ``--workers`` / ``--cache-dir`` / ``--prep-dir`` /
    ``--faults``.  Returns an error message instead of raising (main
    turns it into usage exit 2)."""
    set_fault_plan(args.faults)  # before the engine: pool workers inherit it
    registrar = getattr(args, "registrar", None)
    registry_dir = getattr(args, "registry_dir", None)
    discovery = registrar or registry_dir
    engine_name = args.engine or (
        "remote"
        if (args.workers or discovery)
        else "pool" if args.jobs > 1 else "serial"
    )
    if engine_name == "remote":
        if not args.workers and not discovery:
            return (
                "--engine remote requires --workers HOST:PORT[,...], "
                "--registrar HOST:PORT or --registry-dir DIR"
            )
        from repro.dist import RemoteEngine

        membership = None
        if registrar:
            from repro.fleet import RegistrarClient

            membership = RegistrarClient(registrar)
        elif registry_dir:
            from repro.fleet import FileRegistry

            membership = FileRegistry(registry_dir)
        engine = RemoteEngine(
            args.workers or (),
            membership=membership,
            publish_results=getattr(args, "publish_results", False),
        )
    elif engine_name == "pool":
        engine = ProcessPoolEngine(args.jobs)
    else:
        engine = SerialEngine()
    store = None
    if args.cache_dir:
        shards = getattr(args, "store_shards", 1)
        if shards > 1:
            from repro.exec.backend import ShardedBackend

            store = ResultStore(
                args.cache_dir, backend=ShardedBackend.local(args.cache_dir, shards)
            )
        else:
            store = ResultStore(args.cache_dir)
    configure(engine=engine, store=store)
    configure_prep(args.prep_dir)
    reset_execution_stats()
    return None


def _report_execution(args: argparse.Namespace) -> None:
    """One stderr line of counters, so a warm-cache run can be *verified*
    to have simulated nothing (``simulated=0``)."""
    if not args.verbose:
        return
    stats = execution_stats()
    from repro.experiments.runner import current_engine

    line = (
        f"exec: engine={current_engine().name} jobs={args.jobs} "
        f"simulated={stats['simulated']} memo-hits={stats['memo_hits']} "
        f"store-hits={stats['store_hits']}"
    )
    if "store" in stats:
        s = stats["store"]
        line += (
            f" store-misses={s['misses']} store-writes={s['writes']}"
            f" store-corrupt={s['corrupt']}"
        )
        if s.get("stale_swept"):
            line += f" store-stale-swept={s['stale_swept']}"
    line += _prep_suffix()
    line += _batch_suffix()
    line += _crash_suffix()
    print(line, file=sys.stderr)


def _batch_suffix() -> str:
    """`` batches=... batch-lanes=... ...`` fragment for verbose lines —
    only the batch counters that are non-zero, so non-batched runs stay
    one short line."""
    counters = METRICS.snapshot().get("counters", {})
    parts = []
    for counter, label in (
        ("batch.batches", "batches"),
        ("batch.lanes", "batch-lanes"),
        ("batch.fallback", "batch-fallback"),
        ("batch.fallback_pure", "batch-fallback-pure"),
        ("batch.failed", "batch-failed"),
    ):
        value = counters.get(counter, 0)
        if value:
            parts.append(f" {label}={value}")
    return "".join(parts)


def _prep_suffix() -> str:
    """`` prep-hits=... ...`` fragment for verbose lines (empty when no
    prep store is configured)."""
    prep = get_prep_store()
    if prep is None:
        return ""
    p = prep.stats()
    out = (
        f" prep-hits={p['hits']} prep-misses={p['misses']}"
        f" prep-writes={p['writes']} prep-corrupt={p['corrupt']}"
    )
    if p.get("stale_swept"):
        out += f" prep-stale-swept={p['stale_swept']}"
    return out


def _crash_suffix() -> str:
    """`` degraded-to-serial=... faults-injected=...`` fragment for verbose
    lines — only the counters that are non-zero, so the common healthy
    run stays one short line."""
    counters = METRICS.snapshot().get("counters", {})
    parts = []
    degraded = counters.get("exec.degraded_to_serial", 0)
    if degraded:
        parts.append(f" degraded-to-serial={degraded}")
    faults = sum(v for k, v in counters.items() if k.startswith("faults.injected."))
    if faults:
        parts.append(f" faults-injected={faults}")
    return "".join(parts)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    validate = getattr(args, "_validate", None)
    if validate is not None:
        try:
            validate(args)
        except SystemExit as exc:  # parser.error(); keep main() returning an int
            return int(exc.code or 0)

    if args.command == "serve":
        return _serve_command(args)

    if args.command == "submit":
        return _submit_command(args)

    if args.command == "worker":
        return _worker_command(args)

    if args.command == "registrar":
        return _registrar_command(args)

    if args.command == "run-spec":
        return _trace_wrapped(args, lambda: _run_spec_command(args))

    if args.command == "compare-runs":
        return _compare_runs_command(args)

    if args.command == "list":
        print("workloads:  " + ", ".join(list_workloads()))
        print("policies:   " + ", ".join(sorted(POLICY_REGISTRY)))
        print("experiments:" + " " + ", ".join(EXPERIMENTS))
        return 0

    if args.command == "report":
        try:
            records = read_events(args.trace)
        except (OSError, ValueError) as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        print(summarize(records, top=args.top))
        return 0

    setup_error = _setup_execution(args)
    if setup_error is not None:
        print(f"{args.command}: {setup_error}", file=sys.stderr)
        return 2

    return _trace_wrapped(args, lambda: _dispatch(args))


def _trace_wrapped(args: argparse.Namespace, fn) -> int:
    """Run ``fn`` under the ``--trace`` tracer when one was requested.

    Chrome traces need the full event list to assemble counter tracks, so
    they buffer in memory; JSONL streams to disk as events happen.
    """
    if not args.trace:
        return fn()
    tracer = JsonlTracer(args.trace) if args.trace_format == "jsonl" else RecordingTracer()
    previous = set_tracer(tracer)
    try:
        return fn()
    finally:
        tracer.emit(MetricsEvent(snapshot=METRICS.snapshot()))
        tracer.close()
        if args.trace_format == "chrome":
            write_chrome_trace(args.trace, tracer.records)
        set_tracer(previous)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        if args.app not in list_workloads():
            print(
                f"unknown workload {args.app!r}; known: {', '.join(list_workloads())}",
                file=sys.stderr,
            )
            return 2
        config = _config(args)
        if args.trace:
            # A traced run must actually simulate — memo/store hits would
            # replay a stored RunResult and emit no interval events — so it
            # bypasses the lookup layers and drives the simulator directly
            # (the engines pick the tracer up from the process-wide slot).
            from repro.sim.driver import run_application

            result = run_application(args.app, args.policy, config)
        else:
            result = get_result(args.app, args.policy, config)
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2)
            print()
            _report_execution(args)
            return 0
        rows = [
            [f"thread {t}", f"{result.thread_cpi(t):.2f}", result.l2_totals.misses[t],
             f"{result.thread_stall_cycles[t] / result.total_cycles:.1%}"]
            for t in range(result.n_threads)
        ]
        print(format_table(
            ["thread", "busy CPI", "L2 misses", "slack"],
            rows,
            title=f"{args.app} under {args.policy}: {result.total_cycles / 1e6:.2f}M cycles",
        ))
        final = result.intervals[-1].observation if result.intervals else None
        if final is not None:
            print(f"\nfinal way partition: {list(final.targets)}")
        _report_execution(args)
        return 0

    if args.command == "compare":
        config = _config(args)
        apps = args.apps or list_workloads()
        unknown = [a for a in apps if a not in list_workloads()]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 2
        print(speedup_table(config, apps))
        _report_execution(args)
        return 0

    if args.command == "figure":
        config = _config(args)
        if args.name == "fig22" and config.n_threads < 8:
            config = config.with_(n_threads=8)
        result = EXPERIMENTS[args.name](config)
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2)
            print()
        else:
            print(result.format())
        _report_execution(args)
        return 0

    if args.command == "sweep":
        return _sweep_command(args)

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def _sweep_command(args: argparse.Namespace) -> int:
    apps = args.apps or list_workloads()
    unknown = [a for a in apps if a not in list_workloads()]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    policies = args.policies or list(DEFAULT_POLICIES)
    baseline = args.baseline
    if baseline is not None and baseline not in policies:
        print(
            f"baseline {baseline!r} is not among the swept policies: "
            f"{', '.join(policies)}",
            file=sys.stderr,
        )
        return 2
    config = SystemConfig.default().with_(
        n_intervals=args.intervals,
        interval_instructions=args.interval_instructions,
        cache_backend=args.cache_backend,
    )
    from repro.experiments.runner import current_engine, current_store

    # Interrupt protocol: SIGINT/SIGTERM stop the sweep *cleanly* — the
    # journal already holds every completed cell (flushed per append), so
    # the handlers only have to drain the warm pool, sweep staged temp
    # dirs, and exit 130 leaving the journal ready for --resume.
    def _stop(signum, frame):
        raise _Interrupted(signum)

    try:
        old_int = signal.signal(signal.SIGINT, _stop)
        old_term = signal.signal(signal.SIGTERM, _stop)
    except ValueError:  # pragma: no cover — not in the main thread
        old_int = old_term = None
    try:
        result = run_sweep(
            apps,
            policies,
            seeds=args.seeds,
            thread_counts=args.thread_counts,
            config=config,
            engine=current_engine(),
            store=current_store(),
            baseline=baseline,
            journal=args.journal,
            resume=args.resume,
        )
    except JournalMismatchError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    except (_Interrupted, KeyboardInterrupt) as exc:
        signame = exc.args[0] if isinstance(exc, _Interrupted) else "SIGINT"
        return _interrupted_sweep(args, signame)
    finally:
        if old_int is not None:
            signal.signal(signal.SIGINT, old_int)
            signal.signal(signal.SIGTERM, old_term)

    if args.json:
        json.dump(result.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(result.format())
    if args.verbose:
        # The sweep drives the engine/store itself, so report its own
        # counters rather than the runner-module ones.
        line = (
            f"exec: engine={result.engine} jobs={args.jobs} "
            f"simulated={result.simulated} store-hits={result.store_hits} "
            f"resumed={result.resumed}"
        )
        if result.store_stats is not None:
            s = result.store_stats
            line += (
                f" store-misses={s['misses']} store-writes={s['writes']}"
                f" store-corrupt={s['corrupt']}"
            )
            if s.get("stale_swept"):
                line += f" store-stale-swept={s['stale_swept']}"
        line += _prep_suffix()
        line += _batch_suffix()
        line += _crash_suffix()
        print(line, file=sys.stderr)
    return 0 if not result.failures else 1


def _run_spec_command(args: argparse.Namespace) -> int:
    """``repro run-spec``: execute a checked-in experiment spec.

    Exit codes: 0 ok, 1 failed cells or unmet expectations, 2 invalid
    spec / journal mismatch (usage-class errors).
    """
    from repro.spec import SpecError, check_expectations, load_spec, run_experiment

    try:
        spec = load_spec(args.spec)
    except SpecError as exc:
        for problem in exc.problems:
            print(f"run-spec: {problem}", file=sys.stderr)
        return 2
    if args.verbose:
        grid = spec.grid
        print(
            f"run-spec: {spec.name or Path(args.spec).stem} — {grid.n_cells} cells "
            f"({len(grid.apps)} apps x {len(grid.policies)} policies x "
            f"{len(grid.seeds)} seeds x {len(grid.thread_counts)} thread-counts), "
            f"engine={spec.engine.resolved_kind()} digest={grid.digest[:12]}",
            file=sys.stderr,
        )
    try:
        result = run_experiment(
            spec,
            smoke=args.smoke,
            store_dir=args.cache_dir,
            prep_dir=args.prep_dir,
            journal_path=args.journal,
        )
    except JournalMismatchError as exc:
        print(f"run-spec: {exc}", file=sys.stderr)
        return 2
    violations = [] if args.no_expectations else check_expectations(spec, result)
    if args.json:
        payload = result.to_dict()
        payload["spec"] = {"source": spec.source, "name": spec.name}
        payload["expectation_violations"] = violations
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(result.format())
    for violation in violations:
        print(f"run-spec: expectation not met — {violation}", file=sys.stderr)
    return 1 if result.failures or violations else 0


def _metric_tolerances(args: argparse.Namespace, spec) -> dict | None:
    """Merge ``--tolerance METRIC=REL`` flags over the spec's tolerances
    block.  Returns None (and prints) on a malformed flag."""
    from repro.spec.compare import METRIC_NAMES

    tolerances = dict(spec.expectations.tolerances) if spec is not None else {}
    for item in args.tolerance:
        metric, sep, value = item.partition("=")
        try:
            if not sep or metric not in METRIC_NAMES:
                raise ValueError
            tolerances[metric] = float(value)
            if tolerances[metric] < 0:
                raise ValueError
        except ValueError:
            print(
                f"compare-runs: --tolerance must be METRIC=REL with METRIC one of "
                f"{', '.join(METRIC_NAMES)} and REL a number >= 0, got {item!r}",
                file=sys.stderr,
            )
            return None
    return tolerances


def _compare_runs_command(args: argparse.Namespace) -> int:
    """``repro compare-runs``: the continuous-benchmarking gate.

    Exit codes: 0 clean, 1 regression (a changed or removed cell),
    2 usage/spec errors, 4 incomparable stores.
    """
    from repro.spec import SpecError, compare_runs, load_spec

    spec = None
    if args.spec is not None:
        try:
            spec = load_spec(args.spec)
        except SpecError as exc:
            for problem in exc.problems:
                print(f"compare-runs: {problem}", file=sys.stderr)
            return 2
    tolerances = _metric_tolerances(args, spec)
    if tolerances is None:
        return 2
    comparison = compare_runs(
        args.store_a,
        args.store_b,
        grid=spec.grid if spec is not None else None,
        tolerances=tolerances,
    )
    if args.json:
        json.dump(comparison.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(comparison.format())
    return comparison.exit_code


def _serve_command(args: argparse.Namespace) -> int:
    from repro.serve.runner import ServeSettings, run_server

    fleet_on = args.registrar_port is not None or args.fleet_max > 0
    if args.engine == "remote" and not args.workers and not fleet_on:
        print(
            "serve: --engine remote requires --workers HOST:PORT[,...] "
            "or --registrar-port PORT",
            file=sys.stderr,
        )
        return 2
    if args.fleet_min > args.fleet_max > 0 or (args.fleet_max > 0 and args.fleet_min < 0):
        print("serve: need 0 <= --fleet-min <= --fleet-max", file=sys.stderr)
        return 2
    settings = ServeSettings(
        host=args.host,
        port=args.port,
        data_dir=Path(args.data_dir),
        jobs=args.jobs,
        engine=args.engine,
        workers=args.workers,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        prep_dir=Path(args.prep_dir) if args.prep_dir else None,
        max_pending_cells=args.max_pending_cells,
        max_active_sweeps=args.max_active_sweeps,
        max_sweeps_per_client=args.max_sweeps_per_client,
        batch_size=args.batch_size,
        retain=args.retain,
        port_file=Path(args.port_file) if args.port_file else None,
        registrar_port=args.registrar_port,
        registrar_port_file=(
            Path(args.registrar_port_file) if args.registrar_port_file else None
        ),
        fleet_min=args.fleet_min,
        fleet_max=args.fleet_max,
        fleet_poll_s=args.fleet_poll,
        store_shards=args.store_shards,
    )
    try:
        return run_server(settings)
    except OSError as exc:  # port in use, bad bind address, ...
        print(f"serve: {exc}", file=sys.stderr)
        return 1


def _worker_command(args: argparse.Namespace) -> int:
    """``repro worker``: serve jobs until a signal, or probe via --ping."""
    from repro.dist import HandshakeError, WorkerServer, parse_worker_address, ping_worker

    if args.ping:
        try:
            address = parse_worker_address(args.ping)
        except ValueError as exc:
            print(f"worker: {exc}", file=sys.stderr)
            return 2
        try:
            info = ping_worker(address)
        except HandshakeError as exc:
            print(f"worker: {args.ping} is incompatible: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"worker: {args.ping} is unreachable: {exc}", file=sys.stderr)
            return 1
        print(
            f"worker: {args.ping} alive — {info['worker']} "
            f"pid={info['pid']} version={info['version']}"
        )
        return 0

    configure_prep(args.prep_dir)
    publish_store = None
    if args.store_proxy:
        from repro.dist.storeproxy import ProxyBackend

        try:
            proxy_address = parse_worker_address(args.store_proxy)
        except ValueError as exc:
            print(f"worker: {exc}", file=sys.stderr)
            return 2
        publish_store = ResultStore("store-proxy", backend=ProxyBackend(proxy_address))
    try:
        server = WorkerServer(
            args.host,
            args.port,
            worker_id=args.worker_id,
            exit_on_vanish=True,  # a real worker process dies for real
            install_prep_fetcher=True,
            publish_store=publish_store,
        )
    except OSError as exc:  # port in use, bad bind address, ...
        print(f"worker: {exc}", file=sys.stderr)
        return 1
    host, port = server.address
    if args.port_file:
        port_file = Path(args.port_file)
        port_file.parent.mkdir(parents=True, exist_ok=True)
        port_file.write_text(f"{port}\n", encoding="utf-8")
    print(f"worker: {server.worker_id} listening on {host}:{port}", flush=True)

    withdrawals = []
    if args.registrar:
        from repro.fleet import RegistrarClient

        try:
            client = RegistrarClient(parse_worker_address(args.registrar))
        except ValueError as exc:
            print(f"worker: {exc}", file=sys.stderr)
            server.stop()
            return 2
        error = None
        for _attempt in range(5):  # the registrar may still be binding
            try:
                client.register(
                    server.address,
                    worker_id=server.worker_id,
                    pid=os.getpid(),
                    caps=server.caps(),
                )
                error = None
                break
            except OSError as exc:
                error = exc
                time.sleep(0.5)
        if error is not None:
            print(f"worker: cannot reach registrar {args.registrar}: {error}", file=sys.stderr)
            server.stop()
            return 1
        withdrawals.append(lambda: client.deregister(server.address))
        print(f"worker: registered with {args.registrar}", flush=True)
    if args.registry_dir:
        from repro.fleet import FileRegistry

        registry = FileRegistry(args.registry_dir)
        registry.announce(
            server.address,
            worker_id=server.worker_id,
            pid=os.getpid(),
            caps=server.caps(),
        )
        withdrawals.append(lambda: registry.withdraw(server.address))
        print(f"worker: announced in {args.registry_dir}", flush=True)

    def _withdraw() -> None:
        for withdraw in withdrawals:
            try:
                withdraw()
            except Exception:
                pass  # best effort: liveness sweeps clean up after us

    def _stop(signum, frame):
        raise _Interrupted(signum)

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except (_Interrupted, KeyboardInterrupt) as exc:
        signame = exc.args[0] if isinstance(exc, _Interrupted) else "SIGINT"
        _withdraw()
        server.stop()
        print(
            f"worker: stopped by {signame} after {server.jobs_run} job(s)",
            file=sys.stderr,
        )
    else:
        _withdraw()
    return 0


def _registrar_command(args: argparse.Namespace) -> int:
    """``repro registrar``: standalone worker-discovery endpoint."""
    from repro.fleet import FleetRegistrar

    try:
        registrar = FleetRegistrar(
            args.host, args.port, probe_interval_s=args.probe_interval
        ).start()
    except OSError as exc:  # port in use, bad bind address, ...
        print(f"registrar: {exc}", file=sys.stderr)
        return 1
    host, port = registrar.address
    if args.port_file:
        port_file = Path(args.port_file)
        port_file.parent.mkdir(parents=True, exist_ok=True)
        port_file.write_text(f"{port}\n", encoding="utf-8")
    print(f"registrar: listening on {host}:{port}", flush=True)

    def _stop(signum, frame):
        raise _Interrupted(signum)

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)
    try:
        while True:
            time.sleep(3600)
    except (_Interrupted, KeyboardInterrupt) as exc:
        signame = exc.args[0] if isinstance(exc, _Interrupted) else "SIGINT"
        registrar.stop()
        print(
            f"registrar: stopped by {signame} with {len(registrar)} member(s), "
            f"{registrar.registered} registration(s), {registrar.evicted} eviction(s)",
            file=sys.stderr,
        )
    return 0


def _default_client_name() -> str:
    import getpass
    import socket

    try:
        user = getpass.getuser()
    except (KeyError, OSError):  # no passwd entry (containers)
        user = "unknown"
    return f"{user}@{socket.gethostname()}"


def _submit_command(args: argparse.Namespace) -> int:
    from repro.serve.client import Backpressure, ServeClient, ServeError

    host, _, port = args.server.rpartition(":")
    if not host or not port.isdigit():
        print(f"submit: --server must be HOST:PORT, got {args.server!r}", file=sys.stderr)
        return 2
    client = ServeClient(host, int(port), timeout=args.timeout)
    if args.spec is not None:
        from repro.spec import SpecError, load_spec

        try:
            grid = load_spec(args.spec).grid
        except SpecError as exc:
            for problem in exc.problems:
                print(f"submit: {problem}", file=sys.stderr)
            return 2
        request = {
            **grid.to_dict(),
            "client": args.client or _default_client_name(),
            "resume": not args.no_resume,
        }
    else:
        request = {
            "apps": args.apps or list_workloads(),
            "policies": args.policies or list(DEFAULT_POLICIES),
            "seeds": args.seeds,
            "thread_counts": args.thread_counts,
            "intervals": args.intervals,
            "interval_instructions": args.interval_instructions,
            "cache_backend": args.cache_backend,
            "client": args.client or _default_client_name(),
            "resume": not args.no_resume,
        }
        if args.baseline is not None:
            request["baseline"] = args.baseline
    try:
        submission = client.submit(request)
        sweep_id = submission["sweep_id"]
        if args.verbose:
            verb = "attached to" if submission.get("attached") else "submitted"
            print(
                f"submit: {verb} sweep {sweep_id[:12]} "
                f"({submission['total_cells']} cells; "
                f"resumed={submission.get('resumed', 0)} "
                f"store={submission.get('store_hits', 0)} "
                f"coalesced={submission.get('coalesced', 0)} "
                f"scheduled={submission.get('scheduled', 0)})",
                file=sys.stderr,
            )
            for event in client.events(sweep_id):
                if event.get("event") == "cell":
                    print(
                        f"submit: [{event['completed']}/{event['total']}] "
                        f"{event['app']}/{event['policy']} seed={event['seed']} "
                        f"t={event['n_threads']} source={event['source']}"
                        + ("" if event["ok"] else f" ERROR: {event['error']}"),
                        file=sys.stderr,
                    )
        final = client.wait(sweep_id)
    except Backpressure as exc:
        print(
            f"submit: service is at capacity ({exc}); retry in "
            f"{exc.retry_after_s:.0f}s",
            file=sys.stderr,
        )
        return 3
    except ServeError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, TimeoutError, OSError) as exc:
        print(
            f"submit: cannot reach service at {args.server}: {exc} "
            "(is `repro serve` running?)",
            file=sys.stderr,
        )
        return 1

    status = final.get("status")
    if args.json:
        json.dump(final, sys.stdout, indent=2)
        print()
    elif status == "done":
        result = final.get("result", {})
        print(_format_submit_result(final, result))
    else:
        print(f"submit: sweep {final['sweep_id'][:12]} ended with status {status!r}")
    if status != "done":
        return 1
    return 0 if not final.get("failures") else 1


def _format_submit_result(final: dict, result: dict) -> str:
    """Human summary of a completed service sweep (mirrors the tail of
    ``SweepResult.format()`` without needing the cells client-side)."""
    lines = [
        f"sweep {final['sweep_id'][:12]}: {final['completed']}/{final['total_cells']} "
        f"cells in {final['wall_s']:.2f}s "
        f"(executed={final['executed']} store={final['store_hits']} "
        f"coalesced={final['coalesced']} resumed={final['resumed']})",
    ]
    speedups = result.get("mean_speedups") or {}
    baseline = result.get("baseline")
    if speedups:
        lines.append(f"mean speedup over {baseline}:")
        for policy, per_app in sorted(speedups.items()):
            apps = " ".join(f"{app}={val:+.1%}" for app, val in sorted(per_app.items()))
            lines.append(f"  {policy:<18} {apps}")
    if final.get("failures"):
        lines.append(f"failures: {final['failures']}")
    return "\n".join(lines)


def _interrupted_sweep(args: argparse.Namespace, signame: str) -> int:
    """Clean stop: drain the pool, sweep staged dirs, report, exit 130."""
    from repro.exec.journal import SweepJournal
    from repro.experiments.runner import current_engine, current_store

    engine = current_engine()
    if hasattr(engine, "close"):
        engine.close()  # drain the warm pool (workers exit, nothing leaks)
    # Our own writers are stopped, so staged temp dirs younger than any
    # TTL are still orphans — sweep them with ttl 0.
    for store in (current_store(), get_prep_store()):
        if store is not None:
            store.sweep_stale(0.0)
    completed = 0
    if args.journal and Path(args.journal).is_file():
        _, entries, _ = SweepJournal.load(args.journal)
        completed = sum(1 for e in entries.values() if e.ok)
    METRICS.counter("exec.interrupted").inc()
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(InterruptEvent(signal=signame, completed=completed))
    hint = (
        f"; {completed} completed cell(s) journaled — resume with --resume"
        if args.journal
        else " (no --journal: completed cells in this run are lost)"
    )
    print(f"sweep: interrupted by {signame}{hint}", file=sys.stderr)
    return 130


if __name__ == "__main__":
    raise SystemExit(main())
