"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        simulate one application under one policy
compare    run all policies on one or more applications
figure     regenerate a paper figure/table by id (fig3, fig20, ...)
list       list workloads, policies and experiments

Examples
--------
    python -m repro run swim --policy model-based
    python -m repro compare swim cg --intervals 30
    python -m repro figure fig20
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import EXPERIMENTS, speedup_table
from repro.experiments.reporting import format_table
from repro.partition import POLICY_REGISTRY
from repro.sim.config import SystemConfig
from repro.sim.driver import run_application
from repro.trace.workloads import list_workloads

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Intra-application cache partitioning simulator (IPDPS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--threads", type=int, default=4, help="number of cores/threads")
        p.add_argument("--intervals", type=int, default=50, help="execution intervals")
        p.add_argument(
            "--interval-instructions", type=int, default=20_000,
            help="instructions per thread per interval",
        )
        p.add_argument("--seed", type=int, default=1, help="workload seed")

    p_run = sub.add_parser("run", help="simulate one application under one policy")
    p_run.add_argument("app", help="workload name (see `repro list`)")
    p_run.add_argument(
        "--policy", default="model-based", choices=sorted(POLICY_REGISTRY),
        help="partitioning policy",
    )
    p_run.add_argument("--json", action="store_true", help="emit the full result as JSON")
    add_config_args(p_run)

    p_cmp = sub.add_parser("compare", help="all policies side by side")
    p_cmp.add_argument("apps", nargs="*", help="workloads (default: all nine)")
    add_config_args(p_cmp)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    p_fig.add_argument("name", choices=sorted(EXPERIMENTS), help="experiment id")
    p_fig.add_argument("--json", action="store_true", help="emit JSON instead of ASCII")
    add_config_args(p_fig)

    sub.add_parser("list", help="list workloads, policies and experiments")
    return parser


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig.default().with_(
        n_threads=args.threads,
        n_intervals=args.intervals,
        interval_instructions=args.interval_instructions,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print("workloads:  " + ", ".join(list_workloads()))
        print("policies:   " + ", ".join(sorted(POLICY_REGISTRY)))
        print("experiments:" + " " + ", ".join(EXPERIMENTS))
        return 0

    if args.command == "run":
        config = _config(args)
        result = run_application(args.app, args.policy, config)
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2)
            print()
            return 0
        rows = [
            [f"thread {t}", f"{result.thread_cpi(t):.2f}", result.l2_totals.misses[t],
             f"{result.thread_stall_cycles[t] / result.total_cycles:.1%}"]
            for t in range(result.n_threads)
        ]
        print(format_table(
            ["thread", "busy CPI", "L2 misses", "slack"],
            rows,
            title=f"{args.app} under {args.policy}: {result.total_cycles / 1e6:.2f}M cycles",
        ))
        final = result.intervals[-1].observation if result.intervals else None
        if final is not None:
            print(f"\nfinal way partition: {list(final.targets)}")
        return 0

    if args.command == "compare":
        config = _config(args)
        apps = args.apps or list_workloads()
        unknown = [a for a in apps if a not in list_workloads()]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            return 2
        print(speedup_table(config, apps))
        return 0

    if args.command == "figure":
        config = _config(args)
        if args.name == "fig22" and config.n_threads < 8:
            config = config.with_(n_threads=8)
        result = EXPERIMENTS[args.name](config)
        if args.json:
            json.dump(result.to_dict(), sys.stdout, indent=2)
            print()
        else:
            print(result.format())
        return 0

    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":
    raise SystemExit(main())
