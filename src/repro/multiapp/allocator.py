"""OS-level cache allocators (paper §VI-C, Fig. 16, upper layer).

The paper envisions a hierarchy: "the OS manages the cache-partitioning
among applications and the runtime-system manages the cache-partitioning
among the threads of an application", citing Suh-style OS allocators.
These classes play the OS role: at every *OS epoch* they re-divide the
total way budget among the co-executing applications; the per-application
runtimes then subdivide their slices (see
:class:`repro.multiapp.runtime.HierarchicalRuntime`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.mathx.rounding import largest_remainder_apportion

__all__ = ["MissProportionalOSAllocator", "OSAllocator", "StaticOSAllocator"]


class OSAllocator(ABC):
    """Divides ``total_ways`` among ``n_apps`` applications."""

    def __init__(self, n_apps: int, total_ways: int, *, min_ways_per_app: int = 1) -> None:
        if n_apps < 1:
            raise ValueError("n_apps must be >= 1")
        if total_ways < min_ways_per_app * n_apps:
            raise ValueError(
                f"{total_ways} ways cannot give {n_apps} apps {min_ways_per_app} each"
            )
        self.n_apps = n_apps
        self.total_ways = total_ways
        self.min_ways_per_app = min_ways_per_app

    def initial_budgets(self, threads_per_app: list[int]) -> list[int]:
        """Starting budgets: proportional to thread counts (a bigger
        application gets a proportionally bigger slice)."""
        return largest_remainder_apportion(
            threads_per_app, self.total_ways, minimum=self.min_ways_per_app
        )

    @abstractmethod
    def on_epoch(self, app_misses: list[int], budgets: list[int]) -> list[int] | None:
        """New per-app budgets at an OS epoch (None = keep current).

        ``app_misses`` are each application's L2 misses during the epoch.
        """


class StaticOSAllocator(OSAllocator):
    """Fixed budgets for the whole run (set by :meth:`initial_budgets`)."""

    def on_epoch(self, app_misses: list[int], budgets: list[int]) -> list[int] | None:
        return None


class MissProportionalOSAllocator(OSAllocator):
    """Budgets follow each application's share of recent L2 misses.

    A simple, Suh-flavoured demand-driven allocator: applications missing
    more receive more cache.  An EWMA over epochs keeps it from chasing a
    single noisy epoch.
    """

    def __init__(
        self,
        n_apps: int,
        total_ways: int,
        *,
        min_ways_per_app: int = 1,
        alpha: float = 0.5,
    ) -> None:
        super().__init__(n_apps, total_ways, min_ways_per_app=min_ways_per_app)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._smoothed: list[float] | None = None

    def on_epoch(self, app_misses: list[int], budgets: list[int]) -> list[int] | None:
        if len(app_misses) != self.n_apps:
            raise ValueError(f"expected {self.n_apps} miss counts, got {len(app_misses)}")
        misses = [float(m) for m in app_misses]
        if self._smoothed is None:
            self._smoothed = misses
        else:
            self._smoothed = [
                s + self.alpha * (m - s)
                for s, m in zip(self._smoothed, misses, strict=True)
            ]
        return largest_remainder_apportion(
            self._smoothed, self.total_ways, minimum=self.min_ways_per_app
        )
