"""Co-execution engine: several applications sharing one L2 (paper Fig. 16).

Generalises :class:`repro.cpu.engine.CMPEngine` to multiple independent
applications on disjoint core sets.  Each application keeps its own
barrier structure and its own execution-interval clock (ticking its
:class:`~repro.multiapp.runtime.AppRuntime`); an OS allocator re-divides
the global way budget between applications at coarser epochs.  The shared
cache sees one flat list of threads — the hierarchy exists purely in who
decides which slice of the target vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.shared import PartitionedSharedCache
from repro.cache.stats import StatsSnapshot
from repro.core.records import IntervalObservation
from repro.cpu.streams import CompiledProgram
from repro.cpu.timing import TimingModel
from repro.multiapp.allocator import OSAllocator
from repro.multiapp.runtime import AppRuntime

__all__ = ["AppResult", "MultiAppEngine", "MultiAppResult"]


@dataclass
class AppResult:
    """Outcome for one application of a co-execution."""

    app: str
    completion_cycles: float
    thread_instructions: tuple[int, ...]
    thread_busy_cycles: tuple[float, ...]
    intervals: list[IntervalObservation] = field(default_factory=list)

    def thread_cpi(self, thread: int) -> float:
        instr = self.thread_instructions[thread]
        return self.thread_busy_cycles[thread] / instr if instr else 0.0


@dataclass
class MultiAppResult:
    """Outcome of a whole co-execution."""

    apps: list[AppResult]
    l2_totals: StatsSnapshot
    budget_trace: list[tuple[int, list[int]]] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """Wall clock until the last application completes."""
        return max(a.completion_cycles for a in self.apps)

    def completion(self, app_index: int) -> float:
        return self.apps[app_index].completion_cycles


class MultiAppEngine:
    """Runs K compiled programs concurrently against one shared L2.

    Parameters
    ----------
    compiled_apps:
        One compiled program per application; thread ids are assigned
        app-major (app 0's threads first).
    l2:
        Shared cache built for the *total* thread count.
    runtimes:
        One :class:`AppRuntime` per application, or None for a fully
        unmanaged (global-LRU or fixed-partition) run.
    os_allocator:
        Re-divides the budget between applications every
        ``os_epoch_intervals`` application-interval lengths of aggregate
        instructions.  Ignored when ``runtimes`` is None.
    """

    def __init__(
        self,
        compiled_apps: list[CompiledProgram],
        l2: PartitionedSharedCache,
        timing: TimingModel,
        runtimes: list[AppRuntime] | None = None,
        os_allocator: OSAllocator | None = None,
        *,
        interval_instructions: int = 20_000,
        os_epoch_intervals: int = 5,
    ) -> None:
        if not compiled_apps:
            raise ValueError("need at least one application")
        self.apps = compiled_apps
        self.n_apps = len(compiled_apps)
        self.offsets = []
        total = 0
        for c in compiled_apps:
            self.offsets.append(total)
            total += c.n_threads
        self.n_total = total
        if l2.n_threads != total:
            raise ValueError(f"cache is shared by {l2.n_threads} threads, programs have {total}")
        if runtimes is not None and len(runtimes) != self.n_apps:
            raise ValueError("need one runtime per application")
        if runtimes is not None:
            for c, rt in zip(compiled_apps, runtimes, strict=True):
                if rt.n_threads != c.n_threads:
                    raise ValueError("runtime thread count mismatch")
        if interval_instructions < 1 or os_epoch_intervals < 1:
            raise ValueError("interval_instructions and os_epoch_intervals must be >= 1")
        self.l2 = l2
        self.timing = timing
        self.runtimes = runtimes
        self.os_allocator = os_allocator
        self.interval_instructions = interval_instructions
        self.os_epoch_intervals = os_epoch_intervals

    # ------------------------------------------------------------------
    def _apply_targets(self) -> None:
        targets = [0] * self.n_total
        assert self.runtimes is not None
        for a, rt in enumerate(self.runtimes):
            off = self.offsets[a]
            for t, w in enumerate(rt.targets):
                targets[off + t] = w
        self.l2.set_targets(targets)

    def run(self) -> MultiAppResult:
        timing = self.timing
        l2 = self.l2
        access = l2.access
        l2_hit = timing.l2_hit_cycles

        n_apps = self.n_apps
        offsets = self.offsets
        clock = [0.0] * self.n_total
        busy = [0.0] * self.n_total
        instr = [0] * self.n_total

        # Per-app execution state.
        section_idx = [0] * n_apps
        app_active = [True] * n_apps
        completion = [0.0] * n_apps
        cursors: list[list[int]] = [[0] * c.n_threads for c in self.apps]
        sec_done: list[list[bool]] = [[False] * c.n_threads for c in self.apps]
        streams = [None] * n_apps  # materialised per-section python lists
        app_of_thread = []
        for a, c in enumerate(self.apps):
            app_of_thread += [a] * c.n_threads

        def load_section(a: int) -> None:
            sec = self.apps[a].sections[section_idx[a]]
            streams[a] = (
                [s.addresses.tolist() for s in sec],
                [s.d_instructions.tolist() for s in sec],
                [s.d_cycles.tolist() for s in sec],
                [s.miss_cycles.tolist() for s in sec],
                [s.n_l2_accesses for s in sec],
                [s.tail_instructions for s in sec],
                [s.tail_cycles for s in sec],
            )
            cursors[a] = [0] * self.apps[a].n_threads
            sec_done[a] = [False] * self.apps[a].n_threads

        for a in range(n_apps):
            load_section(a)

        # Interval / epoch bookkeeping.
        app_instr = [0] * n_apps
        next_tick = [self.interval_instructions * c.n_threads for c in self.apps]
        tick_len = [self.interval_instructions * c.n_threads for c in self.apps]
        interval_idx = [0] * n_apps
        tick_instr = [list(instr[offsets[a] : offsets[a] + self.apps[a].n_threads])
                      for a in range(n_apps)]
        tick_busy = [[0.0] * self.apps[a].n_threads for a in range(n_apps)]
        tick_snapshot = l2.stats.snapshot()
        app_snapshots = [tick_snapshot] * n_apps
        intervals: list[list[IntervalObservation]] = [[] for _ in range(n_apps)]

        epoch_countdown = self.os_epoch_intervals
        epoch_miss_base = [0] * n_apps
        budget_trace: list[tuple[int, list[int]]] = []
        total_app_ticks = 0

        if self.runtimes is not None:
            self._apply_targets()
            if self.os_allocator is not None:
                budget_trace.append((0, [rt.budget for rt in self.runtimes]))

        def fire_app_tick(a: int) -> None:
            nonlocal epoch_countdown, total_app_ticks
            off = offsets[a]
            n = self.apps[a].n_threads
            snap = l2.stats.snapshot()
            d_instr = tuple(instr[off + t] - tick_instr[a][t] for t in range(n))
            d_busy = tuple(busy[off + t] - tick_busy[a][t] for t in range(n))
            cpi = tuple(
                d_busy[t] / d_instr[t] if d_instr[t] > 0 else 0.0 for t in range(n)
            )
            delta = snap.minus(app_snapshots[a])
            obs = IntervalObservation(
                index=interval_idx[a],
                cpi=cpi,
                instructions=d_instr,
                busy_cycles=d_busy,
                targets=tuple(l2.targets[off : off + n]),
                l2=StatsSnapshot(
                    accesses=delta.accesses[off : off + n],
                    hits=delta.hits[off : off + n],
                    misses=delta.misses[off : off + n],
                    evictions=delta.evictions[off : off + n],
                    inter_thread_hits=delta.inter_thread_hits[off : off + n],
                    inter_thread_evictions=delta.inter_thread_evictions[off : off + n],
                    intra_thread_hits=delta.intra_thread_hits[off : off + n],
                ),
            )
            intervals[a].append(obs)
            if self.runtimes is not None:
                self.runtimes[a].on_interval(obs)
                self._apply_targets()
                oh = timing.partition_overhead_cycles
                for t in range(n):
                    if not sec_done[a][t] and app_active[a]:
                        clock[off + t] += oh
                        busy[off + t] += oh
            for t in range(n):
                tick_instr[a][t] = instr[off + t]
                tick_busy[a][t] = busy[off + t]
            app_snapshots[a] = snap
            interval_idx[a] += 1
            next_tick[a] += tick_len[a]
            total_app_ticks += 1
            epoch_countdown -= 1
            if epoch_countdown <= 0:
                epoch_countdown = self.os_epoch_intervals
                fire_os_epoch()

        def fire_os_epoch() -> None:
            if self.runtimes is None or self.os_allocator is None:
                return
            snap = l2.stats.snapshot()
            app_misses = []
            for a2 in range(n_apps):
                off2 = offsets[a2]
                n2 = self.apps[a2].n_threads
                total_m = sum(snap.misses[off2 : off2 + n2])
                app_misses.append(total_m - epoch_miss_base[a2])
                epoch_miss_base[a2] = total_m
            budgets = self.os_allocator.on_epoch(
                app_misses, [rt.budget for rt in self.runtimes]
            )
            if budgets is not None:
                for rt, b in zip(self.runtimes, budgets, strict=True):
                    rt.set_budget(b)
                self._apply_targets()
                budget_trace.append((total_app_ticks, list(budgets)))

        # ------------------------------------------------------------------
        active_apps = n_apps
        while active_apps:
            # Pick the runnable thread with the smallest clock.
            g = -1
            best = None
            for k in range(self.n_total):
                a = app_of_thread[k]
                if not app_active[a] or sec_done[a][k - offsets[a]]:
                    continue
                c = clock[k]
                if best is None or c < best:
                    best, g = c, k
            if g < 0:  # all remaining apps stuck at barriers (shouldn't happen)
                break
            a = app_of_thread[g]
            lt = g - offsets[a]
            addr_l, di_l, dc_l, mc_l, lens, tail_i, tail_c = streams[a]
            i = cursors[a][lt]
            if i >= lens[lt]:
                clock[g] += tail_c[lt]
                busy[g] += tail_c[lt]
                instr[g] += tail_i[lt]
                app_instr[a] += tail_i[lt]
                sec_done[a][lt] = True
                if all(sec_done[a]):
                    # App-local barrier.
                    off = offsets[a]
                    n = self.apps[a].n_threads
                    release = max(clock[off : off + n])
                    for t in range(n):
                        clock[off + t] = release
                    section_idx[a] += 1
                    if section_idx[a] >= len(self.apps[a].sections):
                        app_active[a] = False
                        completion[a] = release
                        active_apps -= 1
                    else:
                        load_section(a)
                if app_instr[a] >= next_tick[a]:
                    fire_app_tick(a)
                continue
            lat = l2_hit if access(g, addr_l[lt][i]) else mc_l[lt][i]
            cost = dc_l[lt][i] + lat
            clock[g] += cost
            busy[g] += cost
            di = di_l[lt][i]
            instr[g] += di
            app_instr[a] += di
            cursors[a][lt] = i + 1
            if app_instr[a] >= next_tick[a]:
                fire_app_tick(a)

        results = []
        for a in range(n_apps):
            off = offsets[a]
            n = self.apps[a].n_threads
            results.append(
                AppResult(
                    app=self.apps[a].name,
                    completion_cycles=completion[a],
                    thread_instructions=tuple(instr[off : off + n]),
                    thread_busy_cycles=tuple(busy[off : off + n]),
                    intervals=intervals[a],
                )
            )
        return MultiAppResult(
            apps=results,
            l2_totals=l2.stats.snapshot(),
            budget_trace=budget_trace,
        )
