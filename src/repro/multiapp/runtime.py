"""Per-application runtimes under a hierarchical budget (paper Fig. 16).

Each co-executing application gets an :class:`AppRuntime` that implements
the paper's intra-application scheme *within a budget the OS may change at
any epoch*.  Unlike the single-application policies (whose total way count
is fixed at construction), an AppRuntime:

* keeps the per-thread CPI model bank and the Fig. 13 reallocation loop,
* rescales its current thread partition (largest remainder over current
  proportions) whenever the OS hands it a different budget, and
* bootstraps with CPI-proportional splits exactly like the
  single-application policy.

``mode="static-equal"`` degrades the intra layer to an equal split of the
budget — the "OS-only partitioning" baseline the hierarchy experiment
compares against.
"""

from __future__ import annotations

from repro.core.models import ThreadModelBank
from repro.core.records import IntervalObservation
from repro.mathx.rounding import largest_remainder_apportion
from repro.partition.model_based import optimize_max_cpi

__all__ = ["AppRuntime"]


class AppRuntime:
    """Intra-application partitioner for one app in a co-execution."""

    def __init__(
        self,
        n_threads: int,
        initial_budget: int,
        *,
        mode: str = "model-based",
        min_ways: int = 1,
        bootstrap_intervals: int = 2,
        alpha: float = 0.5,
        max_step: int | None = 4,
        min_rel_gain: float = 0.01,
    ) -> None:
        if mode not in ("model-based", "static-equal"):
            raise ValueError(f"unknown intra-app mode {mode!r}")
        if initial_budget < min_ways * n_threads:
            raise ValueError(
                f"budget {initial_budget} cannot give {n_threads} threads {min_ways} ways"
            )
        self.n_threads = n_threads
        self.mode = mode
        self.min_ways = min_ways
        self.bootstrap_intervals = bootstrap_intervals
        self.max_step = max_step
        self.min_rel_gain = min_rel_gain
        self.bank = ThreadModelBank(n_threads, alpha=alpha)
        self.budget = initial_budget
        self.targets = largest_remainder_apportion(
            [1.0] * n_threads, initial_budget, minimum=min_ways
        )
        self._intervals_seen = 0

    def set_budget(self, budget: int) -> None:
        """Adopt a new OS budget, rescaling the current thread partition
        proportionally (the runtime's learned shape survives the resize)."""
        if budget < self.min_ways * self.n_threads:
            raise ValueError(
                f"budget {budget} cannot give {self.n_threads} threads "
                f"{self.min_ways} ways each"
            )
        if budget == self.budget:
            return
        self.targets = largest_remainder_apportion(
            self.targets, budget, minimum=self.min_ways
        )
        self.budget = budget

    def on_interval(self, obs: IntervalObservation) -> list[int]:
        """New intra-app thread targets for the next interval.

        ``obs`` covers only this application's threads; ``obs.targets`` is
        the partition in effect during the interval (which may predate a
        budget change, so the optimiser always starts from the rescaled
        ``self.targets``)."""
        if obs.n_threads != self.n_threads:
            raise ValueError(f"observation has {obs.n_threads} threads, expected {self.n_threads}")
        if self.mode == "static-equal":
            self.targets = largest_remainder_apportion(
                [1.0] * self.n_threads, self.budget, minimum=self.min_ways
            )
            return list(self.targets)

        for t in range(self.n_threads):
            if obs.instructions[t] > 0:
                self.bank.observe(t, obs.targets[t], obs.cpi[t])
        self._intervals_seen += 1

        if self._intervals_seen <= self.bootstrap_intervals or any(
            self.bank.n_distinct(t) == 0 for t in range(self.n_threads)
        ):
            self.targets = largest_remainder_apportion(
                obs.cpi, self.budget, minimum=self.min_ways
            )
            return list(self.targets)

        self.targets = optimize_max_cpi(
            self.bank,
            list(self.targets),
            self.budget,
            min_ways=self.min_ways,
            min_rel_gain=self.min_rel_gain,
            max_step=self.max_step,
        )
        return list(self.targets)
