"""One-call driver for hierarchical co-execution experiments."""

from __future__ import annotations

from repro.cache.fastpath import make_shared_cache
from repro.multiapp.allocator import (
    MissProportionalOSAllocator,
    OSAllocator,
    StaticOSAllocator,
)
from repro.multiapp.engine import MultiAppEngine, MultiAppResult
from repro.multiapp.runtime import AppRuntime
from repro.sim.config import SystemConfig
from repro.sim.driver import prepare_program
from repro.trace.workloads import WorkloadProfile

__all__ = ["run_coexecution"]


def run_coexecution(
    apps: list[str | WorkloadProfile],
    config: SystemConfig,
    *,
    scheme: str = "hierarchical",
    threads_per_app: int | None = None,
    os_epoch_intervals: int = 5,
) -> MultiAppResult:
    """Co-execute several applications on one CMP under one of:

    * ``"shared"``       — no partitioning anywhere (global LRU);
    * ``"os-only"``      — OS partitions between applications (dynamic,
      miss-proportional); each app's slice is split equally inside;
    * ``"hierarchical"`` — the paper's Fig. 16: the same OS allocator on
      top, the intra-application model-based runtime below;
    * ``"hierarchical-static-os"`` — intra-application runtime below a
      fixed OS split (isolates the intra-app contribution).

    ``threads_per_app`` defaults to ``config.n_threads`` (each app runs
    its canonical thread count; the cache is shared by the total).
    """
    if scheme not in ("shared", "os-only", "hierarchical", "hierarchical-static-os"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if not apps:
        raise ValueError("need at least one application")
    tpa = threads_per_app or config.n_threads
    n_apps = len(apps)
    total_threads = tpa * n_apps
    total_ways = config.total_ways
    if total_ways < total_threads * config.min_ways and scheme != "shared":
        raise ValueError(
            f"{total_ways} ways cannot support {total_threads} threads at "
            f"min_ways={config.min_ways}"
        )

    app_config = config.with_(n_threads=tpa)
    compiled = [prepare_program(app, app_config) for app in apps]

    enforce = scheme != "shared"
    runtimes: list[AppRuntime] | None = None
    allocator: OSAllocator | None = None
    if enforce:
        alloc_cls = (
            StaticOSAllocator if scheme == "hierarchical-static-os" else MissProportionalOSAllocator
        )
        allocator = alloc_cls(
            n_apps, total_ways, min_ways_per_app=tpa * max(1, config.min_ways)
        )
        budgets = allocator.initial_budgets([tpa] * n_apps)
        mode = "static-equal" if scheme == "os-only" else "model-based"
        runtimes = [
            AppRuntime(tpa, b, mode=mode, min_ways=config.min_ways)
            for b in budgets
        ]
        if scheme == "hierarchical-static-os":
            allocator = None  # fixed initial budgets, no epochs

    # The multi-app engine drives the cache through its `access()` method
    # (no fused kernel), but the fast backend's flat layout still helps.
    l2 = make_shared_cache(
        config.l2_geometry,
        total_threads,
        backend=config.cache_backend,
        enforce_partition=enforce,
    )
    engine = MultiAppEngine(
        compiled,
        l2,
        config.timing,
        runtimes,
        allocator,
        interval_instructions=config.interval_instructions,
        os_epoch_intervals=os_epoch_intervals,
    )
    return engine.run()
