"""Hierarchical multi-application cache management (paper §VI-C, Fig. 16).

The paper positions its intra-application scheme as the lower layer of a
hierarchy: the OS partitions the shared cache among co-executing
applications and each application's runtime subdivides its slice among
its threads.  This package builds that whole stack: OS allocators, the
budget-aware per-application runtime, a co-execution engine, and a
one-call driver comparing the hierarchy against unmanaged and OS-only
baselines.
"""

from repro.multiapp.allocator import (
    MissProportionalOSAllocator,
    OSAllocator,
    StaticOSAllocator,
)
from repro.multiapp.driver import run_coexecution
from repro.multiapp.engine import AppResult, MultiAppEngine, MultiAppResult
from repro.multiapp.runtime import AppRuntime

__all__ = [
    "AppResult",
    "AppRuntime",
    "MissProportionalOSAllocator",
    "MultiAppEngine",
    "MultiAppResult",
    "OSAllocator",
    "StaticOSAllocator",
    "run_coexecution",
]
