#!/usr/bin/env python
"""Fleet smoke: autoscale an empty fleet, kill a worker, compare clean.

CI runs this as the end-to-end proof of the fleet contract (DESIGN.md
§J) outside the pytest harness:

1. run the spec grid serially into a control store;
2. start ``repro serve`` with a hosted registrar and the autoscaler
   bounded at [0, 2] — the fleet starts *empty*; no ``--workers`` list
   anywhere;
3. submit the same grid; the queued backlog must scale the fleet 0→2
   subprocess workers (discovered via the registrar, admitted
   mid-sweep);
4. SIGKILL one worker; the controller must notice the death and launch
   a replacement while the sweep keeps running;
5. require the sweep to finish with zero failures, the service to drain
   cleanly on SIGTERM, and ``repro compare-runs`` to report the fleet
   store byte-identical to the serial control under the spec's zero
   tolerances.

Prints ``scaled-to=2``, ``relaunched=yes`` and ``aggregates-match=yes``
on success (CI greps for these); exits non-zero on any violation.

Usage: PYTHONPATH=src python scripts/fleet_smoke.py [--spec FILE]
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def load_grid(path: str) -> dict:
    from repro.spec import load_spec

    grid = load_spec(path).grid
    return {
        "apps": list(grid.apps),
        "policies": list(grid.policies),
        "seeds": list(grid.seeds),
        "thread_counts": list(grid.thread_counts),
        "intervals": grid.intervals,
        "interval_instructions": grid.interval_instructions,
        "client": "fleet-smoke",
    }


def run_control(spec: str, store: Path) -> None:
    subprocess.run(
        [
            sys.executable, "-m", "repro", "run-spec", spec,
            "--cache-dir", str(store), "--json",
        ],
        check=True, stdout=subprocess.DEVNULL, timeout=600,
    )


def start_serve(tmp: Path, data_dir: Path, store: Path) -> tuple[subprocess.Popen, int]:
    port_file = tmp / f"serve-port-{time.monotonic_ns()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--data-dir", str(data_dir), "--cache-dir", str(store),
            "--engine", "remote",
            "--registrar-port", "0",
            "--fleet-min", "0", "--fleet-max", "2", "--fleet-poll", "0.2",
            "--batch-size", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(f"serve died at startup:\n{proc.stdout.read()}")
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError("serve did not write its port file in time")


def fleet_stats(client) -> dict:
    fleet = client.stats().get("fleet") or {}
    workers = fleet.get("workers") or []
    fleet["alive"] = [w for w in workers if w.get("alive")]
    return fleet


def wait_for(predicate, *, timeout_s: float, what: str, poll_s: float = 0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll_s)
    raise RuntimeError(f"timed out after {timeout_s:.0f}s waiting for {what}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--spec", default="specs/chaos_sweep.yaml", metavar="FILE",
        help="experiment spec naming the grid (default specs/chaos_sweep.yaml)",
    )
    args = parser.parse_args()

    from repro.serve.client import ServeClient

    grid = load_grid(args.spec)
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as tmp_str:
        tmp = Path(tmp_str)
        control_store = tmp / "control-store"
        fleet_store = tmp / "fleet-store"

        run_control(args.spec, control_store)
        print("serial control complete")

        proc, port = start_serve(tmp, tmp / "serve-data", fleet_store)
        client = ServeClient(port=port)
        try:
            submission = client.submit(grid)
            sweep_id = submission["sweep_id"]
            print(f"submitted sweep {sweep_id} against an empty fleet")

            # The queued backlog must autoscale the fleet from nothing.
            wait_for(
                lambda: len(fleet_stats(client)["alive"]) >= 2,
                timeout_s=120, what="the autoscaler to reach 2 workers",
            )
            print("scaled-to=2")

            victim_pid = fleet_stats(client)["alive"][0]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            print(f"killed worker pid={victim_pid}")

            # The controller must notice the death and, with backlog
            # still queued, launch a replacement mid-sweep.
            wait_for(
                lambda: fleet_stats(client).get("worker_deaths", 0) >= 1,
                timeout_s=60, what="the controller to record the death",
            )
            relaunched = wait_for(
                lambda: (
                    len(fleet_stats(client)["alive"]) >= 2
                    or (client.status(sweep_id)["status"] != "running" and "done")
                ),
                timeout_s=120, what="a replacement worker (or sweep end)",
            )
            if relaunched == "done":
                print(
                    "error: sweep finished before the replacement launched; "
                    "the grid is too fast for this host", file=sys.stderr,
                )
                return 1
            print("relaunched=yes")

            final = wait_for(
                lambda: (s := client.status(sweep_id))["status"] != "running" and s,
                timeout_s=600, what="the sweep to finish", poll_s=0.25,
            )
            if final["status"] != "done":
                print(f"error: sweep ended {final['status']!r}", file=sys.stderr)
                return 1
            result = final["result"]
            if result["n_failures"]:
                print(f"error: {result['n_failures']} cell(s) failed", file=sys.stderr)
                return 1
            print(f"sweep done: {len(result['cells'])} cell(s), 0 failures")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                proc.wait(timeout=120)
        output = proc.stdout.read()
        if proc.returncode != 0 or "drained cleanly" not in output:
            print(
                f"error: serve exited {proc.returncode} without a clean "
                f"drain:\n{output}", file=sys.stderr,
            )
            return 1

        compare = subprocess.run(
            [
                sys.executable, "-m", "repro", "compare-runs",
                str(control_store), str(fleet_store), "--spec", args.spec,
            ],
            text=True, capture_output=True, timeout=300,
        )
        sys.stdout.write(compare.stdout)
        sys.stderr.write(compare.stderr)
        if compare.returncode != 0:
            print("aggregates-match=no", file=sys.stderr)
            return 1
        print("aggregates-match=yes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
