#!/usr/bin/env python
"""Chaos smoke: kill sweep machinery mid-flight, resume, compare aggregates.

CI runs this as a single end-to-end proof of the crash-safety contract
outside the pytest harness, in two modes:

``--mode sweep`` (default) — the batch path:

1. run a small control sweep to completion (no journal) and keep its
   resume-invariant aggregates;
2. run the same grid with ``--journal`` and SIGKILL the process once at
   least one cell is durably journaled (genuinely mid-flight);
3. ``--resume`` the journal and check that (a) every journaled cell was
   restored rather than recomputed and (b) the aggregates are
   byte-identical to the control's.

``--mode serve`` — the service path:

1. start ``repro serve``, submit the grid, SIGTERM the service once at
   least one cell is journaled; require a *clean drain* (exit 0);
2. start a fresh service on the same data dir, resubmit the same grid
   (it resumes from the journal), and compare the final aggregates to an
   uninterrupted ``repro sweep`` control byte-for-byte.

``--mode dist`` — the distributed path (DESIGN.md §G), two phases:

1. *worker death*: start two ``repro worker`` processes, run the grid
   with ``--workers``, SIGKILL one worker once at least one cell is
   journaled; the sweep must still exit 0 (the survivor absorbs the
   dead worker's jobs) with aggregates byte-identical to a serial
   control;
2. *coordinator death*: run the grid again against the surviving
   worker, SIGKILL the *coordinator* mid-sweep, then ``--resume`` the
   journal — journaled cells restore without recomputation and the
   final aggregates match the control byte-for-byte.  The resume is
   pointed at both worker addresses, so it also proves a dead address
   in the fleet is tolerated, not fatal.

Prints ``resumed=<n>`` and ``aggregates-match=yes`` on success (CI greps
for both); exits non-zero on any violation.

The default grid is built in; ``--spec FILE`` loads it from a checked-in
experiment spec instead (``specs/chaos_sweep.yaml`` is the canonical
one), so the chaos grid and the spec-driven grid are the same document.

Usage: PYTHONPATH=src python scripts/chaos_smoke.py [--jobs N] [--mode sweep|serve|dist]
                                                    [--spec FILE]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

AGG_KEYS = (
    "apps",
    "policies",
    "seeds",
    "thread_counts",
    "baseline",
    "n_failures",
    "baseline_missing",
    "cells",
    "mean_speedups",
)

GRID = {
    "apps": ["ft", "cg"],
    "policies": ["shared", "static-equal"],
    "intervals": 30,
    "interval_instructions": 8000,
}


def load_grid_from_spec(path: str) -> None:
    """Replace the built-in GRID with the grid block of a spec file."""
    from repro.spec import load_spec

    grid = load_spec(path).grid
    GRID.clear()
    GRID.update(
        apps=list(grid.apps),
        policies=list(grid.policies),
        seeds=list(grid.seeds),
        thread_counts=list(grid.thread_counts),
        intervals=grid.intervals,
        interval_instructions=grid.interval_instructions,
    )


def sweep_argv(jobs: int, journal: Path | None = None, resume: bool = False) -> list[str]:
    argv = [
        sys.executable, "-m", "repro", "sweep",
        "--apps", *GRID["apps"],
        "--policies", *GRID["policies"],
        "--intervals", str(GRID["intervals"]),
        "--interval-instructions", str(GRID["interval_instructions"]),
        "--jobs", str(jobs), "--json",
    ]
    if "seeds" in GRID:
        argv += ["--seeds", *map(str, GRID["seeds"])]
    if "thread_counts" in GRID:
        argv += ["--thread-counts", *map(str, GRID["thread_counts"])]
    if journal is not None:
        argv += ["--journal", str(journal)]
    if resume:
        argv += ["--resume"]
    return argv


def journal_cells(path: Path) -> int:
    try:
        return path.read_text(encoding="utf-8").count('"kind":"cell"')
    except OSError:
        return 0


def run_control(jobs: int) -> dict:
    return json.loads(
        subprocess.run(
            sweep_argv(jobs), capture_output=True, text=True, check=True, timeout=300
        ).stdout
    )


def compare_aggregates(final: dict, control: dict) -> int:
    mismatched = [
        key
        for key in AGG_KEYS
        if json.dumps(final[key], sort_keys=True) != json.dumps(control[key], sort_keys=True)
    ]
    if mismatched:
        print(f"aggregates-match=no ({', '.join(mismatched)} diverged)", file=sys.stderr)
        return 1
    print("aggregates-match=yes")
    return 0


def sweep_mode(jobs: int) -> int:
    control = run_control(jobs)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        victim = subprocess.Popen(
            sweep_argv(jobs, journal), stdout=subprocess.DEVNULL
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal_cells(journal) >= 2:
                victim.send_signal(signal.SIGKILL)
                break
            if victim.poll() is not None:
                break
            time.sleep(0.005)
        victim.wait(timeout=60)
        if victim.returncode != -signal.SIGKILL:
            print(
                f"error: sweep finished (rc={victim.returncode}) before the "
                "SIGKILL landed; the grid is too fast to kill mid-flight",
                file=sys.stderr,
            )
            return 1
        completed = journal_cells(journal)
        print(f"killed mid-flight with {completed} cell(s) journaled")

        resumed = json.loads(
            subprocess.run(
                sweep_argv(jobs, journal, resume=True),
                capture_output=True,
                text=True,
                check=True,
                timeout=300,
            ).stdout
        )

    print(f"resumed={resumed['resumed']} simulated={resumed['simulated']}")
    if resumed["resumed"] != completed:
        print(
            f"error: {completed} cells were journaled but only "
            f"{resumed['resumed']} restored",
            file=sys.stderr,
        )
        return 1
    return compare_aggregates(resumed, control)


def start_serve(tmp: Path, data_dir: Path, jobs: int) -> tuple[subprocess.Popen, int]:
    port_file = tmp / f"port-{time.monotonic_ns()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--port-file", str(port_file),
            "--data-dir", str(data_dir), "--jobs", str(jobs),
            "--batch-size", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(f"serve died at startup:\n{proc.stdout.read()}")
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError("serve did not write its port file in time")


def serve_mode(jobs: int) -> int:
    from repro.serve.client import ServeClient
    from repro.serve.protocol import SweepRequest

    control = run_control(jobs)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-serve-") as tmp_str:
        tmp = Path(tmp_str)
        data_dir = tmp / "serve-data"
        sweep_id = SweepRequest.from_dict(GRID).sweep_id
        journal = data_dir / "journals" / f"{sweep_id}.jsonl"

        proc, port = start_serve(tmp, data_dir, jobs)
        try:
            ServeClient(port=port).submit(GRID)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal_cells(journal) >= 1:
                    proc.send_signal(signal.SIGTERM)
                    break
                time.sleep(0.005)
            proc.wait(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        output = proc.stdout.read()
        if proc.returncode != 0:
            print(
                f"error: serve exited {proc.returncode} on SIGTERM (want 0):\n{output}",
                file=sys.stderr,
            )
            return 1
        if "drained cleanly" not in output:
            print(f"error: serve did not report a clean drain:\n{output}", file=sys.stderr)
            return 1
        completed = journal_cells(journal)
        if not 1 <= completed < 4:
            print(
                f"error: SIGTERM landed with {completed} cell(s) journaled — "
                "not mid-sweep; timing too coarse for this host",
                file=sys.stderr,
            )
            return 1
        if not journal.read_bytes().endswith(b"\n"):
            print("error: journal is not newline-terminated after the drain", file=sys.stderr)
            return 1
        print(f"serve drained cleanly with {completed} cell(s) journaled")

        proc, port = start_serve(tmp, data_dir, jobs)
        try:
            final = ServeClient(port=port).run({**GRID, "client": "chaos-smoke"})
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=120)
        if proc.returncode != 0:
            print(f"error: second serve exited {proc.returncode}", file=sys.stderr)
            return 1
        if final["status"] != "done":
            print(f"error: resumed sweep ended {final['status']!r}", file=sys.stderr)
            return 1
        print(f"resumed={final['resumed']} executed={final['executed']}")
        if final["resumed"] != completed:
            print(
                f"error: {completed} cells were journaled but only "
                f"{final['resumed']} restored",
                file=sys.stderr,
            )
            return 1
        return compare_aggregates(final["result"], control)


def start_worker(tmp: Path, idx: int) -> tuple[subprocess.Popen, int]:
    port_file = tmp / f"worker-port-{idx}-{time.monotonic_ns()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--port", "0", "--port-file", str(port_file),
            "--worker-id", f"chaos-w{idx}",
        ],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if port_file.is_file() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(f"worker {idx} died at startup (rc={proc.returncode})")
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError(f"worker {idx} did not write its port file in time")


def dist_mode() -> int:
    control = run_control(1)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-dist-") as tmp_str:
        tmp = Path(tmp_str)
        workers = [start_worker(tmp, i) for i in range(2)]
        fleet = ",".join(f"127.0.0.1:{port}" for _proc, port in workers)
        try:
            # Phase 1: kill one worker mid-sweep; the survivor must
            # absorb its jobs and the sweep must still exit 0.
            journal = tmp / "dist-worker-kill.jsonl"
            victim = subprocess.Popen(
                sweep_argv(1, journal) + ["--workers", fleet],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            )
            worker_killed = False
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal_cells(journal) >= 1:
                    workers[0][0].kill()
                    worker_killed = True
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.005)
            out, _ = victim.communicate(timeout=300)
            if not worker_killed:
                print(
                    "error: sweep finished before a worker could be killed "
                    "mid-flight; the grid is too fast for this host",
                    file=sys.stderr,
                )
                return 1
            if victim.returncode != 0:
                print(
                    f"error: remote sweep exited {victim.returncode} after a "
                    "worker was killed (want 0: the survivor absorbs the jobs)",
                    file=sys.stderr,
                )
                return 1
            survived = json.loads(out)
            print("worker killed mid-sweep; sweep completed on the survivor")
            rc = compare_aggregates(survived, control)
            if rc:
                return rc

            # Phase 2: SIGKILL the coordinator mid-sweep, then resume.
            # The fleet passed to the resume still names the dead
            # worker's address — a dead address must be tolerated.
            journal = tmp / "dist-coord-kill.jsonl"
            victim = subprocess.Popen(
                sweep_argv(1, journal) + ["--workers", fleet],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if journal_cells(journal) >= 2:
                    victim.send_signal(signal.SIGKILL)
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.005)
            victim.wait(timeout=60)
            if victim.returncode != -signal.SIGKILL:
                print(
                    f"error: coordinator finished (rc={victim.returncode}) "
                    "before the SIGKILL landed; the grid is too fast to kill "
                    "mid-flight",
                    file=sys.stderr,
                )
                return 1
            completed = journal_cells(journal)
            print(f"coordinator killed mid-flight with {completed} cell(s) journaled")

            resumed = json.loads(
                subprocess.run(
                    sweep_argv(1, journal, resume=True) + ["--workers", fleet],
                    capture_output=True, text=True, check=True, timeout=300,
                ).stdout
            )
        finally:
            for proc, _port in workers:
                if proc.poll() is None:
                    proc.terminate()
            for proc, _port in workers:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()

    print(f"resumed={resumed['resumed']} simulated={resumed['simulated']}")
    if resumed["resumed"] != completed:
        print(
            f"error: {completed} cells were journaled but only "
            f"{resumed['resumed']} restored",
            file=sys.stderr,
        )
        return 1
    return compare_aggregates(resumed, control)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--mode", choices=("sweep", "serve", "dist"), default="sweep",
        help="kill the batch CLI (sweep, default), the service (serve), "
        "or workers and the coordinator of a distributed sweep (dist)",
    )
    parser.add_argument(
        "--spec", metavar="FILE", default=None,
        help="load the chaos grid from an experiment spec "
        "(e.g. specs/chaos_sweep.yaml) instead of the built-in grid",
    )
    args = parser.parse_args()
    if args.spec:
        load_grid_from_spec(args.spec)
    if args.mode == "sweep":
        return sweep_mode(args.jobs)
    if args.mode == "serve":
        return serve_mode(args.jobs)
    return dist_mode()


if __name__ == "__main__":
    sys.exit(main())
