#!/usr/bin/env python
"""Chaos smoke: SIGKILL a sweep mid-flight, resume it, compare aggregates.

CI runs this as a single end-to-end proof of the crash-safety contract
outside the pytest harness:

1. run a small control sweep to completion (no journal) and keep its
   resume-invariant aggregates;
2. run the same grid with ``--journal`` and SIGKILL the process once at
   least one cell is durably journaled (genuinely mid-flight);
3. ``--resume`` the journal and check that (a) every journaled cell was
   restored rather than recomputed and (b) the aggregates are
   byte-identical to the control's.

Prints ``resumed=<n>`` and ``aggregates-match=yes`` on success (CI greps
for both); exits non-zero on any violation.

Usage: PYTHONPATH=src python scripts/chaos_smoke.py [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

AGG_KEYS = (
    "apps",
    "policies",
    "seeds",
    "thread_counts",
    "baseline",
    "n_failures",
    "baseline_missing",
    "cells",
    "mean_speedups",
)


def sweep_argv(jobs: int, journal: Path | None = None, resume: bool = False) -> list[str]:
    argv = [
        sys.executable, "-m", "repro", "sweep",
        "--apps", "ft", "cg",
        "--policies", "shared", "static-equal",
        "--intervals", "30", "--interval-instructions", "8000",
        "--jobs", str(jobs), "--json",
    ]
    if journal is not None:
        argv += ["--journal", str(journal)]
    if resume:
        argv += ["--resume"]
    return argv


def journal_cells(path: Path) -> int:
    try:
        return path.read_text(encoding="utf-8").count('"kind":"cell"')
    except OSError:
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    control = json.loads(
        subprocess.run(
            sweep_argv(args.jobs), capture_output=True, text=True, check=True, timeout=300
        ).stdout
    )

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        victim = subprocess.Popen(
            sweep_argv(args.jobs, journal), stdout=subprocess.DEVNULL
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if journal_cells(journal) >= 2:
                victim.send_signal(signal.SIGKILL)
                break
            if victim.poll() is not None:
                break
            time.sleep(0.005)
        victim.wait(timeout=60)
        if victim.returncode != -signal.SIGKILL:
            print(
                f"error: sweep finished (rc={victim.returncode}) before the "
                "SIGKILL landed; the grid is too fast to kill mid-flight",
                file=sys.stderr,
            )
            return 1
        completed = journal_cells(journal)
        print(f"killed mid-flight with {completed} cell(s) journaled")

        resumed = json.loads(
            subprocess.run(
                sweep_argv(args.jobs, journal, resume=True),
                capture_output=True,
                text=True,
                check=True,
                timeout=300,
            ).stdout
        )

    print(f"resumed={resumed['resumed']} simulated={resumed['simulated']}")
    if resumed["resumed"] != completed:
        print(
            f"error: {completed} cells were journaled but only "
            f"{resumed['resumed']} restored",
            file=sys.stderr,
        )
        return 1
    mismatched = [
        key
        for key in AGG_KEYS
        if json.dumps(resumed[key], sort_keys=True) != json.dumps(control[key], sort_keys=True)
    ]
    if mismatched:
        print(f"aggregates-match=no ({', '.join(mismatched)} diverged)", file=sys.stderr)
        return 1
    print("aggregates-match=yes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
